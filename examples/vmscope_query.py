"""Virtual microscope demo (paper §6.5).

Serves small and large queries over a synthetic tiled slide, comparing the
compiler-generated pipeline against the hand-vectorized manual filters —
including the §6.5 observation that the generated code (conditional
selection) trails the manual code (strided reads), and that the small
query suffers load imbalance.

Run:  python examples/vmscope_query.py
"""

import time

from repro.apps import make_vmscope_app
from repro.cost import cluster_config
from repro.datacutter import run_pipeline
from repro.experiments.harness import _specs_for_version


def timed_run(app, workload, version):
    specs, _result = _specs_for_version(
        app, workload, version, cluster_config(1)
    )
    run_pipeline(specs)  # warm-up
    t0 = time.perf_counter()
    run = run_pipeline(specs)
    elapsed = time.perf_counter() - t0
    image = run.payloads[-1]["result"].image()
    return image, elapsed, run


def main():
    app = make_vmscope_app(image_w=768, image_h=768, tile=64)
    for query in ("small", "large"):
        workload = app.make_workload(query=query, num_packets=10)
        sel = workload.profile["sel.g0"]
        print(
            f"--- {query} query: {workload.params['qx1'] - workload.params['qx0']}px"
            f" window, subsample {workload.params['subsamp']},"
            f" {sel:.0%} of tiles intersect ---"
        )
        images = {}
        for version in ("Decomp-Comp", "Decomp-Manual"):
            image, elapsed, run = timed_run(app, workload, version)
            images[version] = image
            print(
                f"{version:<14} {elapsed * 1e3:8.1f} ms   "
                f"output {image.shape[1]}x{image.shape[0]}   "
                f"stream bytes {sum(run.stream_bytes.values()):,}"
            )
        assert (images["Decomp-Comp"] == images["Decomp-Manual"]).all()
        ratio = None
        print(
            "images identical; the compiled version's conditional-mask "
            "selection does more work per tile than the manual strided "
            "reads (§6.5)\n"
        )


if __name__ == "__main__":
    main()
