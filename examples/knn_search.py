"""k-nearest-neighbour search demo (paper §6.4).

Shows why the compiler decomposition wins by ~150% in Figures 9-10: the
Default placement ships every point to the compute nodes, the
DP-decomposed placement computes local candidate sets on the data host
and ships only k candidates per packet.

Run:  python examples/knn_search.py
"""

from repro.apps import make_knn_app
from repro.cost import cluster_config
from repro.datacutter import run_pipeline
from repro.experiments.harness import _specs_for_version


def link1_bytes(run):
    return sum(v for name, v in run.stream_bytes.items() if "unit1->" in name)


def main():
    app = make_knn_app(k=5)
    workload = app.make_workload(n_points=50_000, num_packets=10)
    print(f"dataset: 50,000 points, query {workload.params['qx']}, k=5\n")

    for version in ("Default", "Decomp-Comp", "Decomp-Manual"):
        specs, result = _specs_for_version(
            app, workload, version, cluster_config(1)
        )
        run = run_pipeline(specs)
        finals = run.payloads[-1]
        ok = workload.check(finals, workload.oracle())
        plan = str(result.plan) if result is not None else "(hand-written)"
        total = sum(run.stream_bytes.values())
        print(f"{version:<14} plan {plan}")
        print(
            f"{'':<14} bytes off the data host: {link1_bytes(run):>12,}   "
            f"total stream bytes: {total:>12,}   correct: {ok}"
        )

    # the decomposition's reasoning, from the compiler's own report
    _specs, result = _specs_for_version(
        app, workload, "Decomp-Comp", cluster_config(1)
    )
    print("\ncompiler's view of the chain:")
    print(result.report())
    print(
        "\nReqComm at the chosen cut is just the k candidates + query "
        "scalars — that is the whole §6.4 effect."
    )


if __name__ == "__main__":
    main()
