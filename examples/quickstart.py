"""Quickstart: compile a dialect program end-to-end and run it.

This walks the full pipeline of the paper:

  dialect source --> boundaries + fission --> Gen/Cons + ReqComm
                 --> cost model --> DP decomposition --> generated filters
                 --> execution on the threaded DataCutter-style runtime

The program is a miniature of Figure 1: a packet loop over elements, a
guarded per-element computation through a native kernel, accumulation into
a reduction object, and a final merge.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CompileOptions,
    Intrinsic,
    IntrinsicRegistry,
    OpCount,
    WorkloadProfile,
    cluster_config,
    compile_source,
)
from repro.codegen import RawPacket
from repro.datacutter import run_pipeline
from repro.lang.types import DOUBLE, ArrayType

SOURCE = """
native Rectdomain<1, Item> read_items();
native double[] transform(double[] data, double scale);
native void display(MinTracker t);

class Item {
    double key;
    double[] data;
}

class MinTracker implements Reducinterface {
    double[] best;
    void observe(double[] values) { return; }
    void merge(MinTracker other) { return; }
}

class Main {
    void run(double scale, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, Item> items = read_items();
        MinTracker result = new MinTracker();
        PipelinedLoop (p in items) {
            MinTracker local = new MinTracker();
            foreach (item in p) {
                if (item.key < cutoff) {
                    double[] v = transform(item.data, scale);
                    local.observe(v);
                }
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


# --- native kernel implementations + runtime reduction class --------------


def transform(data, scale):
    return np.sqrt(np.asarray(data)) * scale


class MinTracker:
    """Runtime implementation of the dialect's reduction class."""

    def __init__(self):
        self.best = np.full(1, np.inf)

    def observe(self, values):
        if len(values):
            self.best[0] = min(self.best[0], float(np.min(values)))

    def merge(self, other):
        self.best[0] = min(self.best[0], other.best[0])

    def pack(self):
        return {"best": self.best.copy()}

    @classmethod
    def unpack(cls, packed):
        obj = cls()
        obj.best = packed["best"].copy()
        return obj


registry = IntrinsicRegistry(
    [
        Intrinsic("read_items", (), None, fn=lambda: None, writes=("return",)),
        Intrinsic(
            "transform",
            (ArrayType(DOUBLE), DOUBLE),
            ArrayType(DOUBLE),
            fn=transform,
            reads=("data", "scale"),
            writes=("return",),
            cost=lambda p: OpCount(flops=2 * p.get("Item.data", 4.0)),
        ),
        Intrinsic("display", (), None, fn=lambda t: None, reads=("t",), writes=()),
    ]
)


def main():
    # 1. the data: 6 packets of 500 items each
    rng = np.random.default_rng(42)
    packets = []
    for _ in range(6):
        packets.append(
            RawPacket(
                count=500,
                fields={
                    "key": rng.uniform(0, 1, 500),
                    "data": rng.uniform(0.1, 9.0, (500, 4)),
                },
            )
        )

    # 2. the environment and workload knowledge the compiler uses (§4.3)
    options = CompileOptions(
        env=cluster_config(1),  # the paper's 1-1-1 configuration
        profile=WorkloadProfile(
            {
                "num_packets": 6,
                "packet_size": 500,
                "sel.g0": 0.3,  # fraction passing the cutoff guard
                "Item.data": 4,
            }
        ),
        size_hints={"Item.data": 4, "v": 4},
        runtime_classes={"MinTracker": MinTracker},
    )

    # 3. compile: boundaries, ReqComm, DP decomposition, codegen
    result = compile_source(SOURCE, registry, options)
    print(result.report())
    print()
    print("--- generated filter for the data host ---")
    print(result.pipeline.filter_source(1))

    # 4. run the generated pipeline on the threaded runtime
    params = {"scale": 2.0, "cutoff": 0.3, "num_packets": 6}
    run = result.pipeline.specs(packets, params)
    out = run_pipeline(run)
    tracker = out.payloads[-1]["result"]
    print(f"pipeline result: min = {tracker.best[0]:.6f}")

    # 5. verify against a sequential oracle
    expect = np.inf
    for pk in packets:
        mask = pk.fields["key"] < 0.3
        if mask.any():
            expect = min(expect, np.sqrt(pk.fields["data"][mask]).min() * 2.0)
    print(f"oracle result:   min = {expect:.6f}")
    assert abs(tracker.best[0] - expect) < 1e-12
    print("MATCH — compiled pipeline is correct")


if __name__ == "__main__":
    main()
