"""Reproduce every evaluation figure of the paper in one run.

Runs Figures 5-12 through the experiment harness (measured computation,
calibrated simulated grid — see EXPERIMENTS.md), prints each figure's
table with its paper-vs-measured summary and shape checks, and exits
non-zero if any shape check fails.

Run:  python examples/reproduce_paper.py            # all figures (~2-4 min)
      python examples/reproduce_paper.py fig5 fig9  # a subset
"""

import sys

from repro.experiments.figures import ALL_FIGURES


def main(argv):
    wanted = argv or list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figure(s) {unknown}; choose from {sorted(ALL_FIGURES)}"
        )
    all_ok = True
    for name in wanted:
        figure = ALL_FIGURES[name]()
        print(figure.report())
        print()
        all_ok = all_ok and figure.ok
    if not all_ok:
        raise SystemExit("some shape checks FAILED — see reports above")
    print(f"all {len(wanted)} figure(s) reproduced with passing shape checks")


if __name__ == "__main__":
    main(sys.argv[1:])
