"""Pipeline-width scaling demo (paper §6.2-6.3).

Reproduces one row of the evaluation interactively: measures the z-buffer
application once per version, then simulates the paper's 1-1-1 / 2-2-1 /
4-4-1 configurations (and a few wider, hypothetical ones) on the
calibrated grid model.

Run:  python examples/grid_scaling.py
"""

from repro.apps import make_zbuffer_app
from repro.cost import cluster_config
from repro.experiments import format_results, run_experiment


def main():
    app = make_zbuffer_app()
    workload = app.make_workload(dataset="small", num_packets=16)
    configs = {
        "1-1-1": cluster_config(1),
        "2-2-1": cluster_config(2),
        "4-4-1": cluster_config(4),
        "8-8-1": cluster_config(8),  # beyond the paper: where does it stop?
    }
    results = run_experiment(
        app, workload, ["Default", "Decomp-Comp"], configs=configs
    )
    print(format_results("z-buffer, small dataset", results, list(configs)))

    decomp = results["Decomp-Comp"]
    base = decomp.times["1-1-1"]
    print("\nDecomp speedups over 1-1-1:")
    for name in configs:
        print(f"  {name:>6}: {base / decomp.times[name]:.2f}x")
    print(
        "\npaper: 1.92x at width 2, 3.34x at width 4 (Fig 5); the width-1 "
        "view stage and the final-image drain eventually cap scaling."
    )


if __name__ == "__main__":
    main()
