"""Isosurface rendering demo (paper §3, Figure 1, §6.3).

Compiles the z-buffer and active-pixels renderers from their dialect
sources, runs both through the threaded pipeline, verifies the images are
identical (the two algorithms compute the same picture), and reports how
much stream traffic the sparse representation saves — the §6.3 story.

Run:  python examples/isosurface_rendering.py
"""

import numpy as np

from repro.apps import make_active_pixels_app, make_zbuffer_app
from repro.cost import cluster_config
from repro.datacutter import run_pipeline
from repro.experiments.harness import _specs_for_version


def render(app, workload, version="Decomp-Comp"):
    specs, result = _specs_for_version(
        app, workload, version, cluster_config(1)
    )
    run = run_pipeline(specs)
    image = run.payloads[-1]["result"].image()
    return image, run, result


def main():
    width = height = 96
    zapp = make_zbuffer_app(width, height)
    aapp = make_active_pixels_app(width, height)
    zwl = zapp.make_workload(dataset="small", num_packets=8)
    awl = aapp.make_workload(dataset="small", num_packets=8)

    print(
        f"dataset: {int(zwl.profile['packet_size'] * 8)} cubes, "
        f"isosurface selectivity {zwl.profile['sel.g0']:.1%}, "
        f"{zwl.profile['scale.tris']:.2f} triangles per accepted cube"
    )

    z_img, z_run, z_result = render(zapp, zwl)
    a_img, a_run, a_result = render(aapp, awl)

    print(f"\nz-buffer plan:      {z_result.plan}")
    print(f"active-pixels plan: {a_result.plan}")

    assert np.array_equal(z_img, a_img), "the two algorithms must agree"
    covered = int((z_img > 0).sum())
    print(f"\nimages identical: {covered} covered pixels of {width * height}")

    z_bytes = sum(z_run.stream_bytes.values())
    a_bytes = sum(a_run.stream_bytes.values())
    print(f"z-buffer stream traffic:      {z_bytes:>12,} bytes")
    print(f"active-pixels stream traffic: {a_bytes:>12,} bytes")
    print(
        f"sparse representation saves {1 - a_bytes / z_bytes:.0%} — "
        "'avoids allocating, initializing, or communicating a full "
        "z-buffer' (§6.3)"
    )

    # render an ASCII thumbnail of the isosurface
    thumb = z_img[:: height // 24, :: width // 48]
    ramp = " .:-=+*#%@"
    print("\nisosurface (ASCII):")
    for row in thumb:
        line = "".join(ramp[min(int(v * (len(ramp) - 1)), len(ramp) - 1)] for v in row)
        print("   " + line)


if __name__ == "__main__":
    main()
