"""Boundary identification and loop fission tests (§4.1)."""

import pytest

from repro.analysis import build_filter_chain, fission_foreach, rebuild_foreach_ast
from repro.lang import check, parse, unparse_stmt
from repro.lang.errors import AnalysisError

PRELUDE = """
native Rectdomain<1, E> read();
native double[] work(double[] v, double s);
native double[] work2(double[] v);
class E { double key; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc other) { return; }
}
"""


def chain_for(body: str, params: str = "double s, double cutoff"):
    checked = check(
        parse(
            PRELUDE
            + """
class M {
    void run(%s) {
        runtime_define int num_packets;
        Rectdomain<1, E> elems = read();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {
            %s
        }
    }
}
"""
            % (params, body)
        )
    )
    meth, loop = checked.pipelined_loops()[0]
    return build_filter_chain(checked, meth, loop)


class TestFission:
    def _foreach(self, body: str):
        checked = check(
            parse(
                PRELUDE
                + "class M { void run(Rectdomain<1, E> d, double s, double cutoff)"
                " { foreach (e in d) { %s } } }" % body
            )
        )
        meth = checked.program.find_method("run")
        return meth.body.body[0]

    def test_call_statements_split(self):
        loop = self._foreach(
            "double[] a = work(e.data, s); double[] b = work2(a);"
        )
        fissioned = fission_foreach(loop)
        assert len(fissioned.stages) == 2
        assert all(len(st.stmts) == 1 for st in fissioned.stages)

    def test_trailing_guard_becomes_filter_stage(self):
        loop = self._foreach(
            "if (e.key < cutoff) { double[] a = work(e.data, s); }"
        )
        fissioned = fission_foreach(loop)
        assert fissioned.stages[0].guard is not None
        assert fissioned.stages[0].guard_param == "sel.g0"
        assert len(fissioned.stages) == 2

    def test_if_with_else_stays_opaque(self):
        loop = self._foreach(
            "double x = 0.0; if (e.key < cutoff) { x = 1.0; } else { x = 2.0; }"
        )
        fissioned = fission_foreach(loop)
        assert all(st.guard is None for st in fissioned.stages)

    def test_if_followed_by_statement_stays_opaque(self):
        loop = self._foreach(
            "double x = 0.0; if (e.key < cutoff) { x = 1.0; } x = x + 1.0;"
        )
        fissioned = fission_foreach(loop)
        assert all(st.guard is None for st in fissioned.stages)

    def test_nested_guards(self):
        loop = self._foreach(
            "if (e.key < cutoff) { if (e.key > 0.0) { double[] a = work(e.data, s); } }"
        )
        fissioned = fission_foreach(loop)
        guards = [st for st in fissioned.stages if st.guard is not None]
        assert len(guards) == 2

    def test_rebuild_preserves_guard_semantics(self):
        loop = self._foreach(
            "if (e.key < cutoff) { double[] a = work(e.data, s); double[] b = work2(a); }"
        )
        fissioned = fission_foreach(loop)
        rebuilt = rebuild_foreach_ast(fissioned)
        # every rebuilt loop re-applies the guard
        for rebuilt_loop in rebuilt:
            text = unparse_stmt(rebuilt_loop)
            assert "if (e.key < cutoff)" in text

    def test_local_roots_collected(self):
        loop = self._foreach("double[] a = work(e.data, s); double[] b = work2(a);")
        fissioned = fission_foreach(loop)
        assert {sym.name for sym in fissioned.local_roots} == {"a", "b"}


class TestChainConstruction:
    def test_atoms_numbered_and_boundaries_between(self):
        chain = chain_for(
            """
            Acc local = new Acc();
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] a = work(e.data, s);
                    local.add(a);
                }
            }
            result.merge(local);
            """
        )
        assert [a.index for a in chain.atoms] == list(range(1, len(chain.atoms) + 1))
        assert len(chain.boundaries) == len(chain.atoms) - 1
        kinds = [a.kind for a in chain.atoms]
        assert kinds[0] == "packet" and kinds[-1] == "packet"
        assert "element" in kinds

    def test_guard_selectivity_params_applied_downstream(self):
        chain = chain_for(
            """
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] a = work(e.data, s);
                }
            }
            """
        )
        guard_atoms = [a for a in chain.atoms if a.guard is not None]
        assert len(guard_atoms) == 1
        after = [
            a
            for a in chain.atoms
            if a.kind == "element" and a.index > guard_atoms[0].index
        ]
        assert all("sel.g0" in a.applied_guards for a in after)

    def test_foreach_open_close_markers(self):
        chain = chain_for(
            "foreach (e in p) { double[] a = work(e.data, s); double[] b = work2(a); }"
        )
        element = [a for a in chain.atoms if a.kind == "element"]
        assert element[0].opens_foreach and element[-1].closes_foreach
        assert not any(a.opens_foreach for a in element[1:])

    def test_two_foreach_loops_get_distinct_ids_and_guard_params(self):
        chain = chain_for(
            """
            foreach (e in p) {
                if (e.key < cutoff) { double[] a = work(e.data, s); }
            }
            foreach (e2 in p) {
                if (e2.key > cutoff) { double[] b = work2(e2.data); }
            }
            """
        )
        ids = {a.foreach_id for a in chain.atoms if a.kind == "element"}
        assert ids == {0, 1}
        params = {a.guard_param for a in chain.atoms if a.guard_param}
        assert params == {"sel.g0", "sel.g1"}

    def test_inner_for_loop_stays_whole(self):
        chain = chain_for(
            """
            foreach (e in p) {
                double t = 0.0;
                for (int i = 0; i < 4; i = i + 1) { t = t + e.data[i]; }
            }
            """
        )
        # the for loop is inside a single atom
        assert all(a.kind in ("packet", "element") for a in chain.atoms)

    def test_nested_foreach_rejected(self):
        with pytest.raises(AnalysisError, match="nested foreach"):
            chain_for("foreach (e in p) { foreach (e2 in p) { double x = e2.key; } }")

    def test_empty_pipelined_loop_rejected(self):
        with pytest.raises(AnalysisError, match="empty"):
            chain_for("")

    def test_packet_var_and_elem_vars_recorded(self):
        chain = chain_for("foreach (e in p) { double x = e.key; }")
        assert chain.packet_var.name == "p"
        assert {v.name for v in chain.elem_vars} == {"e"}

    def test_atom_accessor_one_based(self):
        chain = chain_for("foreach (e in p) { double x = e.key; }")
        assert chain.atom(1) is chain.atoms[0]
