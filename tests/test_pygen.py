"""Dialect->Python translation tests: expression/statement semantics and
generated runtime classes."""

import numpy as np
import pytest

from repro.codegen.pygen import NameEnv, PyGen, generate_runtime_class
from repro.lang import check, parse


def translate_method(source: str, method: str = "f"):
    checked = check(parse(source))
    meth = checked.program.find_method(method)
    env = NameEnv(checked)
    gen = PyGen(env)
    args = []
    for p in meth.params:
        args.append(env.bind(p.symbol))
    gen.emit(f"def {method}({', '.join(args)}):")
    with gen.block():
        gen.stmt(meth.body)
    namespace = {"_np": np, "_intr": {}, "_RT": {}}
    exec(compile(gen.source(), "<test>", "exec"), namespace)
    return namespace[method], gen.source()


class TestExpressionSemantics:
    def test_arithmetic(self):
        fn, _ = translate_method(
            "class M { double f(double a, double b) { return a * b + a - b / 2.0; } }"
        )
        assert fn(3.0, 4.0) == pytest.approx(3 * 4 + 3 - 2)

    def test_integer_division_truncates(self):
        fn, src = translate_method(
            "class M { int f(int a, int b) { return a / b; } }"
        )
        assert "//" in src
        assert fn(7, 2) == 3

    def test_float_division_stays_true(self):
        fn, src = translate_method(
            "class M { double f(double a, double b) { return a / b; } }"
        )
        assert fn(7.0, 2.0) == 3.5

    def test_modulo(self):
        fn, _ = translate_method("class M { int f(int a) { return a % 3; } }")
        assert fn(10) == 1

    def test_logical_short_circuit(self):
        fn, src = translate_method(
            "class M { boolean f(boolean a, boolean b) { return a && !b || a; } }"
        )
        assert " and " in src and " or " in src and "not " in src
        assert fn(True, True) is True
        assert fn(False, True) is False

    def test_comparison_chain_parenthesized(self):
        fn, _ = translate_method(
            "class M { boolean f(double a, double b) { return a < b == true; } }"
        )
        # dialect parses (a < b) == true
        assert fn(1.0, 2.0) is True

    def test_ternary(self):
        fn, _ = translate_method(
            "class M { double f(double a) { return a > 0.0 ? a : -a; } }"
        )
        assert fn(-5.0) == 5.0

    def test_array_ops(self):
        fn, _ = translate_method(
            """
            class M {
                double f(int n) {
                    double[] a = new double[n];
                    a[0] = 3.0;
                    a[n - 1] = 4.0;
                    return a[0] + a[n - 1] + a.length;
                }
            }
            """
        )
        assert fn(5) == pytest.approx(3 + 4 + 5)


class TestStatementSemantics:
    def test_counted_for_becomes_range(self):
        fn, src = translate_method(
            """
            class M {
                int f(int n) {
                    int total = 0;
                    for (int i = 0; i < n; i = i + 1) { total += i; }
                    return total;
                }
            }
            """
        )
        assert "range(" in src
        assert fn(5) == 10

    def test_inclusive_bound_for(self):
        fn, _ = translate_method(
            """
            class M {
                int f(int n) {
                    int t = 0;
                    for (int i = 0; i <= n; i = i + 1) { t += 1; }
                    return t;
                }
            }
            """
        )
        assert fn(3) == 4

    def test_general_for_becomes_while(self):
        fn, src = translate_method(
            """
            class M {
                int f(int n) {
                    int t = 0;
                    for (int i = n; i > 0; i = i / 2) { t += 1; }
                    return t;
                }
            }
            """
        )
        assert "while " in src
        assert fn(8) == 4  # 8 -> 4 -> 2 -> 1

    def test_while_with_break_continue(self):
        fn, _ = translate_method(
            """
            class M {
                int f(int n) {
                    int i = 0;
                    int t = 0;
                    while (true) {
                        i = i + 1;
                        if (i > n) { break; }
                        if (i % 2 == 0) { continue; }
                        t += i;
                    }
                    return t;
                }
            }
            """
        )
        assert fn(6) == 1 + 3 + 5

    def test_uninitialized_decl_zeroed(self):
        fn, _ = translate_method(
            "class M { int f() { int x; return x + 1; } }"
        )
        assert fn() == 1


class TestRuntimeClasses:
    def test_fields_and_methods(self):
        checked = check(
            parse(
                """
                class Counter {
                    double total;
                    int hits;
                    void bump(double x) { total = total + x; hits = hits + 1; }
                    double mean() { return total / hits; }
                }
                """
            )
        )
        src = generate_runtime_class(checked, "Counter")
        ns = {"_np": np, "_intr": {}, "_RT": {}}
        exec(compile(src, "<rt>", "exec"), ns)
        counter = ns["Counter"]()
        counter.bump(2.0)
        counter.bump(4.0)
        assert counter.hits == 2
        assert counter.mean() == 3.0

    def test_reduction_class_gets_pack_unpack(self):
        checked = check(
            parse(
                """
                class Acc implements Reducinterface {
                    double[] total;
                    void merge(Acc other) { return; }
                }
                """
            )
        )
        src = generate_runtime_class(checked, "Acc")
        ns = {"_np": np, "_intr": {}, "_RT": {}}
        exec(compile(src, "<rt>", "exec"), ns)
        acc = ns["Acc"]()
        acc.total = np.array([1.0, 2.0])
        clone = ns["Acc"].unpack(acc.pack())
        assert np.array_equal(clone.total, acc.total)

    def test_array_fields_zero_initialized(self):
        checked = check(parse("class B { double[] xs; int n; }"))
        ns = {"_np": np, "_intr": {}, "_RT": {}}
        exec(compile(generate_runtime_class(checked, "B"), "<rt>", "exec"), ns)
        b = ns["B"]()
        assert len(b.xs) == 0 and b.n == 0
