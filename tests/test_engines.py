"""Cross-engine conformance (threaded vs process).

The process engine must be a drop-in replacement for the threaded one:
byte-identical final payloads and identical per-stream accounting on every
bundled application, plus clean failure behaviour — a filter copy that
raises, hangs, or is killed must surface as :class:`PipelineError` naming
the filter, with no hung run and no orphaned workers.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.apps import (
    make_active_pixels_app,
    make_knn_app,
    make_vmscope_app,
    make_zbuffer_app,
)
from repro.cost import cluster_config
from repro.datacutter import (
    ENGINES,
    EngineOptions,
    Filter,
    FilterSpec,
    PipelineError,
    SourceFilter,
    ThreadedPipeline,
    make_engine,
    run_pipeline,
)
from repro.experiments.harness import _specs_for_version

#: generous wall-clock cap for process-engine runs so a regression fails
#: instead of hanging the suite
PROC_TIMEOUT = 120.0

ENGINE_NAMES = ("threaded", "process")


def _run(specs, engine):
    timeout = PROC_TIMEOUT if engine == "process" else None
    return run_pipeline(specs, EngineOptions(engine=engine, timeout=timeout))


def _no_orphans():
    """Assert no worker process survived (reaps via active_children)."""
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def _no_live_filter_threads(prefix):
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        alive = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(prefix) and t.is_alive()
        ]
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError(f"filter threads still alive: {alive}")


# ---------------------------------------------------------------------------
# Output + accounting parity on the real applications
# ---------------------------------------------------------------------------

APPS = {
    "zbuffer": lambda: _bundle(
        make_zbuffer_app(width=48, height=48), dataset="tiny", num_packets=4
    ),
    "apixels": lambda: _bundle(
        make_active_pixels_app(width=48, height=48), dataset="tiny", num_packets=4
    ),
    "knn": lambda: _bundle(make_knn_app(k=5), n_points=4000, num_packets=5),
    "vmscope": lambda: _bundle(
        make_vmscope_app(image_w=256, image_h=256, tile=64),
        query="large",
        num_packets=4,
    ),
}


def _bundle(app, **workload_kwargs):
    return app, app.make_workload(**workload_kwargs)


def _canonical(finals):
    """Final payload dict -> {name: {field: ndarray}} via each reduction's
    pack(), the byte-exact canonical form."""
    out = {}
    for key, value in finals.items():
        if hasattr(value, "pack"):
            out[key] = {k: np.asarray(v) for k, v in value.pack().items()}
        else:
            out[key] = {"value": np.asarray(value)}
    return out


@pytest.mark.parametrize("app_name", sorted(APPS))
def test_cross_engine_identical(app_name):
    """engine='process' is a one-line switch: same outputs, same stats."""
    app, workload = APPS[app_name]()
    env = cluster_config(1)
    runs = {}
    for engine in ENGINE_NAMES:
        # fresh specs per run: reduction instances are stateful
        specs, _ = _specs_for_version(app, workload, "Decomp-Comp", env)
        runs[engine] = _run(specs, engine)

    threaded, process = runs["threaded"], runs["process"]
    a, b = _canonical(threaded.payloads[-1]), _canonical(process.payloads[-1])
    assert a.keys() == b.keys()
    for key in a:
        assert a[key].keys() == b[key].keys(), key
        for fld in a[key]:
            assert a[key][fld].dtype == b[key][fld].dtype, (key, fld)
            assert np.array_equal(a[key][fld], b[key][fld]), (key, fld)

    # stream accounting merges to the same totals, byte for byte
    assert process.stream_bytes == threaded.stream_bytes
    assert process.stream_buffers == threaded.stream_buffers
    assert process.stream_by_packet == threaded.stream_by_packet

    # both engines must also agree with the sequential oracle
    expected = workload.oracle()
    assert workload.check(threaded.payloads[-1], expected)
    assert workload.check(process.payloads[-1], expected)
    _no_orphans()


# ---------------------------------------------------------------------------
# Synthetic pipelines: EOS with width > 1, failure modes
# ---------------------------------------------------------------------------


class _Range(SourceFilter):
    def generate(self, ctx):
        for k in range(ctx.params.get("n", 8)):
            yield float(k)


class _Double(Filter):
    def process(self, buf, ctx):
        ctx.write(buf.payload * 2, buf.packet)


class _Sum(Filter):
    def init(self, ctx):
        self.total = 0.0

    def process(self, buf, ctx):
        self.total += buf.payload

    def finalize(self, ctx):
        ctx.write(self.total)


class _BoomOnCopy1(Filter):
    """Raises in exactly one transparent copy of a widened stage."""

    def process(self, buf, ctx):
        if ctx.copy_index == 1:
            raise RuntimeError("kaboom")
        ctx.write(buf.payload * 2, buf.packet)


class _Suicide(Filter):
    """Simulates a hard crash: SIGKILL leaves no traceback behind."""

    def process(self, buf, ctx):
        os.kill(os.getpid(), signal.SIGKILL)


_unstick = threading.Event()


class _Stuck(Filter):
    def process(self, buf, ctx):
        _unstick.wait(timeout=30.0)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_eos_with_widened_stages(engine):
    """Per-producer EOS bookkeeping: widened source, middle, and sink
    stages all drain completely (small ints sum exactly in float64, so the
    result is order-independent and exact)."""
    for _ in range(3):  # repeat: EOS races are intermittent by nature
        specs = [
            FilterSpec("src", _Range, width=2, params={"n": 12}),
            FilterSpec("dbl", _Double, placement=1, width=3),
            FilterSpec("sum", _Sum, placement=2),
        ]
        result = _run(specs, engine)
        assert result.payloads == [132.0]
        assert result.stream_bytes["src->dbl"] == 12 * 8
        assert result.stream_buffers["dbl->sum"] == 12
    _no_orphans()


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_error_in_one_copy_fails_run(engine):
    """A raise in one copy of a widened mid-pipeline stage fails the whole
    run with the filter's name and traceback, and leaves no live workers."""
    specs = [
        FilterSpec("src", _Range, params={"n": 8}),
        FilterSpec("boom", _BoomOnCopy1, placement=1, width=2),
        FilterSpec("sum", _Sum, placement=2),
    ]
    with pytest.raises(PipelineError, match="boom#1") as exc_info:
        _run(specs, engine)
    assert "kaboom" in str(exc_info.value)
    if engine == "process":
        _no_orphans()
    else:
        _no_live_filter_threads("boom#")


def test_killed_worker_detected():
    """SIGKILL mid-packet: the supervisor's sentinel watch names the dead
    filter copy; the run raises instead of hanging, and the surviving
    workers are torn down."""
    specs = [
        FilterSpec("src", _Range, params={"n": 4}),
        FilterSpec("killer", _Suicide, placement=1),
        FilterSpec("sum", _Sum, placement=2),
    ]
    with pytest.raises(PipelineError, match="killer#0") as exc_info:
        _run(specs, "process")
    assert "killed or crashed" in str(exc_info.value)
    _no_orphans()


def test_supervisor_timeout_names_stalest_filter():
    _unstick.clear()
    specs = [
        FilterSpec("src", _Range, params={"n": 2}),
        FilterSpec("tarpit", _Stuck, placement=1),
    ]
    try:
        with pytest.raises(PipelineError, match="timed out") as exc_info:
            run_pipeline(
                specs,
                EngineOptions(engine="process", timeout=1.5, death_grace=0.5),
            )
        assert "tarpit#0" in str(exc_info.value)
    finally:
        _unstick.set()
    _no_orphans()


def test_threaded_stuck_filter_detected():
    """Satellite fix: ThreadedPipeline.run no longer hangs forever on a
    wedged filter — it raises after join_timeout, naming the culprit."""
    _unstick.clear()
    specs = [
        FilterSpec("src", _Range, params={"n": 2}),
        FilterSpec("tarpit", _Stuck, placement=1),
    ]
    try:
        with pytest.raises(PipelineError, match="stuck.*tarpit#0"):
            ThreadedPipeline(specs, join_timeout=1.0).run()
    finally:
        _unstick.set()  # release the abandoned daemon thread
    _no_live_filter_threads("tarpit#")


# ---------------------------------------------------------------------------
# Engine registry / dispatch
# ---------------------------------------------------------------------------


def test_engine_registry():
    assert set(ENGINES) == {"threaded", "process"}
    eng = make_engine([FilterSpec("src", _Range)], EngineOptions(engine="threaded"))
    assert eng.engine_name == "threaded"
    eng = make_engine([FilterSpec("src", _Range)], EngineOptions(engine="process"))
    assert eng.engine_name == "process"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="threaded"):
        make_engine([FilterSpec("src", _Range)], EngineOptions(engine="distributed"))


def test_compile_result_execute_engine_switch():
    """CompilationResult.execute(options=...) reaches the same dispatcher."""
    app, workload = APPS["knn"]()
    env = cluster_config(1)
    _specs, result = _specs_for_version(app, workload, "Decomp-Comp", env)
    run = result.execute(
        workload.packets,
        workload.params,
        options=EngineOptions(engine="process", timeout=PROC_TIMEOUT),
    )
    assert workload.check(run.payloads[-1], workload.oracle())
    _no_orphans()
