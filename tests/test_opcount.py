"""Operation-counting tests (§4.3)."""

import pytest

from repro.analysis import OpCounter, WorkloadProfile, build_filter_chain
from repro.lang import Intrinsic, IntrinsicRegistry, OpCount, check, parse


def counter_for(source: str, registry=None, method="f", method_costs=None):
    checked = check(parse(source), registry)
    meth = checked.program.find_method(method)
    return OpCounter(checked, method_costs=method_costs or {}), meth


def count_body(body: str, params: str = "", profile=None, registry=None,
               prelude: str = ""):
    counter, meth = counter_for(
        prelude + "class M { void f(%s) { %s } }" % (params, body), registry
    )
    profile = profile or WorkloadProfile({})
    total = OpCount()
    for stmt in meth.body.body:
        total = total + counter.stmt_ops(stmt, profile)
    return total


class TestExpressionCounting:
    def test_float_ops_are_flops(self):
        ops = count_body("double z = x * y + 1.0;", params="double x, double y")
        assert ops.flops == 2 and ops.iops == 0

    def test_int_ops_are_iops(self):
        ops = count_body("int z = a * b + 1;", params="int a, int b")
        assert ops.iops == 2 and ops.flops == 0

    def test_comparisons_are_branches(self):
        ops = count_body(
            "boolean z = a < b && c >= d;",
            params="double a, double b, double c, double d",
        )
        assert ops.branches == 3  # two compares + one &&

    def test_index_costs_an_iop(self):
        ops = count_body("double z = v[3];", params="double[] v")
        assert ops.iops == 1

    def test_compound_assignment_counts_op(self):
        ops = count_body("x += 1.0;", params="double x")
        assert ops.flops == 1


class TestStatementCounting:
    def test_if_averages_branches(self):
        ops = count_body(
            "if (c) { x = x + 1.0; } else { }",
            params="boolean c, double x",
        )
        # 1 branch + half the then-arm's flop
        assert ops.branches == 1
        assert ops.flops == pytest.approx(0.5)

    def test_counted_for_multiplies(self):
        ops = count_body(
            "double s = 0.0; for (int i = 0; i < 10; i = i + 1) { s = s + 1.0; }"
        )
        assert ops.flops == pytest.approx(10.0)

    def test_symbolic_bound_uses_profile(self):
        ops = count_body(
            "double s = 0.0; for (int i = 0; i < n; i = i + 1) { s = s + 1.0; }",
            params="int n",
            profile=WorkloadProfile({"n": 32.0}),
        )
        assert ops.flops == pytest.approx(32.0)

    def test_while_uses_default_trip(self):
        ops = count_body(
            "while (x > 0.0) { x = x - 1.0; }",
            params="double x",
            profile=WorkloadProfile({"loop.default_trip": 5.0}),
        )
        assert ops.flops == pytest.approx(5.0)


class TestCallsAndAtoms:
    PRELUDE = """
    native Rectdomain<1, E> read();
    native double[] work(double[] v);
    class E { double key; double[] data; }
    class Acc implements Reducinterface {
        double[] t;
        void add(double[] v) { return; }
        void merge(Acc o) { return; }
    }
    class Helper { double h(double x) { return x * x + 1.0; } }
    """

    def test_intrinsic_cost_model_used(self):
        registry = IntrinsicRegistry(
            [
                Intrinsic(
                    "work",
                    (),
                    None,
                    fn=None,
                    cost=lambda p: OpCount(flops=100 * p.get("scale", 1.0)),
                )
            ]
        )
        ops = count_body(
            "double[] r = work(v);",
            params="double[] v",
            registry=registry,
            prelude="native double[] work(double[] v);\n",
            profile=WorkloadProfile({"scale": 2.0}),
        )
        assert ops.flops == pytest.approx(200.0)

    def test_dialect_method_body_counted(self):
        ops = count_body(
            "double r = h(3.0);",
            prelude="class Helper { double h(double x) { return x * x + 1.0; } }\n",
        )
        assert ops.flops == 2

    def test_method_cost_override(self):
        source = (
            self.PRELUDE
            + "class M { void f(Acc a, double[] v) { a.add(v); } }"
        )
        counter, meth = counter_for(
            source,
            method_costs={"Acc.add": lambda p: OpCount(iops=42)},
        )
        ops = counter.stmt_ops(meth.body.body[0], WorkloadProfile({}))
        assert ops.iops == 42

    def test_element_atom_scaled_by_cardinality(self):
        source = (
            self.PRELUDE
            + """
        class M {
            void f(double cutoff) {
                Rectdomain<1, E> d = read();
                Acc result = new Acc();
                PipelinedLoop (p in d) {
                    Acc local = new Acc();
                    foreach (e in p) {
                        if (e.key < cutoff) {
                            double z = e.key * 2.0;
                        }
                    }
                    result.merge(local);
                }
            }
        }
        """
        )
        checked = check(parse(source))
        meth, loop = checked.pipelined_loops()[0]
        chain = build_filter_chain(checked, meth, loop)
        counter = OpCounter(checked)
        profile = WorkloadProfile({"packet_size": 100.0, "sel.g0": 0.25})
        guard = next(a for a in chain.atoms if a.guard is not None)
        after = next(
            a for a in chain.atoms if a.kind == "element" and a.applied_guards
        )
        guard_ops = counter.atom_ops(guard, profile)
        after_ops = counter.atom_ops(after, profile)
        # guard runs on all 100 records; the next stage only on 25
        assert guard_ops.branches >= 100
        assert after_ops.flops == pytest.approx(25.0)
