"""DataCutter substrate tests (§2.2): buffers, streams, transparent
copies, the threaded runtime, and placement validation."""


import numpy as np
import pytest

from repro.cost import make_pipeline
from repro.datacutter import (
    Broadcast,
    Buffer,
    ByPacket,
    Filter,
    FilterSpec,
    LogicalStream,
    PipelineError,
    PlacedPipeline,
    RoundRobin,
    SourceFilter,
    payload_nbytes,
    run_pipeline,
)


class TestBuffers:
    def test_payload_nbytes(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(b"12345") == 5
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes({"a": np.zeros(2), "b": b"xy"}) == 18
        assert payload_nbytes([1.5, 2.5]) == 16
        assert payload_nbytes("abc") == 3

    def test_end_of_work_marker(self):
        buf = Buffer.end_of_work()
        assert not buf.is_data
        assert buf.nbytes == 0


class TestStreams:
    def test_round_robin_distribution(self):
        stream = LogicalStream("s", n_producers=1, n_consumers=2)
        for k in range(4):
            stream.put(Buffer(payload=k, packet=k))
        got0 = [stream.get(0).payload for _ in range(2)]
        got1 = [stream.get(1).payload for _ in range(2)]
        assert got0 == [0, 2] and got1 == [1, 3]

    def test_by_packet_policy(self):
        stream = LogicalStream("s", n_consumers=2, policy=ByPacket())
        stream.put(Buffer(payload="a", packet=4))
        stream.put(Buffer(payload="b", packet=5))
        assert stream.get(0).payload == "a"
        assert stream.get(1).payload == "b"

    def test_broadcast_policy(self):
        stream = LogicalStream("s", n_consumers=3, policy=Broadcast())
        stream.put(Buffer(payload="x", packet=0))
        assert all(stream.get(i).payload == "x" for i in range(3))

    def test_eos_after_all_producers_close(self):
        stream = LogicalStream("s", n_producers=2, n_consumers=1)
        stream.put(Buffer(payload=1, packet=0))
        stream.close_producer()
        stream.put(Buffer(payload=2, packet=1))
        stream.close_producer()
        got = stream.drain(0)
        assert [b.payload for b in got] == [1, 2]

    def test_too_many_closes_rejected(self):
        stream = LogicalStream("s")
        stream.close_producer()
        with pytest.raises(RuntimeError, match="too many closes"):
            stream.close_producer()

    def test_stats_accounting(self):
        stream = LogicalStream("s")
        stream.put(Buffer(payload=np.zeros(4), packet=0))
        stream.put(Buffer(payload=np.zeros(2), packet=1))
        assert stream.stats.buffers == 2
        assert stream.stats.bytes == 48
        assert stream.stats.by_packet == {0: 32, 1: 16}


class _Range(SourceFilter):
    def generate(self, ctx):
        for k in range(ctx.params.get("n", 8)):
            yield float(k)


class _Double(Filter):
    def process(self, buf, ctx):
        ctx.write(buf.payload * 2, buf.packet)


class _Sum(Filter):
    def init(self, ctx):
        self.total = 0.0

    def process(self, buf, ctx):
        self.total += buf.payload

    def finalize(self, ctx):
        ctx.write(self.total)


class TestThreadedRuntime:
    def test_linear_pipeline(self):
        specs = [
            FilterSpec("src", _Range, params={"n": 10}),
            FilterSpec("dbl", _Double, placement=1),
            FilterSpec("sum", _Sum, placement=2),
        ]
        result = run_pipeline(specs)
        assert result.payloads == [sum(2.0 * k for k in range(10))]

    def test_transparent_copies_preserve_result(self):
        """Width changes routing but not the (commutative) outcome."""
        for width in (1, 2, 3):
            specs = [
                FilterSpec("src", _Range, params={"n": 12}),
                FilterSpec("dbl", _Double, placement=1, width=width),
                FilterSpec("sum", _Sum, placement=2),
            ]
            result = run_pipeline(specs)
            assert result.payloads == [132.0]

    def test_copied_sink_emits_partials(self):
        specs = [
            FilterSpec("src", _Range, params={"n": 8}),
            FilterSpec("sum", _Sum, placement=1, width=2),
        ]
        result = run_pipeline(specs)
        assert len(result.payloads) == 2
        assert sum(result.payloads) == 28.0

    def test_source_copies_split_packets(self):
        specs = [
            FilterSpec("src", _Range, width=2, params={"n": 6}),
            FilterSpec("sum", _Sum, placement=1),
        ]
        result = run_pipeline(specs)
        assert result.payloads == [15.0]

    def test_filter_error_propagates(self):
        class Boom(Filter):
            def process(self, buf, ctx):
                raise RuntimeError("kaboom")

        specs = [
            FilterSpec("src", _Range, params={"n": 2}),
            FilterSpec("boom", Boom, placement=1),
        ]
        with pytest.raises(PipelineError, match="kaboom"):
            run_pipeline(specs)

    def test_first_filter_must_be_source(self):
        specs = [FilterSpec("dbl", _Double)]
        with pytest.raises(PipelineError, match="SourceFilter"):
            run_pipeline(specs)

    def test_stream_bytes_reported(self):
        specs = [
            FilterSpec("src", _Range, params={"n": 4}),
            FilterSpec("sum", _Sum, placement=1),
        ]
        result = run_pipeline(specs)
        assert result.stream_bytes["src->sum"] == 4 * 8

    def test_bounded_queues_do_not_deadlock(self):
        specs = [
            FilterSpec("src", _Range, params={"n": 500}),
            FilterSpec("dbl", _Double, placement=1),
            FilterSpec("sum", _Sum, placement=2),
        ]
        result = run_pipeline(specs)
        assert result.payloads == [float(sum(2 * k for k in range(500)))]


class TestPlacement:
    def test_valid_placement(self):
        env = make_pipeline([1.0, 1.0, 1.0], [1.0, 1.0])
        placed = PlacedPipeline(
            [
                FilterSpec("a", _Range, placement=0),
                FilterSpec("b", _Double, placement=1),
                FilterSpec("c", _Sum, placement=2),
            ],
            env,
        )
        assert placed.filters_on_stage(1)[0].name == "b"
        pairs = placed.crossing_pairs()
        assert [(a.name, b.name, link) for a, b, link in pairs] == [
            ("a", "b", 0),
            ("b", "c", 1),
        ]

    def test_backward_flow_rejected(self):
        env = make_pipeline([1.0, 1.0], [1.0])
        with pytest.raises(ValueError, match="backwards"):
            PlacedPipeline(
                [
                    FilterSpec("a", _Range, placement=1),
                    FilterSpec("b", _Sum, placement=0),
                ],
                env,
            )

    def test_out_of_range_stage_rejected(self):
        env = make_pipeline([1.0], [])
        with pytest.raises(ValueError, match="stage 3"):
            PlacedPipeline([FilterSpec("a", _Range, placement=3)], env)

    def test_widths_from_env(self):
        env = make_pipeline([1.0, 1.0], [1.0], widths=[4, 2])
        placed = PlacedPipeline(
            [
                FilterSpec("a", _Range, placement=0),
                FilterSpec("b", _Sum, placement=1),
            ],
            env,
        ).with_widths_from_env()
        assert [s.width for s in placed.specs] == [4, 2]
