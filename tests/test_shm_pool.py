"""Shared-memory segment pooling in the process-engine transport.

Unit tests drive :class:`repro.datacutter.mp.transport.ShmPool` directly
(size classes, hit/miss accounting, bounded parking, teardown); the
integration test runs a real pipeline shaped so a middle stage consumes
*and* produces large payloads of the same size class — the configuration
where recycling actually fires — and asserts the reuse counters land in
the run trace.
"""

import multiprocessing
import threading
import time
from multiprocessing import shared_memory

import pytest

from repro.apps import make_zbuffer_app
from repro.core.compiler import CompileOptions, compile_source
from repro.cost import cluster_config
from repro.datacutter import EngineOptions, run_pipeline
from repro.datacutter.mp.transport import ShmPool
from repro.datacutter.obs.trace import Trace
from repro.decompose.plan import DecompositionPlan

PROC_TIMEOUT = 120.0


def _no_orphans():
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# ShmPool unit behaviour
# ---------------------------------------------------------------------------


def test_size_class_rounds_to_power_of_two():
    assert ShmPool.size_class(1) == ShmPool.MIN_CLASS
    assert ShmPool.size_class(ShmPool.MIN_CLASS) == ShmPool.MIN_CLASS
    assert ShmPool.size_class(ShmPool.MIN_CLASS + 1) == 2 * ShmPool.MIN_CLASS
    assert ShmPool.size_class(100_000) == 131_072


def test_acquire_release_recycles_segment():
    pool = ShmPool()
    try:
        seg = pool.acquire(5000)
        assert pool.misses == 1 and pool.hits == 0
        assert seg.size == 8192  # sized to the class, not the request
        name = seg.name
        assert pool.release(seg) is True
        assert pool.stats()["pooled_bytes"] == 8192
        # same class -> the parked segment comes back
        again = pool.acquire(6000)
        assert again.name == name
        assert pool.hits == 1
        # different class -> fresh segment
        other = pool.acquire(20_000)
        assert other.name != name
        assert pool.misses == 2
        pool.release(again)
        pool.release(other)
    finally:
        pool.teardown()


def test_release_refuses_foreign_and_overflow_segments():
    pool = ShmPool(max_per_class=1)
    foreign = shared_memory.SharedMemory(create=True, size=5000)
    try:
        # arbitrary-size (pre-pool) segment: never parked
        assert pool.release(foreign) is False
    finally:
        foreign.close()
        foreign.unlink()
    a = pool.acquire(100)
    b = pool.acquire(100)
    try:
        assert pool.release(a) is True
        # class list full (max_per_class=1): caller must unlink
        assert pool.release(b) is False
        assert pool.evicted == 1
    finally:
        b.close()
        b.unlink()
        pool.teardown()


def test_teardown_unlinks_everything():
    pool = ShmPool()
    seg = pool.acquire(1)
    name = seg.name
    pool.release(seg)
    stats = pool.teardown()
    assert stats["misses"] == 1 and stats["released"] == 1
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    # teardown leaves the pool usable and empty
    assert pool.stats()["pooled_bytes"] == 0


def test_pool_is_thread_safe():
    """Hammer one pool from several threads: the internal lock must keep
    the free lists and the byte budget consistent (no pop from an emptied
    list, no negative/runaway pooled_bytes) and every segment must end up
    either unlinked by its thread or reclaimed by teardown."""
    pool = ShmPool(max_per_class=4)
    errors: list[BaseException] = []

    def churn():
        try:
            for _ in range(200):
                seg = pool.acquire(5000)
                if not pool.release(seg):
                    seg.close()
                    seg.unlink()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    stats = pool.teardown()
    assert stats["pooled_bytes"] >= 0
    assert stats["hits"] + stats["misses"] == 4 * 200
    # after teardown the pool is empty and still usable
    assert pool.stats()["pooled_bytes"] == 0


# ---------------------------------------------------------------------------
# End-to-end reuse on the process engine
# ---------------------------------------------------------------------------


def test_pool_reuse_reported_in_trace():
    """A middle stage that consumes and produces same-class payloads
    recycles the segments it drains, and the counters reach the trace.

    The DP decomposition usually ships only small acks downstream of the
    heavy stage, so reuse is forced here with an explicit plan splitting
    the transform atoms onto unit 2 (large in, large out) and a low shm
    threshold."""
    app = make_zbuffer_app(width=64, height=64)
    workload = app.make_workload(dataset="small", num_packets=6)
    runtime_classes = dict(app.runtime_classes)
    for key, value in workload.params.items():
        if key.endswith("_class") and isinstance(value, type):
            for decl in ("VImage", "KNN", "ZBuffer", "ActivePixels"):
                if decl.lower() == key[: -len("_class")].lower():
                    runtime_classes.setdefault(decl, value)
    options = CompileOptions(
        env=cluster_config(3),
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        runtime_classes=runtime_classes,
        method_costs=dict(app.method_costs),
    )
    plan = DecompositionPlan((1, 1, 2, 2, 3, 3, 3), 3)
    result = compile_source(app.source, app.registry, options, plan=plan)
    specs = result.pipeline.specs(workload.packets, workload.params)
    trace = Trace()
    run = run_pipeline(
        specs,
        EngineOptions(
            engine="process",
            timeout=PROC_TIMEOUT,
            shm_min_bytes=4096,
            trace=trace,
        ),
    )
    assert workload.check(run.payloads[-1], workload.oracle())
    stats = trace.meta.get("shm_pool")
    assert stats is not None, "pool counters never reached the trace"
    assert stats["hits"] > 0
    assert stats["released"] > 0
    assert stats["misses"] > 0
    _no_orphans()


def test_pool_disabled_below_threshold():
    """With the default 64 KiB threshold the tiny workload never touches
    shared memory mid-stream; the trace then carries no pool note at all
    (or an all-flush one), and the run still checks out."""
    app = make_zbuffer_app(width=48, height=48)
    workload = app.make_workload(dataset="tiny", num_packets=4)
    runtime_classes = dict(app.runtime_classes)
    for key, value in workload.params.items():
        if key.endswith("_class") and isinstance(value, type):
            for decl in ("VImage", "KNN", "ZBuffer", "ActivePixels"):
                if decl.lower() == key[: -len("_class")].lower():
                    runtime_classes.setdefault(decl, value)
    options = CompileOptions(
        env=cluster_config(2),
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        runtime_classes=runtime_classes,
        method_costs=dict(app.method_costs),
    )
    result = compile_source(app.source, app.registry, options)
    specs = result.pipeline.specs(workload.packets, workload.params)
    trace = Trace()
    run = run_pipeline(
        specs,
        EngineOptions(engine="process", timeout=PROC_TIMEOUT, trace=trace),
    )
    assert workload.check(run.payloads[-1], workload.oracle())
    stats = trace.meta.get("shm_pool", {"hits": 0})
    assert stats["hits"] == 0
    _no_orphans()
