"""Grid-simulator tests: exactness against the §4.3 closed form, FIFO
multi-server behaviour, load imbalance, and hypothesis lower bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datacutter import (
    SimStage,
    multi_server_fifo,
    simulate,
    simulate_pipeline,
    stages_for_pipeline,
)


class TestMultiServerFifo:
    def test_single_server_serializes(self):
        completion, busy, wait = multi_server_fifo([0.0, 0.0, 0.0], 2.0, 1)
        assert completion == [2.0, 4.0, 6.0]
        assert busy == 6.0 and wait == 6.0

    def test_two_servers_parallelize(self):
        completion, _busy, _wait = multi_server_fifo([0.0, 0.0, 0.0, 0.0], 2.0, 2)
        assert sorted(completion) == [2.0, 2.0, 4.0, 4.0]

    def test_fifo_order_respected(self):
        # a late arrival must not jump ahead of queued work
        completion, _b, _w = multi_server_fifo([0.0, 0.1, 5.0], 2.0, 1)
        assert completion == [2.0, 4.0, 7.0]

    def test_per_packet_service_function(self):
        completion, _b, _w = multi_server_fifo([0.0, 0.0], lambda k: k + 1.0, 1)
        assert completion == [1.0, 3.0]

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            multi_server_fifo([0.0], -1.0, 1)


class TestPipelineSimulation:
    def test_matches_closed_form_width_one(self):
        """Constant times, width 1: makespan == (N-1)*bottleneck + fill."""
        comp, link = [2.0, 5.0, 1.0], [0.5, 0.25]
        report = simulate_pipeline(comp, link, [1, 1, 1], 20)
        assert report.makespan == pytest.approx(19 * 5.0 + sum(comp) + sum(link))

    def test_link_bottleneck(self):
        report = simulate_pipeline([1.0, 1.0], [10.0], [1, 1], 5)
        assert report.makespan == pytest.approx(4 * 10.0 + 12.0)

    def test_width_divides_steady_state(self):
        slow = simulate_pipeline([0.0, 4.0, 0.0], [0.0, 0.0], [1, 1, 1], 16)
        fast = simulate_pipeline([0.0, 4.0, 0.0], [0.0, 0.0], [1, 2, 1], 16)
        assert fast.makespan == pytest.approx(slow.makespan / 2, rel=0.1)

    def test_load_imbalance_limits_speedup(self):
        """One giant packet caps scaling — the §6.5 small-query effect."""
        times = lambda k: 10.0 if k == 0 else 0.1
        w1 = simulate_pipeline([times], [], [1], 8)
        w4 = simulate_pipeline([times], [], [4], 8)
        assert w4.makespan >= 10.0
        assert w1.makespan / w4.makespan < 1.2

    def test_stage_utilization(self):
        report = simulate_pipeline([1.0, 2.0], [0.0], [1, 1], 10)
        assert report.stage_busy["C2"] == pytest.approx(20.0)
        assert report.utilization("C2") > report.utilization("C1")

    def test_zero_packets(self):
        assert simulate_pipeline([1.0], [], [1], 0).makespan == 0.0

    def test_stage_interleaving_order(self):
        stages = stages_for_pipeline([1.0, 1.0, 1.0], [0.5, 0.5], [2, 2, 1])
        assert [s.name for s in stages] == ["C1", "L1", "C2", "L2", "C3"]
        # link channels = min(width of its endpoints)
        assert [s.servers for s in stages] == [2, 2, 2, 1, 1]

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            stages_for_pipeline([1.0, 1.0], [0.5, 0.5], [1, 1])


@given(
    st.lists(st.floats(0.01, 5.0), min_size=1, max_size=4),
    st.lists(st.floats(0.0, 2.0), min_size=0, max_size=3),
    st.integers(1, 30),
    st.integers(1, 4),
)
@settings(max_examples=80, deadline=None)
def test_makespan_bounds_property(comp, links, n, width):
    """Simulated makespan is sandwiched between the perfect-parallel lower
    bound and the fully-serial upper bound."""
    links = links[: max(len(comp) - 1, 0)]
    while len(links) < len(comp) - 1:
        links.append(0.0)
    widths = [width] * len(comp)
    report = simulate_pipeline(comp, links, widths, n)
    bottleneck = max(comp + links) if comp + links else 0.0
    fill = sum(comp) + sum(links)
    # lower bound: the slowest stage must process ceil(n/width) packets
    import math

    lower = max(
        max(comp) * math.ceil(n / width) if comp else 0.0,
        fill,
    )
    upper = n * fill + 1e-9
    assert lower - 1e-9 <= report.makespan <= upper
