"""Cost model tests (§4.3): environments, CostComp/CostComm, the
bottleneck formula, and transparent-copy widths."""

import pytest

from repro.cost import (
    ComputeUnit,
    Link,
    OpWeights,
    PAPER_CONFIGS,
    PipelineEnv,
    StageTimes,
    cluster_config,
    cost_comm,
    cost_comp,
    estimate_total_time,
    make_pipeline,
    pipeline_time,
    stage_times_for_assignment,
)
from repro.lang.intrinsics import OpCount


class TestEnvironment:
    def test_paper_configs_shape(self):
        for name, env in PAPER_CONFIGS.items():
            assert env.m == 3
            assert env.units[2].width == 1  # the view node
        assert PAPER_CONFIGS["2-2-1"].units[0].width == 2
        assert PAPER_CONFIGS["4-4-1"].units[1].width == 4

    def test_one_based_accessors(self):
        env = cluster_config(2)
        assert env.unit(1) is env.units[0]
        assert env.link(2) is env.links[1]

    def test_link_count_validated(self):
        with pytest.raises(ValueError, match="links"):
            PipelineEnv(
                (ComputeUnit("a", 1.0), ComputeUnit("b", 1.0)),
                (),
            )

    def test_invalid_unit_and_link(self):
        with pytest.raises(ValueError, match="power"):
            ComputeUnit("bad", 0.0)
        with pytest.raises(ValueError, match="width"):
            ComputeUnit("bad", 1.0, width=0)
        with pytest.raises(ValueError, match="bandwidth"):
            Link("bad", 0.0)

    def test_with_widths(self):
        env = make_pipeline([1.0, 1.0], [10.0]).with_widths([3, 2])
        assert [u.width for u in env.units] == [3, 2]


class TestElementaryCosts:
    def test_cost_comp_scales_with_power(self):
        fast = ComputeUnit("fast", 2e9)
        slow = ComputeUnit("slow", 1e9)
        ops = OpCount(flops=1000)
        assert cost_comp(slow, ops) == pytest.approx(2 * cost_comp(fast, ops))

    def test_cost_comp_accepts_raw_float(self):
        unit = ComputeUnit("u", 100.0)
        assert cost_comp(unit, 50.0) == pytest.approx(0.5)

    def test_weights_applied(self):
        unit = ComputeUnit("u", 1.0)
        ops = OpCount(flops=1, iops=2, branches=4)
        w = OpWeights(flop=1.0, iop=0.5, branch=0.25)
        assert cost_comp(unit, ops, w) == pytest.approx(1 + 1 + 1)

    def test_cost_comm_includes_latency(self):
        link = Link("l", bandwidth=100.0, latency=0.5)
        assert cost_comm(link, 200.0) == pytest.approx(2.5)


class TestPipelineTime:
    def test_formula_matches_paper(self):
        """(N-1)*T(bottleneck) + sum T(C_i) + sum T(L_i)."""
        times = StageTimes(comp=[1.0, 5.0, 2.0], comm=[0.5, 0.25])
        assert times.bottleneck == 5.0
        assert pipeline_time(times, 10) == pytest.approx(9 * 5.0 + 8.75)

    def test_link_can_be_bottleneck(self):
        times = StageTimes(comp=[1.0, 1.0], comm=[7.0])
        assert times.bottleneck == 7.0

    def test_drain_links_excluded_from_bottleneck(self):
        times = StageTimes(comp=[1.0, 1.0], comm=[7.0], drain=[True])
        assert times.bottleneck == 1.0
        assert times.fill_time() == pytest.approx(9.0)

    def test_zero_packets(self):
        assert pipeline_time(StageTimes(comp=[1.0], comm=[]), 0) == 0.0

    def test_widths_divide_stage_and_link_times(self):
        env = make_pipeline([10.0, 10.0], [100.0], widths=[2, 2])
        times = stage_times_for_assignment(env, [10.0, 10.0], [100.0])
        assert times.comp == [0.5, 0.5]
        assert times.comm[0] == pytest.approx(0.5)

    def test_width_one_consumer_limits_link_streams(self):
        env = make_pipeline([10.0, 10.0], [100.0], widths=[4, 1])
        times = stage_times_for_assignment(env, [0.0, 0.0], [100.0])
        assert times.comm[0] == pytest.approx(1.0)  # single stream

    def test_estimate_total_time_end_to_end(self):
        env = make_pipeline([1.0, 1.0], [1.0])
        total = estimate_total_time(env, [2.0, 3.0], [1.5], num_packets=4)
        # bottleneck = 3.0; fill = 2 + 3 + 1.5
        assert total == pytest.approx(3 * 3.0 + 6.5)

    def test_mismatched_inputs_rejected(self):
        env = make_pipeline([1.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            stage_times_for_assignment(env, [1.0], [1.0])
