"""Compilation-driver tests: options, phase wiring, plan overrides."""

import pytest

from repro import CompileOptions, WorkloadProfile, compile_source, default_plan
from repro.core.compiler import analyze_source, source_only_plan
from repro.cost import cluster_config
from repro.lang import Intrinsic, IntrinsicRegistry

SOURCE = """
native Rectdomain<1, E> read();
native double[] work(double[] v, double s);
class E { double key; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc other) { return; }
}
class M {
    void run(double s, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, E> elems = read();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {
            Acc local = new Acc();
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] v = work(e.data, s);
                    local.add(v);
                }
            }
            result.merge(local);
        }
    }
}
"""


def options(**kw):
    defaults = dict(
        env=cluster_config(1),
        profile=WorkloadProfile({"num_packets": 4, "packet_size": 100}),
        size_hints={"E.data": 4},
    )
    defaults.update(kw)
    return CompileOptions(**defaults)


class TestDriver:
    def test_full_compilation(self):
        result = compile_source(SOURCE, None, options())
        assert result.plan is not None
        assert len(result.pipeline.filters) == 3
        assert len(result.tasks) == len(result.chain.atoms)
        assert len(result.volumes) == len(result.chain.atoms) + 1

    def test_objectives(self):
        for objective in ("fill", "total", "brute"):
            result = compile_source(SOURCE, None, options(objective=objective))
            assert result.plan is not None

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            compile_source(SOURCE, None, options(objective="magic"))

    def test_options_required(self):
        with pytest.raises(ValueError, match="required"):
            compile_source(SOURCE, None, None)

    def test_plan_override(self):
        checked, chain, _ = analyze_source(SOURCE)
        plan = default_plan(chain, 3)
        result = compile_source(SOURCE, None, options(), plan=plan)
        assert result.plan is plan
        # all atoms on the compute unit
        assert result.pipeline.filters[0].atoms == []
        assert result.pipeline.filters[1].atoms == list(
            range(1, len(chain.atoms) + 1)
        )

    def test_source_only_plan(self):
        checked, chain, _ = analyze_source(SOURCE)
        plan = source_only_plan(chain, 3)
        assert plan.filters_on_unit(1) == list(range(1, len(chain.atoms) + 1))

    def test_method_selection(self):
        two = SOURCE.replace(
            "class M {",
            """
            class Other {
                void alt(Rectdomain<1, E> d) {
                    PipelinedLoop (q in d) { int z = 1; }
                }
            }
            class M {
            """,
        )
        result = compile_source(two, None, options(method="run"))
        assert result.chain.method.name == "run"
        with pytest.raises(ValueError, match="no PipelinedLoop"):
            compile_source(two, None, options(method="nothere"))

    def test_no_pipelined_loop_rejected(self):
        with pytest.raises(ValueError, match="no PipelinedLoop"):
            compile_source("class A { void f() { } }", None, options())

    def test_volumes_monotone_through_guard(self):
        result = compile_source(SOURCE, None, options())
        guard = next(a for a in result.chain.atoms if a.guard is not None)
        assert result.volumes[guard.index] < result.volumes[guard.index - 1]

    def test_registry_implementations_reach_codegen(self):
        registry = IntrinsicRegistry(
            [Intrinsic("work", (), None, fn=lambda v, s: v)]
        )
        result = compile_source(SOURCE, registry, options())
        gen = result.pipeline
        # the intrinsic table used by generated filters has the impl
        src = "\n".join(gf.source for gf in gen.filters)
        assert "_intr['work']" in src

    def test_report_contains_volumes_and_plan(self):
        result = compile_source(SOURCE, None, options())
        report = result.report()
        assert "ops/packet" in report and "plan:" in report
