"""Filter-generation tests (§5): per-unit fusion, relay re-packing,
FINAL-buffer merging, plan invariance of results."""

import numpy as np
import pytest

from repro import CompileOptions, WorkloadProfile, compile_source
from repro.codegen import RawPacket
from repro.cost import cluster_config, make_pipeline
from repro.datacutter import run_pipeline
from repro.decompose import DecompositionPlan, enumerate_plans
from repro.lang import Intrinsic, IntrinsicRegistry, OpCount
from repro.lang.types import DOUBLE, ArrayType

SOURCE = """
native Rectdomain<1, Item> read_items();
native double[] scale_up(double[] data, double s);
native void display(Tracker t);

class Item { double key; double[] data; }

class Tracker implements Reducinterface {
    double[] acc;
    void observe(double[] v) { return; }
    void merge(Tracker other) { return; }
}

class Main {
    void run(double s, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, Item> items = read_items();
        Tracker result = new Tracker();
        PipelinedLoop (p in items) {
            Tracker local = new Tracker();
            foreach (item in p) {
                if (item.key < cutoff) {
                    double[] v = scale_up(item.data, s);
                    local.observe(v);
                }
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


class Tracker:
    def __init__(self):
        self.acc = np.zeros(1)

    def observe(self, v):
        self.acc[0] += float(np.sum(v))

    def merge(self, other):
        self.acc[0] += other.acc[0]

    def pack(self):
        return {"acc": self.acc.copy()}

    @classmethod
    def unpack(cls, packed):
        obj = cls()
        obj.acc = packed["acc"].copy()
        return obj


def registry():
    da = ArrayType(DOUBLE)
    return IntrinsicRegistry(
        [
            Intrinsic("read_items", (), None, fn=lambda: None, writes=("return",)),
            Intrinsic(
                "scale_up",
                (da, DOUBLE),
                da,
                fn=lambda d, s: np.asarray(d) * s,
                reads=("data", "s"),
                writes=("return",),
                cost=lambda p: OpCount(flops=4),
            ),
            Intrinsic("display", (), None, fn=lambda t: None, reads=("t",), writes=()),
        ]
    )


def make_packets(num_packets=4, size=50, seed=9):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(num_packets):
        out.append(
            RawPacket(
                count=size,
                fields={
                    "key": rng.uniform(0, 1, size),
                    "data": rng.uniform(0, 1, (size, 3)),
                },
            )
        )
    return out


def oracle(packets, s, cutoff):
    total = 0.0
    for pk in packets:
        mask = pk.fields["key"] < cutoff
        total += pk.fields["data"][mask].sum() * s
    return total


def options(m=3):
    env = cluster_config(1) if m == 3 else make_pipeline([250e6] * m, [125e6] * (m - 1))
    return CompileOptions(
        env=env,
        profile=WorkloadProfile(
            {"num_packets": 4, "packet_size": 50, "sel.g0": 0.4, "Item.data": 3}
        ),
        size_hints={"Item.data": 3, "v": 3},
        runtime_classes={"Tracker": Tracker},
    )


def run_with_plan(plan=None, m=3, widths=None):
    result = compile_source(SOURCE, registry(), options(m), plan=plan)
    packets = make_packets()
    params = {"s": 2.0, "cutoff": 0.5, "num_packets": 4}
    specs = result.pipeline.specs(packets, params, widths=widths)
    out = run_pipeline(specs)
    got = out.payloads[-1]["result"].acc[0]
    expect = oracle(packets, 2.0, 0.5)
    return got, expect, result


class TestPlanInvariance:
    def test_every_plan_gives_the_same_answer(self):
        """The decomposition choice must never change the result — run the
        program under every possible 3-unit placement."""
        _, _, base = run_with_plan()
        n1 = len(base.chain.atoms)
        for plan in enumerate_plans(n1, 3):
            got, expect, _ = run_with_plan(plan=plan)
            assert got == pytest.approx(expect, rel=1e-12), f"plan {plan} wrong"

    def test_two_and_four_unit_pipelines(self):
        for m in (2, 4):
            got, expect, result = run_with_plan(m=m)
            assert len(result.pipeline.filters) == m
            assert got == pytest.approx(expect, rel=1e-12)

    def test_single_unit_pipeline(self):
        got, expect, result = run_with_plan(m=1)
        assert len(result.pipeline.filters) == 1
        assert got == pytest.approx(expect, rel=1e-12)


class TestGeneratedStructure:
    def test_relay_unit_repacks(self):
        n1 = len(compile_source(SOURCE, registry(), options()).chain.atoms)
        plan = DecompositionPlan.from_cuts([n1, n1], n1, 3)  # units 2,3 empty
        got, expect, result = run_with_plan(plan=plan)
        assert got == pytest.approx(expect)
        relay_src = result.pipeline.filter_source(2)
        assert "_unpack" in relay_src and "_pack" in relay_src

    def test_empty_source_unit_forwards_raw(self):
        n1 = len(compile_source(SOURCE, registry(), options()).chain.atoms)
        plan = DecompositionPlan.from_cuts([0, n1], n1, 3)  # Default shape
        got, expect, result = run_with_plan(plan=plan)
        assert got == pytest.approx(expect)
        src1 = result.pipeline.filter_source(1)
        assert "forwarding loop" in src1

    def test_guard_emitted_as_continue(self):
        _, _, result = run_with_plan()
        all_src = "\n".join(gf.source for gf in result.pipeline.filters)
        assert "continue" in all_src
        assert "item__key < cutoff" in all_src

    def test_final_merge_across_copies(self):
        """Transparent copies of the merging filter each hold a partial
        result; the view filter combines the FINAL buffers."""
        got, expect, result = run_with_plan(widths=[1, 2, 1])
        assert got == pytest.approx(expect)

    def test_fused_loop_single_pass(self):
        """All element atoms on one unit fuse into one loop."""
        n1 = len(compile_source(SOURCE, registry(), options()).chain.atoms)
        plan = DecompositionPlan.from_cuts([n1, n1], n1, 3)
        _, _, result = run_with_plan(plan=plan)
        src1 = result.pipeline.filter_source(1)
        assert src1.count("for _r in range(_n):") == 1
