"""Every application's dialect source (the Figure 1 shape) compiles
through the full frontend + analyses; boundary structure matches §6's
described decompositions."""

import pytest

from repro.apps import (
    make_active_pixels_app,
    make_knn_app,
    make_vmscope_app,
    make_zbuffer_app,
)
from repro.core.compiler import analyze_source

APPS = {
    "zbuffer": make_zbuffer_app,
    "active-pixels": make_active_pixels_app,
    "knn": make_knn_app,
    "vmscope": make_vmscope_app,
}


@pytest.fixture(params=sorted(APPS))
def app(request):
    return APPS[request.param]()


def test_source_compiles(app):
    checked, chain, comm = analyze_source(app.source, app.registry)
    assert len(chain.atoms) >= 3
    assert len(comm.reqcomm) == len(chain.boundaries)


def test_runtime_params_declared(app):
    checked, _chain, _comm = analyze_source(app.source, app.registry)
    assert any(p.name == "num_packets" for p in checked.runtime_params)


def test_reduction_classes_marked(app):
    checked, _chain, _comm = analyze_source(app.source, app.registry)
    reductions = [n for n, t in checked.classes.items() if t.is_reduction]
    assert len(reductions) == 1


def test_figure1_shape_zbuffer():
    """The z-buffer source matches the Figure 1 structure: packet loop,
    per-packet accumulator, guarded per-cube processing, final merge."""
    app = make_zbuffer_app()
    checked, chain, _ = analyze_source(app.source, app.registry)
    # guard stage exists (the isovalue rejection test)
    guards = [a for a in chain.atoms if a.guard is not None]
    assert len(guards) == 1
    # three call stages follow it (extract, project, rasterize)
    calls_after = [
        a
        for a in chain.atoms
        if a.kind == "element" and a.index > guards[0].index and a.stmts
    ]
    assert len(calls_after) >= 3
    # the final packet atom merges into the global reduction
    assert any("merge" in repr(s) for s in chain.atoms[-1].stmts)


def test_knn_has_no_guard():
    """knn processes every point — its win is volume, not filtering."""
    app = make_knn_app()
    _checked, chain, _ = analyze_source(app.source, app.registry)
    assert all(a.guard is None for a in chain.atoms)


def test_vmscope_guard_is_intersection_test():
    app = make_vmscope_app()
    _checked, chain, _ = analyze_source(app.source, app.registry)
    guards = [a for a in chain.atoms if a.guard is not None]
    assert len(guards) == 1


def test_workloads_deterministic(app):
    kwargs = {}
    if app.name.startswith("knn"):
        kwargs = dict(n_points=500, num_packets=2)
    elif app.name == "vmscope":
        kwargs = dict(query="small", num_packets=2)
    else:
        kwargs = dict(dataset="tiny", num_packets=2)
    w1 = app.make_workload(**kwargs)
    w2 = app.make_workload(**kwargs)
    assert w1.profile.params == w2.profile.params
    assert w1.input_bytes() == w2.input_bytes()
