"""Alias-oracle and workload-profile tests."""


from repro.analysis import AliasOracle, ConservativeOracle, SymExpr, WorkloadProfile
from repro.analysis.values import AccessPath, Section
from repro.lang.types import DOUBLE, ArrayType, ClassType, VarSymbol


def sym(name, t=None):
    return VarSymbol(name, t or ClassType("E"))


class TestAliasOracle:
    def test_distinct_roots_do_not_alias(self):
        oracle = AliasOracle()
        assert not oracle.may_alias_roots(sym("a"), sym("b"))

    def test_same_root_aliases(self):
        oracle = AliasOracle()
        a = sym("a")
        assert oracle.may_alias_roots(a, a)

    def test_copy_creates_alias(self):
        oracle = AliasOracle()
        a, b = sym("a"), sym("b")
        oracle.record_copy(b, a)
        assert oracle.may_alias_roots(a, b)
        assert oracle.may_alias_roots(b, a)

    def test_transitive_copy_group(self):
        oracle = AliasOracle()
        a, b, c = sym("a"), sym("b"), sym("c")
        oracle.record_copy(b, a)
        oracle.record_copy(c, a)
        assert oracle.may_alias_roots(b, c) or oracle.may_alias_roots(c, b)

    def test_must_define_same_root_only(self):
        oracle = AliasOracle()
        a, b = sym("a"), sym("b")
        oracle.record_copy(b, a)
        pa, pb = AccessPath(a).field("x"), AccessPath(b).field("x")
        assert oracle.must_define(pa, pa)
        assert not oracle.must_define(pa, pb)  # may-alias is not must

    def test_conservative_oracle(self):
        oracle = ConservativeOracle()
        a, b = sym("a"), sym("b")
        assert oracle.may_alias_roots(a, b)
        arr = sym("v", ArrayType(DOUBLE))
        p1 = AccessPath(arr).elem(Section.point(SymExpr.const(0)))
        p2 = AccessPath(arr).elem(
            Section.rect()
        ) if False else AccessPath(arr).elem(Section.full())
        assert not oracle.must_define(p2, p1)  # only identical paths
        assert oracle.must_define(p1, p1)


class TestWorkloadProfile:
    def test_defaults(self):
        profile = WorkloadProfile({})
        assert profile.num_packets == 1
        assert profile.packet_size == 1.0
        assert profile["anything"] == 1.0

    def test_evaluate_symexpr(self):
        profile = WorkloadProfile({"n": 10.0})
        assert profile.evaluate(SymExpr.var("n") * 2 + 1) == 21.0
        assert profile.evaluate(5) == 5.0

    def test_with_params_copies(self):
        base = WorkloadProfile({"a": 1.0})
        derived = base.with_params(a=2.0, b=3.0)
        assert base["a"] == 1.0
        assert derived["a"] == 2.0 and derived["b"] == 3.0

    def test_get_default(self):
        assert WorkloadProfile({}).get("missing", 7.0) == 7.0

    def test_as_mapping_detached(self):
        profile = WorkloadProfile({"x": 1.0})
        mapping = profile.as_mapping()
        mapping["x"] = 99.0
        assert profile["x"] == 1.0
