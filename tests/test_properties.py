"""Cross-cutting property tests: the §3 semantic guarantees the compiler
relies on, analysis-precision ablations, and pipeline invariances."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AliasOracle,
    ConservativeOracle,
    GenConsAnalyzer,
    analyze_communication,
    build_filter_chain,
)
from repro.lang import check, parse

SOURCE = """
native Rectdomain<1, E> read();
native double[] work(double[] v, double s);
class E { double key; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc o) { return; }
}
class M {
    void run(double s, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, E> elems = read();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {
            Acc local = new Acc();
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] v = work(e.data, s);
                    local.add(v);
                }
            }
            result.merge(local);
        }
    }
}
"""


def reqcomm_sizes(oracle):
    checked = check(parse(SOURCE))
    meth, loop = checked.pipelined_loops()[0]
    chain = build_filter_chain(checked, meth, loop)
    analysis = analyze_communication(
        chain, GenConsAnalyzer(checked, alias=oracle)
    )
    return [len(req) for req in analysis.reqcomm]


class TestAliasPrecisionAblation:
    def test_conservative_oracle_never_smaller(self):
        """Ablation: dropping the dialect's aliasing guarantees can only
        grow (or keep) every ReqComm set — precision is monotone."""
        precise = reqcomm_sizes(AliasOracle())
        conservative = reqcomm_sizes(ConservativeOracle())
        assert len(precise) == len(conservative)
        assert all(c >= p for p, c in zip(precise, conservative))


class TestAnalysisDeterminism:
    def test_reqcomm_stable_across_runs(self):
        a = reqcomm_sizes(AliasOracle())
        b = reqcomm_sizes(AliasOracle())
        assert a == b


class TestForeachOrderIndependence:
    """§3: foreach iterations may run in any order.  The generated pipeline
    relies on this; verify it for the real application reductions."""

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_zbuffer_accumulation_commutes(self, rng):
        from repro.apps.isosurface import make_zbuffer_class

        ZB = make_zbuffer_class(8, 8)
        frags = [
            np.array(
                [rng.randint(0, 7), rng.randint(0, 7), rng.uniform(0, 1), rng.uniform(0, 1)]
            )
            for _ in range(20)
        ]
        order = list(range(len(frags)))
        rng.shuffle(order)
        a, b = ZB(), ZB()
        for f in frags:
            a.accum(f)
        for i in order:
            b.accum(frags[i])
        assert np.array_equal(a.image(), b.image())

    @given(st.integers(2, 6), st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_partition_independence(self, parts, rng):
        """Merging per-partition accumulators gives the sequential answer
        regardless of how elements are partitioned — the property that
        makes packet boundaries and transparent copies safe."""
        from repro.apps import make_knn_class

        KNN = make_knn_class(4)
        items = [
            (rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1))
            for _ in range(40)
        ]
        sequential = KNN()
        for item in items:
            sequential.insert(*item)
        # random partition
        buckets = [[] for _ in range(parts)]
        for item in items:
            buckets[rng.randrange(parts)].append(item)
        merged = KNN()
        for bucket in buckets:
            acc = KNN()
            for item in bucket:
                acc.insert(*item)
            merged.merge(acc)
        assert np.allclose(merged.rows(), sequential.rows())


class TestVolumeMonotonicity:
    @given(
        st.floats(0.05, 0.95),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=25, deadline=None)
    def test_volume_monotone_in_selectivity(self, s1, s2):
        """More elements surviving the guard can never shrink a
        post-guard boundary's volume."""
        from repro.analysis import VolumeModel, WorkloadProfile

        checked = check(parse(SOURCE))
        meth, loop = checked.pipelined_loops()[0]
        chain = build_filter_chain(checked, meth, loop)
        analysis = analyze_communication(chain)
        vm = VolumeModel(checked, size_hints={"E.data": 4})
        guard = next(a for a in chain.atoms if a.guard is not None)
        b = chain.boundaries[guard.index - 1]
        req = analysis.reqcomm[guard.index - 1]
        lo_sel, hi_sel = sorted((s1, s2))
        lo = vm.boundary_volume(
            chain, b, req, WorkloadProfile({"packet_size": 100, "sel.g0": lo_sel})
        )
        hi = vm.boundary_volume(
            chain, b, req, WorkloadProfile({"packet_size": 100, "sel.g0": hi_sel})
        )
        assert lo <= hi + 1e-9
