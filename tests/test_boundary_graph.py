"""Candidate filter boundary graph tests (§4.1)."""

import pytest

from repro.analysis import CandidateBoundaryGraph, build_filter_chain, chain_from_filter_chain
from repro.lang import check, parse


def simple_chain():
    checked = check(
        parse(
            """
            native Rectdomain<1, E> read();
            native double[] work(double[] v);
            class E { double key; double[] data; }
            class M {
                void run() {
                    Rectdomain<1, E> d = read();
                    PipelinedLoop (p in d) {
                        foreach (e in p) { double[] a = work(e.data); }
                    }
                }
            }
            """
        )
    )
    meth, loop = checked.pipelined_loops()[0]
    return build_filter_chain(checked, meth, loop)


class TestGraphStructure:
    def test_chain_graph_is_linear_and_acyclic(self):
        chain = simple_chain()
        graph = chain_from_filter_chain(chain)
        assert graph.is_acyclic()
        paths = list(graph.flow_paths())
        assert len(paths) == 1
        segments = graph.segments_on_path(paths[0])
        assert [s.index for s in segments] == [a.index for a in chain.atoms]

    def test_start_predominates_end_postdominates(self):
        graph = chain_from_filter_chain(simple_chain())
        order = graph.topological_order()
        assert order[0] == graph.start_key
        assert order[-1] == graph.end_key

    def test_branching_graph_flow_paths(self):
        graph = CandidateBoundaryGraph()
        graph.add_boundary("b1")
        graph.add_boundary("b2a")
        graph.add_boundary("b2b")
        graph.add_edge(graph.start_key, "b1")
        graph.add_edge("b1", "b2a")
        graph.add_edge("b1", "b2b")
        graph.add_edge("b2a", graph.end_key)
        graph.add_edge("b2b", graph.end_key)
        assert graph.is_acyclic()
        paths = list(graph.flow_paths())
        assert len(paths) == 2

    def test_cycle_detected(self):
        graph = CandidateBoundaryGraph()
        graph.add_boundary("x")
        graph.add_boundary("y")
        graph.add_edge("x", "y")
        graph.add_edge("y", "x")
        assert not graph.is_acyclic()
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_duplicate_node_rejected(self):
        graph = CandidateBoundaryGraph()
        graph.add_boundary("b")
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_boundary("b")

    def test_edge_endpoints_must_exist(self):
        graph = CandidateBoundaryGraph()
        with pytest.raises(KeyError):
            graph.add_edge("missing", graph.end_key)

    def test_flow_path_limit(self):
        graph = CandidateBoundaryGraph()
        prev = graph.start_key
        # diamond chain: 2^10 paths
        for i in range(10):
            a, b, join = f"a{i}", f"b{i}", f"j{i}"
            graph.add_boundary(a)
            graph.add_boundary(b)
            graph.add_boundary(join)
            graph.add_edge(prev, a)
            graph.add_edge(prev, b)
            graph.add_edge(a, join)
            graph.add_edge(b, join)
            prev = join
        graph.add_edge(prev, graph.end_key)
        with pytest.raises(ValueError, match="more than"):
            list(graph.flow_paths(limit=100))
        assert len(list(graph.flow_paths(limit=2000))) == 1024
