"""ReqComm propagation and volume-model tests (§4.2-4.3), including the
paper's boundary-dropping correctness argument as a property."""

import pytest

from repro.analysis import (
    GenConsAnalyzer,
    VolumeModel,
    WorkloadProfile,
    analyze_communication,
    build_filter_chain,
)
from repro.lang import Intrinsic, IntrinsicRegistry, check, parse
from repro.lang.types import DOUBLE, ArrayType

SOURCE = """
native Rectdomain<1, Cube> read();
native double[] extract(double[] vals, double iso);
native double[] project(double[] tris, double angle);
native void show(Acc a);

class Cube { double minval; double maxval; double[] vals; }

class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc other) { return; }
}

class M {
    void run(double iso, double angle) {
        runtime_define int num_packets;
        Rectdomain<1, Cube> cubes = read();
        Acc result = new Acc();
        PipelinedLoop (p in cubes) {
            Acc local = new Acc();
            foreach (c in p) {
                if (c.minval <= iso && c.maxval >= iso) {
                    double[] tris = extract(c.vals, iso);
                    double[] polys = project(tris, angle);
                    local.add(polys);
                }
            }
            result.merge(local);
        }
        show(result);
    }
}
"""


def registry():
    da = ArrayType(DOUBLE)
    return IntrinsicRegistry(
        [
            Intrinsic("read", (), None, fn=lambda: None, writes=("return",)),
            Intrinsic("extract", (da, DOUBLE), da, fn=None, reads=("vals", "iso")),
            Intrinsic("project", (da, DOUBLE), da, fn=None, reads=("tris", "angle")),
            Intrinsic("show", (), None, fn=None, reads=("a",), writes=()),
        ]
    )


@pytest.fixture(scope="module")
def analyzed():
    checked = check(parse(SOURCE), registry())
    meth, loop = checked.pipelined_loops()[0]
    chain = build_filter_chain(checked, meth, loop)
    analysis = analyze_communication(chain, GenConsAnalyzer(checked))
    return chain, analysis


def names(ps):
    return {repr(p) for p in ps}


class TestReqCommPropagation:
    def test_boundary_count(self, analyzed):
        chain, analysis = analyzed
        assert len(analysis.reqcomm) == len(chain.boundaries)

    def test_live_out_is_result(self, analyzed):
        _chain, analysis = analyzed
        assert "result" in names(analysis.live_out)

    def test_guard_fields_dropped_after_guard(self, analyzed):
        chain, analysis = analyzed
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        before = names(analysis.reqcomm[guard_atom.index - 2]) if guard_atom.index >= 2 else set()
        after = names(analysis.reqcomm[guard_atom.index - 1])
        assert "c.minval" in before or guard_atom.index == 1
        assert "c.minval" not in after

    def test_intermediate_values_appear_then_die(self, analyzed):
        chain, analysis = analyzed
        seen_tris = [i for i, req in enumerate(analysis.reqcomm) if "tris" in names(req)]
        assert seen_tris, "tris never crosses any boundary"
        # tris is dead after project consumes it
        assert seen_tris == list(
            range(min(seen_tris), max(seen_tris) + 1)
        ), "tris liveness must be one contiguous interval"

    def test_boundary_annotation_attached(self, analyzed):
        chain, _ = analyzed
        assert all(b.reqcomm is not None for b in chain.boundaries)

    def test_dropping_boundary_keeps_reqcomm_correct(self, analyzed):
        """§4.2's argument: ReqComm(f1) stays correct when the boundary
        between b1 and b2 is not selected.  Formally: ReqComm(b_{i-1})
        computed over the merged segment equals the two-step computation."""
        chain, analysis = analyzed
        analyzer = GenConsAnalyzer(chain.checked)
        for i in range(len(chain.boundaries) - 1):
            atom_a = chain.atoms[i + 1]
            atom_b = chain.atoms[i + 2]
            merged_facts = analyzer.analyze(list(atom_a.stmts) + list(atom_b.stmts))
            if atom_a.guard is not None or atom_b.guard is not None:
                continue  # guards are boundary-attached, not mergeable text
            downstream = (
                analysis.reqcomm[i + 2]
                if i + 2 < len(analysis.reqcomm)
                else analysis.live_out
            )
            merged_req = downstream.difference_must(merged_facts.gen).union(
                merged_facts.cons
            )
            two_step = analysis.reqcomm[i]
            assert names(merged_req) <= names(two_step), (
                f"merging f{i + 2},f{i + 3} demanded more than the chain: "
                f"{names(merged_req) - names(two_step)}"
            )


class TestVolumeModel:
    def test_guard_reduces_downstream_volume(self, analyzed):
        chain, analysis = analyzed
        vm = VolumeModel(chain.checked, size_hints={"Cube.vals": 8})
        profile = WorkloadProfile(
            {"num_packets": 10, "packet_size": 1000, "sel.g0": 0.1}
        )
        vols = [
            vm.boundary_volume(chain, b, req, profile)
            for b, req in zip(chain.boundaries, analysis.reqcomm)
        ]
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        assert vols[guard_atom.index - 1] < vols[guard_atom.index - 2]

    def test_selectivity_scales_volume(self, analyzed):
        chain, analysis = analyzed
        vm = VolumeModel(chain.checked, size_hints={"Cube.vals": 8})
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        b = chain.boundaries[guard_atom.index - 1]
        req = analysis.reqcomm[guard_atom.index - 1]
        lo = vm.boundary_volume(
            chain, b, req, WorkloadProfile({"packet_size": 1000, "sel.g0": 0.1})
        )
        hi = vm.boundary_volume(
            chain, b, req, WorkloadProfile({"packet_size": 1000, "sel.g0": 0.5})
        )
        assert hi == pytest.approx(5 * lo, rel=0.01)

    def test_stream_cardinality(self, analyzed):
        chain, _ = analyzed
        vm = VolumeModel(chain.checked)
        profile = WorkloadProfile({"packet_size": 100, "sel.g0": 0.25})
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        before = vm.stream_cardinality(chain, guard_atom.index - 1, 0, profile)
        after = vm.stream_cardinality(chain, guard_atom.index, 0, profile)
        assert before == 100 and after == 25

    def test_pristine_reduction_free_written_reduction_paid(self, analyzed):
        chain, analysis = analyzed
        vm = VolumeModel(chain.checked, size_hints={"Acc.total": 1000})
        profile = WorkloadProfile({"packet_size": 10, "num_packets": 4})
        add_atom = next(
            a.index for a in chain.atoms if any("add" in repr(s) for s in a.stmts)
        )
        vol_before = vm.boundary_volume(
            chain,
            chain.boundaries[add_atom - 2],
            analysis.reqcomm[add_atom - 2],
            profile,
        )
        vol_after = vm.boundary_volume(
            chain,
            chain.boundaries[add_atom - 1],
            analysis.reqcomm[add_atom - 1],
            profile,
        )
        # after the update, the 8000-byte accumulator crosses
        assert vol_after - vol_before > 7000

    def test_class_bytes(self, analyzed):
        chain, _ = analyzed
        vm = VolumeModel(chain.checked, size_hints={"Cube.vals": 8})
        profile = WorkloadProfile({})
        assert vm.class_bytes("Cube", profile) == 8 + 8 + 8 * 8
