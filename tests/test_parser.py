"""Parser unit tests: grammar coverage and error reporting."""

import pytest

from repro.lang import ast, parse
from repro.lang.errors import ParseError


def parse_stmts(body: str) -> list[ast.Stmt]:
    program = parse("class T { void m() { %s } }" % body)
    return program.classes[0].methods[0].body.body


def parse_expr(text: str) -> ast.Expr:
    stmt = parse_stmts(f"x = {text};")[0]
    assert isinstance(stmt, ast.Assign)
    return stmt.value


class TestDeclarations:
    def test_empty_class(self):
        program = parse("class A { }")
        assert program.classes[0].name == "A"
        assert program.classes[0].fields == []
        assert program.classes[0].methods == []

    def test_implements_reducinterface(self):
        program = parse("class A implements Reducinterface { }")
        assert program.classes[0].is_reduction

    def test_fields_with_types_and_arrays(self):
        program = parse("class A { int n; double[] xs; boolean f; A next; }")
        fields = program.classes[0].fields
        assert [f.name for f in fields] == ["n", "xs", "f", "next"]
        assert fields[1].decl_type.array_depth == 1

    def test_comma_separated_fields(self):
        program = parse("class A { double x, y, z; }")
        assert [f.name for f in program.classes[0].fields] == ["x", "y", "z"]

    def test_method_with_params(self):
        program = parse("class A { double f(int n, double[] v) { return 0.0; } }")
        method = program.classes[0].methods[0]
        assert method.name == "f"
        assert [p.name for p in method.params] == ["n", "v"]
        assert method.owner == "A"

    def test_native_declaration(self):
        program = parse("native double[] work(Cube c, double iso);")
        nat = program.natives[0]
        assert nat.name == "work"
        assert nat.ret_type.array_depth == 1

    def test_rectdomain_type(self):
        program = parse("native Rectdomain<1, Cube> read();")
        t = program.natives[0].ret_type
        assert t.name == "Rectdomain" and t.dim == 1 and t.elem == "Cube"

    def test_top_level_junk_rejected(self):
        with pytest.raises(ParseError, match="expected 'class' or 'native'"):
            parse("int x;")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_stmts("int x = 3;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x" and isinstance(stmt.init, ast.IntLit)

    def test_runtime_define(self):
        (stmt,) = parse_stmts("runtime_define int n;")
        assert isinstance(stmt, ast.VarDecl) and stmt.runtime_define

    def test_assignment_and_compound(self):
        stmts = parse_stmts("x = 1; x += 2; x[0] -= 3;")
        assert [s.op for s in stmts] == ["", "+", "-"]

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="invalid assignment target"):
            parse_stmts("f() = 3;")

    def test_if_else_normalized_to_blocks(self):
        (stmt,) = parse_stmts("if (x < 1) y = 1; else y = 2;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.then, ast.Block) and isinstance(stmt.other, ast.Block)

    def test_while_loop(self):
        (stmt,) = parse_stmts("while (x < 10) x = x + 1;")
        assert isinstance(stmt, ast.While)

    def test_for_loop_full_header(self):
        (stmt,) = parse_stmts("for (int i = 0; i < 10; i = i + 1) x = x + i;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.update, ast.Assign)

    def test_for_loop_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) break;")
        assert isinstance(stmt, ast.For)
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_foreach(self):
        (stmt,) = parse_stmts("foreach (c in p) { x = c.v; }")
        assert isinstance(stmt, ast.Foreach)
        assert stmt.var == "c"

    def test_pipelined_loop(self):
        (stmt,) = parse_stmts("PipelinedLoop (p in cubes) { x = 1; }")
        assert isinstance(stmt, ast.PipelinedLoop)
        assert stmt.var == "p"

    def test_return_break_continue(self):
        stmts = parse_stmts("return 1; break; continue; return;")
        assert isinstance(stmts[0], ast.Return) and stmts[0].value is not None
        assert isinstance(stmts[1], ast.Break)
        assert isinstance(stmts[2], ast.Continue)
        assert isinstance(stmts[3], ast.Return) and stmts[3].value is None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse_stmts("x = 1 y = 2;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_cmp_over_and(self):
        expr = parse_expr("a < b && c >= d")
        assert expr.op == "&&"
        assert expr.left.op == "<" and expr.right.op == ">="

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-" and expr.left.op == "-"
        assert expr.left.left.ident == "a"

    def test_parentheses_override(self):
        expr = parse_expr("a * (b + c)")
        assert expr.op == "*" and expr.right.op == "+"

    def test_unary_chain(self):
        expr = parse_expr("- -x")
        assert isinstance(expr, ast.Unary) and isinstance(expr.operand, ast.Unary)

    def test_ternary(self):
        expr = parse_expr("a < b ? c : d")
        assert isinstance(expr, ast.Ternary)

    def test_postfix_chain(self):
        expr = parse_expr("a.b[i].c(x, y)")
        assert isinstance(expr, ast.MethodCall) and expr.method == "c"
        assert isinstance(expr.obj, ast.Index)
        assert isinstance(expr.obj.obj, ast.FieldAccess)

    def test_free_call(self):
        expr = parse_expr("work(a, 2)")
        assert isinstance(expr, ast.Call) and expr.func == "work"
        assert len(expr.args) == 2

    def test_new_object_and_array(self):
        assert isinstance(parse_expr("new Foo()"), ast.New)
        arr = parse_expr("new double[10]")
        assert isinstance(arr, ast.NewArray)

    def test_literals(self):
        assert isinstance(parse_expr("true"), ast.BoolLit)
        assert isinstance(parse_expr("null"), ast.NullLit)
        assert isinstance(parse_expr("1.5"), ast.FloatLit)

    def test_error_position_reported(self):
        with pytest.raises(ParseError, match=r"2:"):
            parse("class A {\n int = 3; }")


class TestProgramHelpers:
    def test_find_class_and_method(self):
        program = parse("class A { void f() { } } class B { int g() { return 1; } }")
        assert program.find_class("B").name == "B"
        assert program.find_method("g").owner == "B"
        assert program.find_class("missing") is None
        assert program.find_method("missing") is None

    def test_find_pipelined_loops_in_order(self):
        program = parse(
            """
            class A {
                void f(Rectdomain<1, E> d) {
                    PipelinedLoop (p in d) { int x = 1; }
                    PipelinedLoop (q in d) { int y = 2; }
                }
            }
            class E { double v; }
            """
        )
        loops = ast.find_pipelined_loops(program)
        assert [loop.var for _m, loop in loops] == ["p", "q"]
