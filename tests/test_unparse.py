"""Unparse round-trip tests: parse -> unparse -> parse is a fixpoint."""

from hypothesis import given, settings, strategies as st

from repro.lang import parse, unparse
from repro.lang.unparse import unparse_expr, unparse_stmt

EXAMPLES = [
    "class A { }",
    "class A implements Reducinterface { double x; }",
    "native double[] f(int n);",
    "native Rectdomain<1, Cube> read();\nclass Cube { double v; }",
    """
    class Cube { double minval; double maxval; double[] vals; }
    class Z implements Reducinterface {
        double[] depth;
        void accum(double[] f) { return; }
        void merge(Z other) { return; }
    }
    class R {
        void run(Rectdomain<1, Cube> cubes, double iso) {
            runtime_define int num_packets;
            Z result = new Z();
            PipelinedLoop (p in cubes) {
                Z local = new Z();
                foreach (c in p) {
                    if (c.minval <= iso && c.maxval >= iso) {
                        local.accum(c.vals);
                    }
                }
                result.merge(local);
            }
        }
    }
    """,
    """
    class M {
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { total += i; } else { total -= 1; }
            }
            while (total > 100) { total = total / 2; }
            return total > 0 ? total : -total;
        }
    }
    """,
]


def test_roundtrip_examples():
    for source in EXAMPLES:
        first = unparse(parse(source))
        second = unparse(parse(first))
        assert first == second, f"not a fixpoint for:\n{source}"


def test_expr_parenthesization_preserved():
    source = "class A { void f() { x = (a + b) * c - d / (e - f); } }"
    assert unparse(parse(source)) == unparse(parse(unparse(parse(source))))


def test_unparse_stmt_single():
    program = parse("class A { void f() { if (x > 0) { y = 1; } } }")
    text = unparse_stmt(program.classes[0].methods[0].body.body[0])
    assert text.startswith("if (x > 0)")


# -- property: random expression trees survive the round trip --------------

_names = st.sampled_from(["a", "b", "c", "xs", "k"])


def _expr_text(depth: int):
    if depth == 0:
        return st.one_of(
            _names,
            st.integers(0, 99).map(str),
            st.sampled_from(["1.5", "true", "false"]),
        )
    sub = _expr_text(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "/", "<", "==", "&&"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(_names, sub).map(lambda t: f"{t[0]}[{t[1]}]"),
        sub.map(lambda s: f"-({s})"),
    )


@given(_expr_text(3))
@settings(max_examples=150)
def test_roundtrip_random_expressions(expr_text):
    source = "class A { void f() { x = %s; } }" % expr_text
    first = unparse(parse(source))
    assert unparse(parse(first)) == first


def test_unparse_expr_precedence_minimal_parens():
    program = parse("class A { void f() { x = a + b * c; } }")
    stmt = program.classes[0].methods[0].body.body[0]
    assert unparse_expr(stmt.value) == "a + b * c"
