"""The windowed time-series primitives behind serving ``stats``.

Everything here runs on an injected clock: tests step time by hand, so
window expiry, ring wraparound, and rate math are deterministic.  The
percentile-accuracy test is the contract that lets the server answer
latency quantiles from ~56 fixed buckets instead of rescanning a span
list: log interpolation inside the winning bucket keeps the relative
error under the bucket width (about 33% worst case, far less in
practice) while snapshot cost stays independent of request count.
"""

import math
import threading

import pytest

from repro.serve.timeseries import (
    BUCKET_BOUNDS,
    HIST_HI,
    HIST_LO,
    LatencyHistogram,
    MetricsRegistry,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
    bucket_index,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# histogram
# ---------------------------------------------------------------------------


class TestBucketGeometry:
    def test_bounds_are_log_spaced_and_increasing(self):
        assert all(b < a for b, a in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))
        assert BUCKET_BOUNDS[0] > HIST_LO
        assert math.isclose(BUCKET_BOUNDS[-1], HIST_HI)

    def test_bucket_index_respects_bounds(self):
        # every value lands in the bucket whose exclusive upper bound
        # is the first one above it
        for value in (1e-6, 1e-5, 2e-4, 0.0013, 0.05, 1.0, 7.7, 99.0):
            i = bucket_index(value)
            if i < len(BUCKET_BOUNDS):
                assert value <= BUCKET_BOUNDS[i] * (1 + 1e-12)
            if 0 < i <= len(BUCKET_BOUNDS):
                assert value >= BUCKET_BOUNDS[i - 1] * (1 - 1e-12)

    def test_clamping(self):
        assert bucket_index(-3.0) == 0
        assert bucket_index(0.0) == 0
        assert bucket_index(1e9) == len(BUCKET_BOUNDS)  # overflow bucket


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0 and h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_percentile_accuracy_on_uniform_samples(self):
        import numpy as np

        rng = np.random.default_rng(3)
        values = rng.uniform(1e-4, 1.0, size=5000)
        h = LatencyHistogram()
        for v in values:
            h.observe(float(v))
        for q in (50, 90, 95, 99):
            exact = float(np.percentile(values, q))
            approx = h.percentile(q)
            # log interpolation keeps us well inside one bucket width
            assert abs(approx - exact) / exact < 0.35, (q, approx, exact)

    def test_merge_is_additive(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (0.001, 0.01, 0.1):
            a.observe(v)
        for v in (0.002, 0.02):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert math.isclose(a.sum, 0.133)

    def test_overflow_reports_ceiling(self):
        h = LatencyHistogram()
        h.observe(500.0)
        assert h.percentile(99) == HIST_HI

    def test_bad_quantile_rejected(self):
        h = LatencyHistogram()
        h.observe(0.1)
        with pytest.raises(ValueError):
            h.percentile(101)


# ---------------------------------------------------------------------------
# windowed primitives on a hand-stepped clock
# ---------------------------------------------------------------------------


class TestWindowedCounter:
    def test_rates_roll_off(self):
        clock = FakeClock()
        c = WindowedCounter()
        for _ in range(10):
            c.add(1.0, clock())
        assert c.total == 10.0
        assert c.window_sum(1.0, clock()) == 10.0
        clock.tick(5.0)
        c.add(2.0, clock())
        # the burst of 10 fell out of the 1 s window but not the 10 s one
        assert c.window_sum(1.0, clock()) == 2.0
        assert c.window_sum(10.0, clock()) == 12.0
        assert c.rate(10.0, clock()) == pytest.approx(1.2)
        clock.tick(120.0)  # everything expires past the horizon
        assert c.window_sum(60.0, clock()) == 0.0
        assert c.total == 12.0  # the monotonic total never decays

    def test_ring_wraparound_reuses_slots(self):
        clock = FakeClock()
        c = WindowedCounter()
        for _ in range(200):  # > horizon laps of one event per second
            c.add(1.0, clock())
            clock.tick(1.0)
        assert c.total == 200.0
        # only the last 60 whole seconds are live
        assert c.window_sum(60.0, clock()) <= 61.0


class TestWindowedGauge:
    def test_last_peak_window_max(self):
        clock = FakeClock()
        g = WindowedGauge()
        g.set(10.0, clock())
        clock.tick(2.0)
        g.set(3.0, clock())
        assert g.last == 3.0 and g.peak == 10.0
        assert g.window_max(1.0, clock()) == 3.0
        assert g.window_max(10.0, clock()) == 10.0
        clock.tick(90.0)
        assert g.window_max(60.0, clock()) == 0.0  # expired
        assert g.peak == 10.0


class TestWindowedHistogram:
    def test_window_merges_only_live_seconds(self):
        clock = FakeClock()
        h = WindowedHistogram()
        h.observe(0.001, clock())
        clock.tick(30.0)
        h.observe(1.0, clock())
        assert h.cumulative.count == 2
        recent = h.window(10.0, clock())
        assert recent.count == 1
        assert recent.percentile(50) == pytest.approx(1.0, rel=0.35)
        assert h.window(60.0, clock()).count == 2


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_labelled_families_are_distinct(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.inc("requests", labels={"kind": "knn"})
        reg.inc("requests", 2.0, labels={"kind": "vmscope"})
        assert reg.counter_total("requests", labels={"kind": "knn"}) == 1.0
        assert reg.counter_total("requests", labels={"kind": "vmscope"}) == 2.0
        assert reg.counter_total("requests", labels={"kind": "absent"}) == 0.0

    def test_percentiles_windowed_vs_cumulative(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.observe("request", 0.001, labels={"kind": "knn"})
        clock.tick(30.0)
        reg.observe("request", 1.0, labels={"kind": "knn"})
        slow = reg.percentiles("request", {"kind": "knn"}, window=10.0)
        both = reg.percentiles("request", {"kind": "knn"}, window=None)
        assert slow["p50"] > 0.5  # only the recent slow one is in window
        assert both["p50"] < 0.5  # cumulative median sits on the fast one
        # unknown families answer zeros, not KeyError
        assert reg.percentiles("request", {"kind": "nope"})["p99"] == 0.0

    def test_merged_percentiles_across_labels(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        for _ in range(99):
            reg.observe("request", 0.001, labels={"kind": "knn"})
        reg.observe("request", 10.0, labels={"kind": "vmscope"})
        merged = reg.merged_percentiles("request", qs=(50, 99.9))
        assert merged["p50"] < 0.01 and merged["p99.9"] > 1.0

    def test_snapshot_shape(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.inc("served")
        reg.set_gauge("queue_depth", 7.0)
        reg.observe("stage", 0.01, labels={"kind": "knn", "stage": "execute"})
        snap = reg.snapshot()
        assert snap["counters"]["served"]["total"] == 1.0
        assert snap["counters"]["served"]["rates"]["1s"] == 1.0
        assert snap["gauges"]["queue_depth"]["peak"] == 7.0
        key = 'stage{kind="knn",stage="execute"}'
        assert snap["histograms"][key]["count"] == 1
        assert set(snap["histograms"][key]["10s"]) == {"count", "p50", "p95", "p99"}

    def test_prometheus_exposition(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.inc("served", 3)
        reg.set_gauge("queue_depth", 2.0)
        reg.observe("stage", 0.01, labels={"kind": "knn", "stage": "execute"})
        reg.observe("stage", 0.02, labels={"kind": "knn", "stage": "execute"})
        text = reg.render_prometheus()
        assert "# TYPE repro_serve_served_total counter" in text
        assert "repro_serve_served_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert "# TYPE repro_serve_stage_seconds histogram" in text
        assert (
            'repro_serve_stage_seconds_bucket{kind="knn",stage="execute",le="+Inf"} 2'
            in text
        )
        assert 'repro_serve_stage_seconds_count{kind="knn",stage="execute"} 2' in text
        # cumulative-bucket invariant: counts never decrease along le
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_stage_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_horizon_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            MetricsRegistry(horizon=1)

    def test_thread_safety_smoke(self):
        reg = MetricsRegistry()
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for i in range(500):
                    reg.inc("served")
                    reg.observe("request", 0.001 * (i % 7 + 1), labels={"kind": "knn"})
                    reg.set_gauge("queue_depth", float(i % 11))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(50):
                    reg.snapshot()
                    reg.render_prometheus()
                    reg.merged_percentiles("request")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert reg.counter_total("served") == 2000.0
