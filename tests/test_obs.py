"""Observability conformance: engine-native tracing on both engines.

The acceptance bar for the obs subsystem: the *same* compiled application
runs under the threaded and the process engine with tracing enabled, and
both traces carry every filter copy's ``init``/``process`` (or
``generate``)/``finalize`` spans, queue gauges for every stream, and a
Chrome ``trace_event`` export that validates against the schema.  Plus
unit coverage of the trace query math, blocked-time gauges, the
:class:`EngineOptions` consolidation, and its deprecation shim.
"""

import json
import warnings
from collections import Counter

import pytest

from repro.apps import make_knn_app, make_zbuffer_app
from repro.cost import cluster_config
from repro.datacutter import (
    EngineOptions,
    Filter,
    FilterSpec,
    SourceFilter,
    Trace,
    make_engine,
    run_pipeline,
)
from repro.datacutter.obs import (
    BLOCKED_MIN_SECONDS,
    OVERHEAD_PACKET,
    BlockedSpan,
    QueueSample,
    Span,
    TraceCollector,
    jsonl_lines,
    read_jsonl,
    to_chrome,
    validate_chrome_trace,
    write_jsonl,
)
from repro.experiments.harness import (
    _specs_for_version,
    measure_pipeline,
    validate_cost_model,
)

ENGINE_NAMES = ("threaded", "process")
PROC_TIMEOUT = 120.0

APPS = {
    "zbuffer": lambda: _bundle(
        make_zbuffer_app(width=48, height=48), dataset="tiny", num_packets=4
    ),
    "knn": lambda: _bundle(make_knn_app(k=5), n_points=4000, num_packets=5),
}


def _bundle(app, **workload_kwargs):
    return app, app.make_workload(**workload_kwargs)


class _Range(SourceFilter):
    def generate(self, ctx):
        for k in range(ctx.params.get("n", 8)):
            yield float(k)


class _Double(Filter):
    def process(self, buf, ctx):
        ctx.write(buf.payload * 2, buf.packet)


class _SlowSink(Filter):
    def process(self, buf, ctx):
        import time

        time.sleep(ctx.params.get("dwell", 0.0))


def _traced_run(app, workload, engine):
    specs, result = _specs_for_version(app, workload, "Decomp-Comp", cluster_config(1))
    trace = Trace()
    run = run_pipeline(
        specs,
        EngineOptions(
            engine=engine,
            timeout=PROC_TIMEOUT if engine == "process" else None,
            trace=trace,
        ),
    )
    return specs, result, run, trace


# ---------------------------------------------------------------------------
# Acceptance: cross-engine trace conformance on real applications
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app_name", sorted(APPS))
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_trace_conformance(app_name, engine):
    """Every filter copy produces init/work/finalize spans, every stream
    has queue gauges, and the Chrome export validates."""
    app, workload = APPS[app_name]()
    specs, _result, run, trace = _traced_run(app, workload, engine)

    assert workload.check(run.payloads[-1], workload.oracle())
    assert trace.engine == engine

    for spec in specs:
        for copy_index in range(spec.width):
            who = f"{spec.name}#{copy_index}"
            assert who in trace.copies(), who
            phases = trace.phases_of(who)
            assert "init" in phases and "finalize" in phases, (who, phases)
            assert phases & {"generate", "process"}, (who, phases)

    # queue gauges exist for every inter-filter stream and the collector
    expected_streams = {
        f"{a.name}->{b.name}" for a, b in zip(specs, specs[1:])
    } | {f"{specs[-1].name}->out"}
    assert set(trace.streams()) == expected_streams
    for stream in expected_streams:
        assert any(q.stream == stream for q in trace.queue_samples), stream

    doc = to_chrome(trace)
    assert validate_chrome_trace(doc) == []
    # the export is real JSON, not just a dict that looks like one
    assert validate_chrome_trace(json.loads(json.dumps(doc))) == []


@pytest.mark.parametrize("app_name", sorted(APPS))
def test_cross_engine_trace_equivalence(app_name):
    """Both engines record the same logical work: identical per-filter
    (phase, packet) span multisets; timings differ, structure must not."""
    app, workload = APPS[app_name]()
    shapes = {}
    for engine in ENGINE_NAMES:
        _specs, _result, _run, trace = _traced_run(app, workload, engine)
        shapes[engine] = {
            filt: Counter(
                (s.phase, s.packet)
                for s in trace.spans
                if s.filter == filt
            )
            for filt in {s.filter for s in trace.spans}
        }
    assert shapes["threaded"] == shapes["process"]


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_cost_model_validation_joins(engine):
    """validate_cost_model joins trace spans against the §4.3 models on
    both engines: compute rows with atoms carry a positive slowdown ratio,
    link rows land near the VolumeModel's bytes-per-packet."""
    app, workload = APPS["knn"]()
    from repro.experiments.harness import measure_specs

    env = cluster_config(1)
    specs, result = _specs_for_version(app, workload, "Decomp-Comp", env)
    measured = measure_specs(
        specs,
        result,
        workload,
        env,
        "Decomp-Comp",
        warmup=False,
        options=EngineOptions(
            engine=engine, timeout=PROC_TIMEOUT if engine == "process" else None
        ),
    )
    report = validate_cost_model(result, measured)
    assert report.engine == engine
    compute = [r for r in report.compute_rows() if r.predicted > 0]
    assert compute, "expected at least one modeled compute row"
    # CPython is slower than the modeled 700 MHz testbed, never faster
    assert all(r.ratio > 1.0 for r in compute)
    links = report.link_rows()
    assert len(links) == env.m - 1
    for row in links:
        assert row.predicted > 0 and row.measured > 0
        assert 0.2 < row.ratio < 5.0, row
    table = report.table()
    assert "| kind |" in table and "B/pkt" in table
    assert report.summary().startswith("cost model vs")


# ---------------------------------------------------------------------------
# Trace query math on synthetic data
# ---------------------------------------------------------------------------


def test_trace_queries_synthetic():
    tr = Trace()
    tr.note(engine="threaded")
    tr.record_span(Span("f", 0, "init", None, 0.0, 1.0))
    tr.record_span(Span("f", 0, "process", 0, 1.0, 2.0))
    tr.record_span(Span("f", 0, "process", 1, 2.0, 4.0))
    tr.record_span(Span("f", 0, "finalize", None, 4.0, 4.5))
    tr.record_queue(QueueSample("s", 1.0, 2, "put"))
    tr.record_queue(QueueSample("s", 2.0, 5, "get"))
    tr.record_blocked(BlockedSpan("s", "put", "f#0", 0.0, 0.25))

    assert isinstance(tr, TraceCollector)
    assert tr.copies() == ["f#0"]
    assert tr.phases_of("f#0") == {"init", "process", "finalize"}
    per = tr.seconds_by_packet("f")
    assert per[0] == pytest.approx(1.0)
    assert per[1] == pytest.approx(2.0)
    # init + finalize fold into the shared overhead bucket
    assert per[OVERHEAD_PACKET] == pytest.approx(1.5)
    assert tr.busy_seconds("f") == pytest.approx(4.5)
    util = tr.utilization()
    assert util["f#0"].ratio == pytest.approx(1.0)
    assert tr.max_depth("s") == 5
    assert tr.blocked_seconds("s", "put") == pytest.approx(0.25)
    assert tr.blocked_seconds("s", "get") == 0.0
    assert tr.t_origin() == 0.0


def test_blocked_put_recorded_under_backpressure():
    """A capacity-1 queue and a slow consumer force the producer to block
    in put long enough to cross BLOCKED_MIN_SECONDS."""
    dwell = max(BLOCKED_MIN_SECONDS * 20, 0.02)
    specs = [
        FilterSpec("src", _Range, params={"n": 6}),
        FilterSpec("sink", _SlowSink, placement=1, params={"dwell": dwell}),
    ]
    trace = Trace()
    run_pipeline(specs, EngineOptions(queue_capacity=1, trace=trace))
    assert trace.blocked_seconds("src->sink", "put") > 0.0


def test_jsonl_round_trip(tmp_path):
    app, workload = APPS["knn"]()
    _specs, _result, _run, trace = _traced_run(app, workload, "threaded")
    path = tmp_path / "trace.jsonl"
    write_jsonl(trace, str(path))
    again = read_jsonl(str(path))
    assert again.engine == trace.engine
    assert len(again.spans) == len(trace.spans)
    assert len(again.queue_samples) == len(trace.queue_samples)
    assert Counter((s.filter, s.copy, s.phase, s.packet) for s in again.spans) == (
        Counter((s.filter, s.copy, s.phase, s.packet) for s in trace.spans)
    )
    # every line is standalone JSON
    lines = list(jsonl_lines(trace))
    assert all(isinstance(json.loads(line), dict) for line in lines)


def test_validate_chrome_trace_catches_garbage():
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    bad_event = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1}]}
    assert validate_chrome_trace(bad_event) != []
    assert validate_chrome_trace({"traceEvents": []}) == []


# ---------------------------------------------------------------------------
# EngineOptions: the consolidated run API and its deprecation shim
# ---------------------------------------------------------------------------


def test_engine_options_validation():
    with pytest.raises(ValueError, match="queue_capacity"):
        EngineOptions(queue_capacity=0)
    with pytest.raises(ValueError, match="engine"):
        EngineOptions(engine="")
    # the same floor applies when constructing engines directly
    from repro.datacutter import ProcessPipeline, ThreadedPipeline

    with pytest.raises(ValueError, match="queue_capacity"):
        ThreadedPipeline([FilterSpec("src", _Range)], queue_capacity=0)
    with pytest.raises(ValueError, match="queue_capacity"):
        ProcessPipeline([FilterSpec("src", _Range)], queue_capacity=0)


def test_unknown_engine_error_has_no_chained_context():
    """Satellite bugfix: the registry KeyError is suppressed via
    ``raise ... from None``."""
    with pytest.raises(ValueError) as exc_info:
        make_engine([FilterSpec("src", _Range)], EngineOptions(engine="bogus"))
    assert exc_info.value.__suppress_context__
    assert exc_info.value.__cause__ is None
    assert "known engines" in str(exc_info.value)


def test_legacy_kwargs_warn_and_work():
    specs = [FilterSpec("src", _Range, params={"n": 3})]
    with pytest.warns(DeprecationWarning, match="deprecated"):
        run = run_pipeline(specs, engine="threaded", queue_capacity=4)
    assert len(run.outputs) == 3


def test_legacy_positional_engine_string_warns():
    with pytest.warns(DeprecationWarning):
        eng = make_engine([FilterSpec("src", _Range)], "process")
    assert eng.engine_name == "process"


def test_legacy_positional_capacity_int_warns():
    specs = [FilterSpec("src", _Range, params={"n": 3})]
    with pytest.warns(DeprecationWarning):
        run = run_pipeline(specs, 4)
    assert len(run.outputs) == 3


def test_options_plus_legacy_kwargs_rejected():
    specs = [FilterSpec("src", _Range)]
    with pytest.raises(TypeError, match="not both"):
        run_pipeline(specs, options=EngineOptions(), engine="process")
    with pytest.raises(TypeError, match="unknown engine option"):
        run_pipeline(specs, bogus_knob=1)


def test_execute_legacy_engine_kwarg_warns():
    app, workload = APPS["knn"]()
    _specs, result = _specs_for_version(
        app, workload, "Decomp-Comp", cluster_config(1)
    )
    with pytest.warns(DeprecationWarning):
        run = result.execute(workload.packets, workload.params, engine="threaded")
    assert workload.check(run.payloads[-1], workload.oracle())


def test_execute_default_engine_no_warning():
    app, workload = APPS["knn"]()
    _specs, result = _specs_for_version(
        app, workload, "Decomp-Comp", cluster_config(1)
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run = result.execute(workload.packets, workload.params)
    assert workload.check(run.payloads[-1], workload.oracle())


def test_measure_pipeline_injects_trace():
    specs = [
        FilterSpec("src", _Range, params={"n": 4}),
        FilterSpec("dbl", _Double, placement=1),
    ]
    run, trace = measure_pipeline(specs)
    assert sorted(b.payload for b in run.outputs) == [0.0, 2.0, 4.0, 6.0]
    assert isinstance(trace, Trace)
    assert set(trace.copies()) == {"src#0", "dbl#0"}
    # a caller-supplied collector is used as-is
    mine = Trace()
    _run2, got = measure_pipeline(specs, EngineOptions(trace=mine))
    assert got is mine
