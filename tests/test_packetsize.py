"""Automatic packet-count selection tests (§8 future work) plus
heterogeneous-environment decomposition behaviour."""

import pytest

from repro import CompileOptions
from repro.apps import make_knn_app, make_zbuffer_app
from repro.core.compiler import analyze_source, compute_problem, decompose
from repro.core.packetsize import choose_packet_count
from repro.cost import cluster_config, make_pipeline


@pytest.fixture(scope="module")
def knn_analysis():
    app = make_knn_app(k=3)
    workload = app.make_workload(n_points=40_000, num_packets=8)
    checked, chain, comm = analyze_source(app.source, app.registry)
    return app, workload, chain, comm


class TestPacketCountSelection:
    def options(self, app, workload, env=None):
        return CompileOptions(
            env=env or cluster_config(2),
            profile=workload.profile,
            size_hints=dict(app.size_hints),
            method_costs=dict(app.method_costs),
        )

    def test_sweep_prefers_pipelining(self, knn_analysis):
        app, workload, chain, comm = knn_analysis
        result = choose_packet_count(chain, comm, self.options(app, workload))
        assert result.best > 1, "one packet cannot pipeline"
        assert result.estimates[result.best] < result.estimates[1]

    def test_total_elements_held_fixed(self, knn_analysis):
        app, workload, chain, comm = knn_analysis
        result = choose_packet_count(
            chain, comm, self.options(app, workload), candidates=[2, 8]
        )
        assert set(result.estimates) == {2, 8}

    def test_infeasible_candidates_skipped(self, knn_analysis):
        app, workload, chain, comm = knn_analysis
        opts = self.options(app, workload)
        result = choose_packet_count(
            chain, comm, opts, candidates=[0, 4, 10**9]
        )
        assert list(result.estimates) == [4]

    def test_no_candidates_rejected(self, knn_analysis):
        app, workload, chain, comm = knn_analysis
        with pytest.raises(ValueError, match="no feasible"):
            choose_packet_count(
                chain, comm, self.options(app, workload), candidates=[0]
            )

    def test_plans_recorded(self, knn_analysis):
        app, workload, chain, comm = knn_analysis
        result = choose_packet_count(
            chain, comm, self.options(app, workload), candidates=[4, 16]
        )
        assert set(result.plans) == {4, 16}
        assert all("|" in plan for plan in result.plans.values())


class TestHeterogeneousEnvironments:
    """§4.3 allows per-unit powers; the DP must respond to them (the paper
    used homogeneous Pentiums, so this extends the evaluation)."""

    def _plan_for(self, powers, bandwidths):
        app = make_zbuffer_app()
        workload = app.make_workload(dataset="tiny", num_packets=4)
        checked, chain, comm = analyze_source(app.source, app.registry)
        options = CompileOptions(
            env=make_pipeline(powers, bandwidths),
            profile=workload.profile,
            size_hints=dict(app.size_hints),
            method_costs=dict(app.method_costs),
        )
        _t, _v, problem = compute_problem(chain, comm, options)
        plan, _cost = decompose(problem, options)
        return plan, problem

    def test_weak_data_node_pushes_work_downstream(self):
        weak, _ = self._plan_for([1e6, 500e6, 500e6], [125e6, 125e6])
        strong, _ = self._plan_for([500e6, 1e6, 1e6], [125e6, 125e6])
        weak_on_1 = len(weak.filters_on_unit(1))
        strong_on_1 = len(strong.filters_on_unit(1))
        assert weak_on_1 < strong_on_1

    def test_slow_links_cut_at_minimum_volume(self):
        """With near-dead links the result must still reach the view node,
        so the DP minimizes total bytes moved: it cuts at the chain's
        minimum-volume boundary instead of dragging the (large) final
        z-buffer across both links."""
        from repro.decompose import DecompositionPlan

        plan, problem = self._plan_for([250e6, 250e6, 250e6], [1e3, 1e3])
        n1 = problem.n_filters
        all_on_1 = DecompositionPlan(tuple([1] * n1), 3)
        assert problem.evaluate(plan) < problem.evaluate(all_on_1)
        # the chosen crossing is the global minimum-volume boundary
        crossing = plan.last_filter_before_link(1)
        assert problem.vols[crossing] == min(problem.vols[1:n1])
