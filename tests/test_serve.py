"""Serving subsystem conformance: plan cache, broker, warm sessions, server.

The acceptance bar: a burst of 100+ mixed knn + vmscope requests through
a running :class:`PipelineServer` produces responses *byte-identical* to
fresh one-shot ``compile_source(...)`` + execute runs, on both engines —
while exercising the plan cache (keying, hits, eviction), micro-batch
coalescing, every admission policy (block / reject / shed-oldest),
per-request deadlines, graceful drain, the ``stats`` request type, and
the JSON-lines metrics export.  Plus the EngineOptions validation added
alongside (nonsense timeouts must fail loudly at construction).
"""

import threading
import time

import numpy as np
import pytest

from repro.apps import make_knn_service, make_vmscope_service
from repro.core.compiler import compile_source
from repro.cost import cluster_config
from repro.datacutter import EngineOptions, run_pipeline
from repro.datacutter.engine import EngineSession
from repro.datacutter.obs import read_jsonl
from repro.serve import (
    AdmissionQueue,
    LocalClient,
    PipelineServer,
    PlanCache,
    Request,
    PendingResponse,
    ServerClosed,
    ServerOptions,
    oneshot,
)

# small workloads: serving semantics, not throughput, are under test here
KNN_KW = dict(n_points=2_000, num_packets=3)
VM_KW = dict(image_w=96, image_h=96, tile=32, num_packets=3)


@pytest.fixture(scope="module")
def knn_service():
    return make_knn_service(**KNN_KW)


@pytest.fixture(scope="module")
def vm_service():
    return make_vmscope_service(**VM_KW)


# ---------------------------------------------------------------------------
# EngineOptions / ServerOptions validation (satellite: no silent nonsense)
# ---------------------------------------------------------------------------


class TestOptionsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"join_timeout": 0.0},
            {"join_timeout": -1.0},
            {"timeout": 0.0},
            {"timeout": -5.0},
            {"death_grace": -0.1},
            {"shm_min_bytes": -1},
        ],
    )
    def test_engine_options_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            EngineOptions(**kwargs)

    def test_engine_options_accepts_sane_values(self):
        opts = EngineOptions(join_timeout=2.0, timeout=30.0, death_grace=0.0)
        assert opts.timeout == 30.0
        assert EngineOptions(timeout=None).timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"admission": "lifo"},
            {"max_batch": 0},
            {"batch_deadline": -0.1},
            {"default_deadline": 0.0},
            {"drain_timeout": -1.0},
            {"plan_cache_capacity": 0},
        ],
    )
    def test_server_options_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            ServerOptions(**kwargs)


# ---------------------------------------------------------------------------
# Plan cache keying (satellite: backend and environment must key distinctly)
# ---------------------------------------------------------------------------


class TestPlanCacheKeying:
    def test_backend_keys_distinctly(self, knn_service, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        cache = PlanCache()
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        k_scalar = cache.key_for(src, reg, opts.replace(backend="scalar"))
        k_vector = cache.key_for(src, reg, opts.replace(backend="vector"))
        k_auto = cache.key_for(src, reg, opts.replace(backend="auto"))
        assert k_scalar != k_vector
        # "auto" keys as its *resolution*, not the literal string
        assert k_auto == k_scalar
        monkeypatch.setenv("REPRO_BACKEND", "vector")
        assert cache.key_for(src, reg, opts.replace(backend="auto")) == k_vector

    def test_environment_keys_distinctly(self, knn_service):
        cache = PlanCache()
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        k1 = cache.key_for(src, reg, opts)
        k2 = cache.key_for(src, reg, opts.replace(env=cluster_config(2)))
        assert k1 != k2

    def test_execution_fields_do_not_key(self, knn_service):
        cache = PlanCache()
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        assert cache.key_for(src, reg, opts) == cache.key_for(
            src, reg, opts.replace(engine="process")
        )

    def test_source_keys_distinctly(self, knn_service):
        cache = PlanCache()
        reg, opts = knn_service.app.registry, knn_service.options
        src = knn_service.app.source
        assert cache.key_for(src, reg, opts) != cache.key_for(
            src + "\n", reg, opts
        )

    def test_hit_is_byte_identical_to_fresh_compile(self, knn_service):
        cache = PlanCache()
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        cached, hit0 = cache.compile(src, reg, opts)
        again, hit1 = cache.compile(src, reg, opts)
        assert (hit0, hit1) == (False, True)
        assert again is cached  # a hit returns the stored artifact
        fresh = compile_source(src, reg, opts)
        # same generated program text, filter for filter
        assert [f.source for f in cached.pipeline.filters] == [
            f.source for f in fresh.pipeline.filters
        ]
        # and same execution result, byte for byte
        wl = knn_service.workload
        out_cached = run_pipeline(
            cached.pipeline.specs(wl.packets, wl.params)
        ).payloads[-1]["result"].rows()
        out_fresh = run_pipeline(
            fresh.pipeline.specs(wl.packets, wl.params)
        ).payloads[-1]["result"].rows()
        assert out_cached.tobytes() == out_fresh.tobytes()

    def test_compile_source_cache_hook(self, knn_service):
        cache = PlanCache()
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        first = compile_source(src, reg, opts, cache=cache)
        second = compile_source(src, reg, opts, cache=cache)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self, knn_service):
        cache = PlanCache(capacity=1)
        src, reg, opts = (
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        cache.compile(src, reg, opts)
        cache.compile(src, reg, opts.replace(env=cluster_config(2)))
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # the first entry was evicted: compiling it again misses
        _, hit = cache.compile(src, reg, opts)
        assert not hit


# ---------------------------------------------------------------------------
# Warm engine sessions
# ---------------------------------------------------------------------------


class TestEngineSession:
    def test_engine_reused_across_different_spec_lists(self, knn_service):
        cache = PlanCache()
        result, _ = cache.compile(
            knn_service.app.source,
            knn_service.app.registry,
            knn_service.options,
        )
        wl = knn_service.workload
        with EngineSession(EngineOptions()) as session:
            outs = []
            for q in (0.2, 0.8):
                params = dict(wl.params)
                params["qx"] = params["qy"] = params["qz"] = q
                run = session.run(result.pipeline.specs(wl.packets, params))
                outs.append(run.payloads[-1]["result"].rows())
            assert session.runs == 2
            engine = session._engine
            assert engine is not None
            # second unit of work rebound the same engine object
            run = session.run(result.pipeline.specs(wl.packets, dict(wl.params)))
            assert session._engine is engine
            assert run.payloads[-1]["result"].rows().shape == outs[0].shape
        assert session._engine is None  # close() dropped it
        # different query points really produced different answers
        assert outs[0].tobytes() != outs[1].tobytes()


# ---------------------------------------------------------------------------
# Admission queue policies
# ---------------------------------------------------------------------------


def _pending(i: int = 0) -> PendingResponse:
    return PendingResponse(Request(kind="t", body={"i": i}))


class TestAdmissionQueue:
    def test_reject_when_full(self):
        q = AdmissionQueue(capacity=2, policy="reject")
        assert q.offer(_pending())[0]
        assert q.offer(_pending())[0]
        admitted, shed, retry_after = q.offer(_pending())
        assert not admitted and not shed
        assert retry_after is not None and retry_after > 0

    def test_retry_after_tracks_service_rate(self):
        q = AdmissionQueue(capacity=1, policy="reject")
        q.offer(_pending())
        slow_hint_before = q.retry_after_hint()
        for _ in range(50):
            q.observe_service_time(2.0)
        assert q.retry_after_hint() > slow_hint_before

    def test_shed_oldest_evicts_head(self):
        q = AdmissionQueue(capacity=2, policy="shed-oldest")
        first, second, third = _pending(1), _pending(2), _pending(3)
        q.offer(first), q.offer(second)
        admitted, shed, _ = q.offer(third)
        assert admitted
        assert shed == [first]
        assert q.take(0.01) is second  # FIFO order preserved for survivors

    def test_block_timeout_turns_into_reject(self):
        q = AdmissionQueue(capacity=1, policy="block", block_timeout=0.05)
        q.offer(_pending())
        t0 = time.monotonic()
        admitted, _, retry_after = q.offer(_pending())
        assert not admitted
        assert time.monotonic() - t0 >= 0.04
        assert retry_after is not None

    def test_block_waits_for_space(self):
        q = AdmissionQueue(capacity=1, policy="block")
        q.offer(_pending())

        def drain_soon():
            time.sleep(0.05)
            q.take()

        t = threading.Thread(target=drain_soon)
        t.start()
        admitted, _, _ = q.offer(_pending())  # blocks until drain_soon pops
        t.join()
        assert admitted
        assert len(q) == 1

    def test_closed_queue_refuses(self):
        q = AdmissionQueue(capacity=2)
        q.offer(_pending())
        q.close()
        assert q.offer(_pending()) == (False, [], None)
        assert q.take(0.01) is not None  # queued item still drainable
        assert q.take(0.01) is None  # then closed-and-empty

    def test_collect_batch_respects_budget(self):
        q = AdmissionQueue(capacity=8)
        for i in range(5):
            q.offer(_pending(i))
        batch = q.collect_batch(max_batch=3, batch_deadline=0.2)
        assert len(batch) == 3
        assert len(q) == 2


# ---------------------------------------------------------------------------
# Server behavior: coalescing, deadlines, shedding, drain, stats
# ---------------------------------------------------------------------------


class _GatedService:
    """Wraps a service so ``plan()`` blocks until released — pins the
    dispatcher mid-batch so admission tests see a deterministically
    busy server instead of racing a sleep against compile time."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name
        self.entered = threading.Event()
        self.release = threading.Event()

    def plan(self, body):
        self.entered.set()
        assert self.release.wait(60), "gated service never released"
        return self._inner.plan(body)


class TestServer:
    def test_coalescing_one_execution_per_group(self, knn_service):
        opts = ServerOptions(max_batch=16, batch_deadline=0.25)
        with PipelineServer([knn_service], opts) as server:
            client = LocalClient(server)
            body = {"x": 0.3, "y": 0.3, "z": 0.3}
            responses = client.burst([("knn", body)] * 6)
            assert all(r.ok for r in responses)
            # all six shared one pipeline execution, one compile
            assert {r.group_size for r in responses} == {6}
            stats = client.stats()
            assert stats["executions"] == 1
            # mean includes the stats request's own batch of one
            assert stats["batch_occupancy_mean"] > 1.0

    def test_expired_deadline_is_not_served(self, knn_service):
        opts = ServerOptions(max_batch=4, batch_deadline=0.05)
        with PipelineServer([knn_service], opts) as server:
            response = server.submit(
                "knn", {"x": 0.1}, deadline=1e-4
            ).result(timeout=30)
            assert response.status == "expired"
            assert not response.ok

    def test_deadline_expiring_before_execution_counted_once(self, knn_service):
        """A request alive at batch assembly but expired by execution time
        (here: an injected dispatch stall) returns status='expired'
        without charging the plan cache or the engine, and the metrics
        count it exactly once."""
        opts = ServerOptions(max_batch=4, batch_deadline=0.01)
        with PipelineServer([knn_service], opts) as server:
            server._before_execute = lambda plan: time.sleep(0.4)
            response = server.submit(
                "knn", {"x": 0.1}, deadline=0.2
            ).result(timeout=30)
            assert response.status == "expired"
            assert "before execution" in response.error
            stats = server.metrics.snapshot()
            assert stats["expired"] == 1
            assert stats["served"] == 0
            assert stats["errors"] == 0
            # the whole group expired: neither the engine nor the plan
            # cache was charged for work nobody could use
            assert stats["executions"] == 0
            assert server.pool.session.runs == 0
            assert server.cache.stats.lookups == 0

    def test_reject_policy_resolves_future(self, knn_service):
        gated = _GatedService(knn_service)
        opts = ServerOptions(
            admission="reject", max_queue=1, max_batch=1, batch_deadline=0.0
        )
        with PipelineServer([gated], opts) as server:
            first = server.submit("knn", {"x": 0.2})
            # the dispatcher holds the first batch inside plan() — the
            # queue state below is deterministic, not sleep-based
            assert gated.entered.wait(30)
            backlog = server.submit("knn", {"x": 0.4})  # fills the queue
            rejected = server.submit("knn", {"x": 0.6})
            response = rejected.result(timeout=1)
            assert response.status == "rejected"
            assert response.retry_after is not None and response.retry_after > 0
            gated.release.set()
            assert first.result(60).ok and backlog.result(60).ok

    def test_shed_oldest_policy_resolves_victim(self, knn_service):
        gated = _GatedService(knn_service)
        opts = ServerOptions(
            admission="shed-oldest", max_queue=1, max_batch=1, batch_deadline=0.0
        )
        with PipelineServer([gated], opts) as server:
            first = server.submit("knn", {"x": 0.2})
            assert gated.entered.wait(30)
            victim = server.submit("knn", {"x": 0.4})
            newcomer = server.submit("knn", {"x": 0.6})
            assert victim.result(timeout=1).status == "shed"
            gated.release.set()
            assert first.result(60).ok and newcomer.result(60).ok
            assert server.metrics.snapshot()["shed"] == 1

    def test_unknown_kind_and_closed_server(self, knn_service):
        server = PipelineServer([knn_service])
        with pytest.raises(ServerClosed):
            server.submit("knn", {})
        server.start()
        try:
            with pytest.raises(ValueError, match="unknown request kind"):
                server.submit("nope", {})
        finally:
            server.stop()
        with pytest.raises(ServerClosed):
            server.submit("knn", {})

    def test_stop_without_drain_resolves_shutdown(self, knn_service):
        opts = ServerOptions(max_batch=1, batch_deadline=0.0)
        server = PipelineServer([knn_service], opts).start()
        server.submit("knn", {"x": 0.2})
        time.sleep(0.05)
        stranded = [server.submit("knn", {"x": x}) for x in (0.3, 0.4, 0.5)]
        server.stop(drain=False)
        statuses = {p.result(timeout=10).status for p in stranded}
        assert statuses <= {"shutdown", "ok"}
        assert "shutdown" in statuses

    def test_graceful_drain_serves_backlog(self, knn_service):
        opts = ServerOptions(max_batch=4, batch_deadline=0.01)
        server = PipelineServer([knn_service], opts).start()
        pending = [server.submit("knn", {"x": 0.2}) for _ in range(5)]
        server.stop(drain=True)
        assert all(p.result(timeout=10).ok for p in pending)

    def test_duplicate_or_reserved_service_name(self, knn_service):
        with pytest.raises(ValueError, match="duplicate or reserved"):
            PipelineServer([knn_service, knn_service])

        class Impostor:
            name = "stats"

            def plan(self, body):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ValueError, match="duplicate or reserved"):
            PipelineServer([Impostor()])

    def test_bad_request_body_isolates_error(self, knn_service, vm_service):
        with PipelineServer([knn_service, vm_service]) as server:
            client = LocalClient(server)
            bad = client.vmscope(query="mystery")
            assert bad.status == "error"
            assert "unknown vmscope query" in (bad.error or "")
            # the server keeps serving after a bad request
            assert client.knn(0.5, 0.5, 0.5).ok


# ---------------------------------------------------------------------------
# Metrics surface
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_stats_request_and_jsonl_roundtrip(
        self, knn_service, vm_service, tmp_path
    ):
        opts = ServerOptions(max_batch=8, batch_deadline=0.05)
        with PipelineServer([knn_service, vm_service], opts) as server:
            client = LocalClient(server)
            client.burst(
                [("knn", {"x": 0.2, "y": 0.2, "z": 0.2})] * 3
                + [("vmscope", {"query": "small"})]
            )
            stats = client.stats()
            path = tmp_path / "serve.jsonl"
            server.metrics.write_jsonl(str(path))

        assert stats["served"] >= 4
        assert stats["executions"] >= 2
        assert set(stats["latency"]) == {"p50", "p95", "p99"}
        assert stats["plan_cache"]["entries"] == 2
        assert stats["engine"] == "threaded"
        assert stats["engine_runs"] == stats["executions"]

        trace = read_jsonl(str(path))
        phases = {s.phase for s in trace.spans}
        assert {"request", "execute"} <= phases
        assert trace.meta["role"] == "serve"
        assert trace.meta["serve.served"] >= 4
        streams = {q.stream for q in trace.queue_samples}
        assert {"serve.queue", "serve.batch"} <= streams

    def test_latency_percentiles_math(self):
        from repro.datacutter.obs import Span, Trace

        trace = Trace()
        for i, dur in enumerate([0.010, 0.020, 0.030, 0.040]):
            trace.record_span(Span("request.t", 0, "request", i, 1.0, 1.0 + dur))
        pcts = trace.duration_percentiles(phase="request")
        assert pcts["p50"] == pytest.approx(0.020)
        assert pcts["p99"] == pytest.approx(0.040)
        assert Trace().duration_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestObservability:
    """Request tracing, bounded retention, and windowed percentiles."""

    def test_stage_spans_linked_to_engine_spans(self, knn_service, vm_service):
        opts = ServerOptions(max_batch=8, batch_deadline=0.02)
        with PipelineServer([knn_service, vm_service], opts) as server:
            client = LocalClient(server)
            responses = client.burst(
                [("knn", {"x": 0.2, "y": 0.2, "z": 0.2})] * 3
                + [("vmscope", {"query": "small"})]
            )
            assert all(r.ok for r in responses)
            trace = server.metrics.export_trace()
        phases = {s.phase for s in trace.spans}
        # the full request lifecycle, stage by stage
        assert {
            "admission",
            "queue",
            "assemble",
            "execute",
            "extract",
            "request",
        } <= phases
        # every response echoed a trace id, and those ids appear on spans
        span_traces = {s.trace for s in trace.spans if s.trace}
        assert {r.trace_id for r in responses} <= span_traces
        # execution ids join serve-level stages to engine-level filter
        # spans recorded through the tap
        by_execution: dict[int, set] = {}
        for s in trace.spans:
            if s.execution is not None:
                by_execution.setdefault(s.execution, set()).add(s.phase)
        assert by_execution
        linked = [p for p in by_execution.values() if "execute" in p]
        assert linked
        engine_phases = {"generate", "process", "init", "finalize"}
        assert any(p & engine_phases for p in linked)

    def test_retention_cap_bounds_trace_not_percentiles(self, knn_service):
        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics(retention=64)
        for i in range(2000):
            # all fast except a slow tail the percentiles must still see,
            # even after those early spans rotate out of the trace
            dur = 0.5 if i < 200 else 0.001
            now = time.perf_counter()
            metrics.record_stage(
                "knn", "execute", now - dur, now, request_id=i, trace_id=f"t{i}"
            )
            metrics.record_request("knn", i, now - dur, "ok", trace_id=f"t{i}")
        # the trace is bounded (cap plus the amortized trim slack)...
        assert len(metrics.trace.spans) <= 64 * 2
        snap = metrics.snapshot()
        assert snap["dropped_spans"] > 0
        assert snap["served"] == 2000  # counters never sampled or dropped
        # ...while percentiles come from the complete histogram
        # population: the 10% slow tail is far above the p50, still
        # visible at p95+
        pcts = metrics.latency_percentiles()
        assert pcts["p50"] < 0.01
        assert pcts["p95"] > 0.1

    def test_snapshot_cost_flat_under_load(self):
        import timeit

        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics(retention=256)

        def feed(n: int) -> None:
            for i in range(n):
                metrics.record_stage("knn", "execute", 0.0, 0.001, request_id=i)
                metrics.record_request("knn", i, 0.0, "ok")

        feed(500)
        t_small = min(timeit.repeat(metrics.snapshot, number=20, repeat=3))
        feed(4500)
        t_large = min(timeit.repeat(metrics.snapshot, number=20, repeat=3))
        # 10x the requests must not mean ~10x the snapshot: the windowed
        # registry answers from fixed buckets.  Generous bound for CI noise.
        assert t_large < t_small * 4 + 0.05, (t_small, t_large)

    def test_windowed_percentiles_and_autoscale_window(
        self, knn_service, vm_service
    ):
        opts = ServerOptions(max_batch=8, batch_deadline=0.02)
        with PipelineServer([knn_service, vm_service], opts) as server:
            client = LocalClient(server)
            client.burst(
                [("knn", {"x": 0.3, "y": 0.3, "z": 0.3})] * 4
                + [("vmscope", {"query": "small"})]
            )
            deep = server.stats(deep=True)
            window = server.metrics.window(seconds=10.0)
            per_stage = server.metrics.stage_percentiles("knn", "execute", 10.0)
        hists = deep["windows"]["histograms"]
        assert any(key.startswith("stage{") for key in hists)
        assert deep["latency"]["p99"] > 0.0
        # the documented autoscale signal
        assert window["throughput_rps"] > 0.0
        assert window["latency"]["p99"] >= window["latency"]["p50"] > 0.0
        assert window["queue_depth_max"] >= 1
        assert per_stage["p99"] > 0.0

    def test_sampling_thins_spans_not_counters(self):
        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics(sample=4)
        for i in range(100):
            metrics.record_stage("knn", "queue", 0.0, 0.001, request_id=i)
        spans = [s for s in metrics.trace.spans if s.phase == "queue"]
        assert len(spans) == 25  # one request in four keeps its spans
        assert (
            metrics.registry.counter_total(
                "stage", labels={"kind": "knn", "stage": "queue"}
            )
            == 0.0
        )  # histograms are not counters...
        pcts = metrics.stage_percentiles("knn", "queue")
        assert pcts["p50"] > 0.0  # ...but every observation landed

    def test_write_jsonl_idempotent(self, knn_service, tmp_path):
        opts = ServerOptions(max_batch=4, batch_deadline=0.01)
        with PipelineServer([knn_service], opts) as server:
            client = LocalClient(server)
            assert client.knn(0.2, 0.2, 0.2).ok
            a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
            server.metrics.write_jsonl(str(a))
            server.metrics.write_jsonl(str(b))
        assert a.read_bytes() == b.read_bytes()
        trace = read_jsonl(str(a))
        assert trace.meta["serve.served"] >= 1

    def test_prometheus_exposition_via_stats(self, knn_service):
        opts = ServerOptions(max_batch=4, batch_deadline=0.01)
        with PipelineServer([knn_service], opts) as server:
            client = LocalClient(server)
            assert client.knn(0.2, 0.2, 0.2).ok
            text = client.prometheus()
        assert "repro_serve_served_total 1" in text
        assert "repro_serve_stage_seconds_bucket" in text
        assert "repro_serve_dropped_spans_total" in text


class TestStatsConcurrency:
    def test_stats_hammer_during_mixed_burst(self, knn_service, vm_service):
        """``stats`` from many threads — shallow, deep, and Prometheus,
        over both transports — while fused and unfused work is in
        flight must never raise or return an inconsistent snapshot."""
        from repro.serve import RemoteClient

        opts = ServerOptions(
            max_batch=16, batch_deadline=0.01, fuse=True, max_fuse_lanes=8
        )
        errors: list[BaseException] = []
        snapshots: list[dict] = []
        stop = threading.Event()

        def hammer(client) -> None:
            while not stop.is_set():
                try:
                    snapshots.append(client.stats(deep=True))
                    client.prometheus()
                    client.stats()
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return

        def burst(client, requests) -> None:
            try:
                responses = client.burst(requests)
                bad = [r for r in responses if not r.ok]
                if bad:
                    errors.append(AssertionError(bad[0].error))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        # distinct knn points fuse into lanes; repeated points coalesce
        # (unfused); vmscope bypasses fusion entirely
        fused = [
            ("knn", {"x": 0.1 + i * 0.05, "y": 0.2, "z": 0.3}) for i in range(8)
        ]
        coalesced = [("knn", {"x": 0.5, "y": 0.5, "z": 0.5})] * 6
        bypass = [("vmscope", {"query": "small"})] * 2
        with PipelineServer([knn_service, vm_service], opts) as server:
            local = LocalClient(server, timeout=300.0)
            with RemoteClient(server.listen(), timeout=300.0) as remote:
                hammers = [
                    threading.Thread(target=hammer, args=(c,))
                    for c in (local, remote, local, remote)
                ]
                bursts = [
                    threading.Thread(target=burst, args=(local, fused + coalesced)),
                    threading.Thread(target=burst, args=(remote, coalesced + bypass)),
                ]
                for t in hammers + bursts:
                    t.start()
                for t in bursts:
                    t.join(timeout=300)
                stop.set()
                for t in hammers:
                    t.join(timeout=60)
        assert not errors, errors[:1]
        assert snapshots
        for snap in snapshots:
            # internally consistent at every instant it was taken
            assert snap["served"] <= snap["admitted"]
            assert "windows" in snap and snap["dropped_spans"] >= 0
        final = server.stats()
        assert final["served"] >= len(fused + coalesced) * 1  # both bursts
        assert final["fusion"]["fused_executions"] >= 1


# ---------------------------------------------------------------------------
# Differential correctness: the acceptance bar
# ---------------------------------------------------------------------------


def _mixed_requests(n: int) -> list:
    """n requests over 6 distinct bodies (4 knn points + 2 vmscope presets)."""
    points = [(0.2, 0.2, 0.2), (0.8, 0.3, 0.5), (0.5, 0.5, 0.5), (0.1, 0.9, 0.4)]
    out = []
    for i in range(n):
        if i % 3 == 2:
            out.append(("vmscope", {"query": ("small", "large")[i % 2]}))
        else:
            x, y, z = points[i % len(points)]
            out.append(("knn", {"x": x, "y": y, "z": z}))
    return out


def _baselines(services, requests, engine_options=None):
    by_kind = {s.name: s for s in services}
    out = {}
    for kind, body in requests:
        key = (kind, tuple(sorted(body.items())))
        if key not in out:
            out[key] = oneshot(by_kind[kind].plan(body), engine_options)
    return out


class TestDifferentialBurst:
    def test_threaded_burst_matches_oneshot(self, knn_service, vm_service):
        services = [knn_service, vm_service]
        requests = _mixed_requests(100)
        baselines = _baselines(services, requests)
        opts = ServerOptions(max_batch=32, batch_deadline=0.02, max_queue=128)
        with PipelineServer(services, opts) as server:
            client = LocalClient(server, timeout=600.0)
            responses = client.burst(requests)
            stats = client.stats()
        assert len(responses) == 100
        assert all(r.ok for r in responses), [
            (r.status, r.error) for r in responses if not r.ok
        ][:1]
        for (kind, body), response in zip(requests, responses):
            expect = baselines[(kind, tuple(sorted(body.items())))]
            assert isinstance(response.value, np.ndarray)
            assert response.value.shape == expect.shape
            assert response.value.tobytes() == expect.tobytes()
        # the serving machinery actually engaged: far fewer executions
        # than requests (coalescing) and plan-cache hits on repeats
        assert stats["executions"] < len(requests)
        assert stats["plan_cache_hits"] > 0
        assert stats["batch_occupancy_mean"] > 1.0

    def test_process_engine_burst_matches_oneshot(self, knn_service, vm_service):
        services = [knn_service, vm_service]
        requests = _mixed_requests(30)
        # engine-independence: baselines computed on the default engine
        baselines = _baselines(services, requests)
        opts = ServerOptions(
            engine_options=EngineOptions(engine="process", timeout=120.0),
            max_batch=30,
            batch_deadline=0.05,
            max_queue=64,
        )
        with PipelineServer(services, opts) as server:
            client = LocalClient(server, timeout=600.0)
            responses = client.burst(requests)
        assert all(r.ok for r in responses), [
            (r.status, r.error) for r in responses if not r.ok
        ][:1]
        for (kind, body), response in zip(requests, responses):
            expect = baselines[(kind, tuple(sorted(body.items())))]
            assert response.value.tobytes() == expect.tobytes()
