"""Decomposition tests (§4.4): plans, the Figure 3 DP, the O(m)-space
variant, the bottleneck extension, and brute-force equivalence (including
a hypothesis sweep)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import make_pipeline
from repro.decompose import (
    DecompositionPlan,
    DecompositionProblem,
    brute_force,
    decompose_dp,
    decompose_dp_bottleneck,
    decompose_dp_low_space,
    enumerate_plans,
    plan_count,
)


def problem(tasks, vols, powers, bws, widths=None, n=8):
    return DecompositionProblem(
        tasks=list(tasks),
        vols=list(vols),
        env=make_pipeline(powers, bws, widths),
        num_packets=n,
    )


class TestPlan:
    def test_from_cuts_roundtrip(self):
        plan = DecompositionPlan.from_cuts([2, 5], n_filters=7, m=3)
        assert plan.assignment == (1, 1, 2, 2, 2, 3, 3)
        assert plan.cuts == (2, 5)

    def test_empty_unit_allowed(self):
        plan = DecompositionPlan.from_cuts([0, 3], n_filters=3, m=3)
        assert plan.filters_on_unit(1) == []
        assert plan.filters_on_unit(2) == [1, 2, 3]

    def test_non_decreasing_enforced(self):
        with pytest.raises(ValueError):
            DecompositionPlan((2, 1), m=2)

    def test_last_filter_before_link(self):
        plan = DecompositionPlan.from_cuts([2, 2], n_filters=4, m=3)
        assert plan.last_filter_before_link(1) == 2
        assert plan.last_filter_before_link(2) == 2  # unit 2 empty

    def test_raw_input_crossing(self):
        plan = DecompositionPlan.from_cuts([0, 2], n_filters=2, m=3)
        assert plan.last_filter_before_link(1) == 0  # raw input on L1

    def test_str_rendering(self):
        plan = DecompositionPlan.from_cuts([1], n_filters=2, m=2)
        assert str(plan) == "{f1} | {f2}"

    def test_enumerate_plan_count(self):
        plans = list(enumerate_plans(n_filters=4, m=3))
        assert len(plans) == plan_count(4, 3)
        assert len({p.assignment for p in plans}) == len(plans)


class TestProblemValidation:
    def test_volume_count_checked(self):
        with pytest.raises(ValueError, match="volumes"):
            problem([1.0], [1.0], [1.0], [])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            problem([-1.0], [1.0, 1.0], [1.0], [])


class TestDPHandWorked:
    def test_single_unit(self):
        prob = problem([10.0, 20.0], [5.0, 5.0, 5.0], [10.0], [])
        result = decompose_dp(prob)
        assert result.plan.assignment == (1, 1)
        assert result.cost == pytest.approx(3.0)

    def test_cheap_link_splits_work(self):
        # two equal filters, huge bandwidth: splitting is free, fill equal;
        # with charge_raw_input irrelevant; DP cost == either placement
        prob = problem([100.0, 100.0], [1.0, 1.0, 1.0], [10.0, 10.0], [1e9])
        result = decompose_dp(prob)
        assert result.cost == pytest.approx(20.0, rel=1e-6)

    def test_expensive_link_keeps_work_together(self):
        prob = problem([100.0, 100.0], [1e9, 1e9, 1e9], [10.0, 10.0], [1.0])
        result = decompose_dp(prob)
        # moving anything across the link costs ~1e9 seconds; both filters
        # stay on one unit — but the final result must still cross
        assert result.plan.assignment in ((1, 1), (2, 2))

    def test_fast_unit_attracts_work(self):
        prob = problem([100.0], [0.0, 0.0], [1.0, 100.0], [1e12])
        result = decompose_dp(prob)
        assert result.plan.assignment == (2,)

    def test_charge_raw_input_changes_decision(self):
        # moving raw input is expensive; published init ignores it
        prob = problem([10.0], [1e6, 0.0], [1.0, 100.0], [1.0])
        free = decompose_dp(prob, charge_raw_input=False)
        paid = decompose_dp(prob, charge_raw_input=True)
        assert free.plan.assignment == (2,)
        assert paid.plan.assignment == (1,)

    def test_table_kept_when_requested(self):
        prob = problem([1.0, 2.0], [0.5, 0.5, 0.5], [1.0, 1.0], [1.0])
        result = decompose_dp(prob, keep_table=True)
        assert result.table is not None
        assert result.table[0][1] == 0.0  # published T[0, j] = 0


class TestEquivalences:
    @given(
        st.integers(1, 6),
        st.integers(1, 4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_brute_force(self, n1, m, rng):
        tasks = [rng.uniform(0, 100) for _ in range(n1)]
        vols = [rng.uniform(0, 1000) for _ in range(n1 + 1)]
        env = make_pipeline(
            [rng.uniform(1, 100) for _ in range(m)],
            [rng.uniform(1, 100) for _ in range(m - 1)],
            [rng.randint(1, 4) for _ in range(m)],
        )
        prob = DecompositionProblem(tasks, vols, env, num_packets=rng.randint(1, 30))
        for charge in (False, True):
            dp = decompose_dp(prob, charge_raw_input=charge)
            bf_cost, _ = brute_force(prob, "fill", charge_raw_input=charge)
            assert dp.cost == pytest.approx(bf_cost, abs=1e-9)
            assert decompose_dp_low_space(prob, charge) == pytest.approx(
                dp.cost, abs=1e-9
            )
            assert prob.evaluate_fill(dp.plan, charge) == pytest.approx(
                dp.cost, abs=1e-9
            )

    @given(st.integers(1, 5), st.integers(1, 4), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_dp_matches_brute_force(self, n1, m, rng):
        tasks = [rng.uniform(0, 100) for _ in range(n1)]
        vols = [rng.uniform(0, 1000) for _ in range(n1 + 1)]
        env = make_pipeline(
            [rng.uniform(1, 100) for _ in range(m)],
            [rng.uniform(1, 100) for _ in range(m - 1)],
            [rng.randint(1, 4) for _ in range(m)],
        )
        prob = DecompositionProblem(tasks, vols, env, num_packets=rng.randint(1, 30))
        dp = decompose_dp_bottleneck(prob)
        bf_cost, _ = brute_force(prob, "total")
        assert dp.cost == pytest.approx(bf_cost, abs=1e-9)
        assert prob.evaluate(dp.plan) == pytest.approx(dp.cost, abs=1e-9)

    def test_complexity_table_is_linear_in_nm(self):
        """O(nm): the DP fills (n+2)x(m+1) cells exactly once each."""
        prob = problem(
            [1.0] * 40,
            [1.0] * 41,
            [1.0] * 5,
            [1.0] * 4,
        )
        result = decompose_dp(prob, keep_table=True)
        assert len(result.table) == 41
        assert all(len(row) == 6 for row in result.table)
