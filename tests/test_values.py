"""Tests for SymExpr, Section, AccessPath, and PathSet (analysis values)."""

from hypothesis import given, strategies as st

from repro.analysis.values import (
    AccessPath,
    Interval,
    PathSet,
    Section,
    SymExpr,
)
from repro.lang.types import DOUBLE, ArrayType, VarSymbol


def var(name="v", type=DOUBLE, kind="local"):
    return VarSymbol(name, type, kind)


class TestSymExpr:
    def test_constants(self):
        assert SymExpr.const(3).constant_value == 3
        assert (SymExpr.const(2) + 3).constant_value == 5

    def test_arithmetic(self):
        n = SymExpr.var("n")
        expr = (n + 1) * 2 - n
        assert expr.evaluate({"n": 10}) == 12

    def test_polynomial_product(self):
        n, s = SymExpr.var("n"), SymExpr.var("s")
        expr = n * s + n
        assert expr.evaluate({"n": 4, "s": 0.5}) == 6

    def test_missing_parameter_defaults_to_one(self):
        assert SymExpr.var("mystery").evaluate({}) == 1.0

    def test_substitute(self):
        n = SymExpr.var("n")
        expr = n * n + 2
        sub = expr.substitute({"n": SymExpr.var("m") + 1})
        assert sub.evaluate({"m": 2}) == 11

    def test_definitely_le(self):
        n = SymExpr.var("n")
        assert n.definitely_le(n + 3)
        assert not (n + 3).definitely_le(n)
        assert not n.definitely_le(SymExpr.var("m"))  # incomparable

    def test_equality_and_hash(self):
        a = SymExpr.var("n") + 1
        b = 1 + SymExpr.var("n")
        assert a == b and hash(a) == hash(b)

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-5, 5))
    def test_linearity(self, a, b, c):
        n = SymExpr.var("n")
        expr = n * a + b
        assert expr.evaluate({"n": c}) == a * c + b


class TestSection:
    def test_full_covers_everything(self):
        rect = Section.rect(Interval(SymExpr.const(0), SymExpr.var("n")))
        assert Section.full().covers(rect)
        assert not rect.covers(Section.full())

    def test_unknown_covers_nothing(self):
        assert not Section.unknown().covers(Section.point(SymExpr.const(0)))

    def test_rect_containment(self):
        outer = Section.rect(Interval(SymExpr.const(0), SymExpr.const(10)))
        inner = Section.rect(Interval(SymExpr.const(2), SymExpr.const(5)))
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_symbolic_containment(self):
        n = SymExpr.var("n")
        outer = Section.rect(Interval(SymExpr.const(0), n + 1))
        inner = Section.rect(Interval(SymExpr.const(0), n))
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_hull(self):
        a = Section.rect(Interval(SymExpr.const(0), SymExpr.const(4)))
        b = Section.rect(Interval(SymExpr.const(2), SymExpr.const(9)))
        hull = a.hull(b)
        assert hull.covers(a) and hull.covers(b)

    def test_count(self):
        sec = Section.rect(Interval(SymExpr.const(3), SymExpr.var("n")))
        assert sec.count().evaluate({"n": 10}) == 7

    def test_point(self):
        point = Section.point(SymExpr.const(5))
        assert point.count().constant_value == 1


class TestAccessPath:
    def test_root_identity_not_name(self):
        a, b = var("x"), var("x")
        assert AccessPath(a) != AccessPath(b)
        assert AccessPath(a) == AccessPath(a)

    def test_field_chain_equality(self):
        v = var("c")
        assert AccessPath(v).field("minval") == AccessPath(v).field("minval")
        assert AccessPath(v).field("minval") != AccessPath(v).field("maxval")

    def test_prefix_covers_extension(self):
        v = var("c")
        whole = AccessPath(v)
        part = AccessPath(v).field("vals").elem(Section.point(SymExpr.const(2)))
        assert whole.covers(part)
        assert not part.covers(whole)

    def test_section_covers(self):
        v = var("a", ArrayType(DOUBLE))
        big = AccessPath(v).elem(
            Section.rect(Interval(SymExpr.const(0), SymExpr.const(10)))
        )
        small = AccessPath(v).elem(Section.point(SymExpr.const(3)))
        assert big.covers(small)
        assert not small.covers(big)

    def test_unknown_section_write_covers_nothing(self):
        v = var("a", ArrayType(DOUBLE))
        unknown = AccessPath(v).elem(Section.unknown())
        point = AccessPath(v).elem(Section.point(SymExpr.const(1)))
        assert not unknown.covers(point)

    def test_overlaps_conservative(self):
        v = var("a", ArrayType(DOUBLE))
        p1 = AccessPath(v).elem(Section.point(SymExpr.const(1)))
        p2 = AccessPath(v).elem(Section.point(SymExpr.const(2)))
        # point disjointness is not decided -> conservative overlap
        assert p1.overlaps(p2)
        assert not p1.overlaps(AccessPath(var("b")))


class TestPathSet:
    def test_add_merges_same_shape_by_hull(self):
        v = var("a", ArrayType(DOUBLE))
        ps = PathSet()
        ps.add(AccessPath(v).elem(Section.point(SymExpr.const(1))))
        ps.add(AccessPath(v).elem(Section.point(SymExpr.const(5))))
        assert len(ps) == 1
        merged = next(iter(ps))
        assert merged.covers(AccessPath(v).elem(Section.point(SymExpr.const(3))))

    def test_remove_covered_must_semantics(self):
        v = var("c")
        ps = PathSet([AccessPath(v).field("x"), AccessPath(v).field("y")])
        ps.remove_covered(AccessPath(v).field("x"))
        assert [repr(p) for p in ps] == ["c.y"]

    def test_whole_object_removal(self):
        v = var("c")
        ps = PathSet([AccessPath(v).field("x"), AccessPath(v).field("y")])
        ps.remove_covered(AccessPath(v))
        assert len(ps) == 0

    def test_difference_must(self):
        v, w = var("a"), var("b")
        ps = PathSet([AccessPath(v), AccessPath(w)])
        out = ps.difference_must(PathSet([AccessPath(v)]))
        assert [p.root.name for p in out] == ["b"]

    def test_union(self):
        v, w = var("a"), var("b")
        u = PathSet([AccessPath(v)]).union(PathSet([AccessPath(w)]))
        assert {p.root.name for p in u} == {"a", "b"}

    def test_reqcomm_equation_identity(self):
        """ReqComm(f1) = (ReqComm(f2) - Gen) + Cons with must/may rules."""
        c, t = var("c"), var("tris")
        downstream = PathSet([AccessPath(t), AccessPath(c).field("vals")])
        gen = PathSet([AccessPath(t)])
        cons = PathSet([AccessPath(c).field("minval")])
        req = downstream.difference_must(gen).union(cons)
        names = {repr(p) for p in req}
        assert names == {"c.vals", "c.minval"}
