"""Layout-builder tests (§5): trimmed classes, instance/field-wise
grouping by first consumer, reduction scratch rule."""

import pytest

from repro.analysis import analyze_communication, build_filter_chain
from repro.codegen.layout import LayoutBuilder, mangle
from repro.lang import check, parse

SOURCE = """
native Rectdomain<1, Cube> read();
native double[] extract(double[] vals, double iso);
native double[] project(double[] tris, double angle);
native void show(Acc a);

class Cube { double minval; double maxval; double[] vals; double unused; }

class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc other) { return; }
}

class M {
    void run(double iso, double angle) {
        runtime_define int num_packets;
        Rectdomain<1, Cube> cubes = read();
        Acc result = new Acc();
        PipelinedLoop (p in cubes) {
            Acc local = new Acc();
            foreach (c in p) {
                if (c.minval <= iso && c.maxval >= iso) {
                    double[] tris = extract(c.vals, iso);
                    double[] polys = project(tris, angle);
                    local.add(polys);
                }
            }
            result.merge(local);
        }
        show(result);
    }
}
"""


@pytest.fixture(scope="module")
def built():
    from repro.lang import Intrinsic, IntrinsicRegistry
    from repro.lang.types import DOUBLE, ArrayType

    registry = IntrinsicRegistry(
        [
            Intrinsic("read", (), None, fn=lambda: None, writes=("return",)),
            Intrinsic(
                "extract",
                (ArrayType(DOUBLE), DOUBLE),
                ArrayType(DOUBLE),
                fn=lambda v, s: v,
                reads=("vals", "iso"),
            ),
            Intrinsic(
                "project",
                (ArrayType(DOUBLE), DOUBLE),
                ArrayType(DOUBLE),
                fn=lambda t, a: t,
                reads=("tris", "angle"),
            ),
            Intrinsic("show", (), None, fn=lambda a: None, reads=("a",), writes=()),
        ]
    )
    checked = check(parse(SOURCE), registry)
    meth, loop = checked.pipelined_loops()[0]
    chain = build_filter_chain(checked, meth, loop)
    analysis = analyze_communication(chain)
    builder = LayoutBuilder(chain, analysis, size_hints={"Cube.vals": 8})
    return chain, analysis, builder


class TestMangling:
    def test_mangle(self):
        assert mangle("c.minval") == "c__minval"
        assert mangle("tris") == "tris"


class TestLayouts:
    def test_trimmed_fields_only(self, built):
        """The §5 trimmed class: 'unused' never crosses any boundary."""
        chain, analysis, builder = built
        for b in chain.boundaries:
            layout = builder.layout_for_boundary(b.index, set())
            assert all("unused" not in c.source for c in layout.columns)

    def test_guard_boundary_carries_guard_fields(self, built):
        chain, analysis, builder = built
        layout = builder.layout_for_boundary(1, {2})
        sources = {c.source for c in layout.columns}
        assert {"c.minval", "c.maxval", "c.vals"} <= sources

    def test_post_guard_boundary_drops_guard_fields(self, built):
        chain, analysis, builder = built
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        layout = builder.layout_for_boundary(guard_atom.index, set())
        sources = {c.source for c in layout.columns}
        assert "c.minval" not in sources
        assert "c.vals" in sources

    def test_instance_vs_fieldwise_by_first_consumer(self, built):
        """Fields first read by the receiving filter pack instance-wise;
        later-read fields pack field-wise (§5 rule)."""
        chain, analysis, builder = built
        guard_atom = next(a for a in chain.atoms if a.guard is not None)
        extract_atom = guard_atom.index + 1
        # consumer unit hosts only the extract atom: c.vals instance-wise
        layout = builder.layout_for_boundary(guard_atom.index, {extract_atom})
        col = layout.column("c.vals")
        assert col is not None and col.group == "instance"
        # consumer unit hosts nothing that reads c.vals -> field-wise
        layout2 = builder.layout_for_boundary(guard_atom.index, set())
        col2 = layout2.column("c.vals")
        assert col2 is not None and col2.group == "fieldwise"

    def test_fixed_length_hint_applied(self, built):
        chain, analysis, builder = built
        layout = builder.layout_for_boundary(1, set())
        col = layout.column("c.vals")
        assert not col.ragged and col.length == 8

    def test_unhinted_array_is_ragged(self, built):
        chain, analysis, builder = built
        extract_atom = next(
            a.index
            for a in chain.atoms
            if a.kind == "element" and a.guard is None
        )
        layout = builder.layout_for_boundary(extract_atom, set())
        col = layout.column("tris")
        assert col is not None and col.ragged
        assert col.group == "fieldwise"  # ragged forces field-wise

    def test_pristine_reduction_not_shipped(self, built):
        """Before its first update the accumulator is scratch state."""
        chain, analysis, builder = built
        layout = builder.layout_for_boundary(1, set())
        assert layout.reduction_roots == []

    def test_written_reduction_shipped(self, built):
        chain, analysis, builder = built
        add_atom = next(
            a.index
            for a in chain.atoms
            if any("add" in repr(s) for s in a.stmts)
        )
        layout = builder.layout_for_boundary(add_atom, set())
        assert "local" in layout.reduction_roots

    def test_packing_order_instance_first(self, built):
        chain, analysis, builder = built
        layout = builder.layout_for_boundary(1, {2})
        groups = [c.group for c in layout.columns]
        if "fieldwise" in groups and "instance" in groups:
            assert groups.index("fieldwise") > groups.index("instance")

    def test_packet_fields_for_externals(self, built):
        chain, analysis, builder = built
        layout = builder.layout_for_boundary(1, {2})
        sources = {pf.source for pf in layout.packet_fields}
        assert "iso" in sources
