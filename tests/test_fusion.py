"""Request fusion conformance: lane-batched execution of distinct queries.

The acceptance bar: a burst of *distinct* knn queries served by a
fusion-enabled :class:`PipelineServer` produces responses byte-identical
to the same burst on an unfused (equal-``group_key`` coalescing) server
and to fresh one-shot runs, on both engines — while exercising the
opt-in protocol (``ServicePlan.fuse_key``), lane caps and chunking,
power-of-two bucket reuse in the plan cache, per-lane deadline drops,
per-lane extract-failure isolation, the fusion metrics surface, and the
``fused_lanes`` wire field.
"""

import time

import numpy as np
import pytest

from repro.apps import (
    make_knn_class,
    make_knn_lanes_class,
    make_knn_service,
    make_vmscope_service,
)
from repro.datacutter import EngineOptions
from repro.serve import (
    LocalClient,
    PipelineServer,
    Response,
    ServerOptions,
    oneshot,
)

# small workloads: fusion semantics, not throughput, are under test here
KNN_KW = dict(n_points=2_000, num_packets=3)
VM_KW = dict(image_w=96, image_h=96, tile=32, num_packets=3)


def distinct_queries(n: int, seed: int = 5) -> list[dict]:
    rng = np.random.default_rng(seed)
    return [
        {"x": float(x), "y": float(y), "z": float(z)}
        for x, y, z in rng.random((n, 3))
    ]


@pytest.fixture(scope="module")
def knn_service():
    return make_knn_service(**KNN_KW)


@pytest.fixture(scope="module")
def vm_service():
    return make_vmscope_service(**VM_KW)


# ---------------------------------------------------------------------------
# Lane-batched KNN kernel: the fused reduction class itself
# ---------------------------------------------------------------------------


class TestLaneKernel:
    def test_lane_class_cached_and_pickle_anchored(self):
        cls = make_knn_lanes_class(3, 4)
        assert make_knn_lanes_class(3, 4) is cls
        assert make_knn_lanes_class(3, 8) is not cls
        assert cls.__name__ == "KNNLanes3x4"
        assert cls.__module__ == "repro.codegen.generated_registry"
        assert cls.K == 3 and cls.LANES == 4

    def test_scalar_fold_matches_single_lane_runs(self):
        k, lanes = 3, 5
        rng = np.random.default_rng(9)
        points = rng.random((40, 3))
        queries = rng.random((lanes, 3))
        fused = make_knn_lanes_class(k, lanes)()
        singles = [make_knn_class(k)() for _ in range(lanes)]
        for x, y, z in points:
            d = ((queries - (x, y, z)) ** 2).sum(axis=1).reshape(lanes, 1)
            fused.insert(d, x, y, z)
            for lane, single in enumerate(singles):
                single.insert(float(d[lane, 0]), x, y, z)
        for lane, single in enumerate(singles):
            got = fused.lane_rows(lane)
            expect = single.rows()
            assert got.tobytes() == expect.tobytes()

    def test_batch_fold_and_merge_match_scalar_fold(self):
        k, lanes = 2, 3
        rng = np.random.default_rng(4)
        points = rng.random((30, 3))
        queries = rng.random((lanes, 3))
        cls = make_knn_lanes_class(k, lanes)
        scalar, batched = cls(), cls()
        for x, y, z in points:
            d = ((queries - (x, y, z)) ** 2).sum(axis=1).reshape(lanes, 1)
            scalar.insert(d, x, y, z)
        # two columnar halves merged, like two packets on the vector path
        half = len(points) // 2
        acc = cls()
        for chunk in (points[:half], points[half:]):
            local = cls()
            d = (
                (chunk[None, :, :] - queries[:, None, :]) ** 2
            ).sum(axis=2)  # (lanes, n)
            local.batch_insert(d, chunk[:, 0], chunk[:, 1], chunk[:, 2])
            acc.merge(local)
        batched = acc
        for lane in range(lanes):
            assert (
                batched.lane_rows(lane).tobytes()
                == scalar.lane_rows(lane).tobytes()
            )

    def test_pack_unpack_roundtrip_is_flat(self):
        k, lanes = 3, 4
        rng = np.random.default_rng(2)
        cls = make_knn_lanes_class(k, lanes)
        obj = cls()
        for x, y, z in rng.random((10, 3)):
            obj.insert(rng.random((lanes, 1)), x, y, z)
        packed = obj.pack()
        # single-lane wire shape: 1-D arrays, lanes * k candidates
        assert all(v.ndim == 1 and len(v) == lanes * k for v in packed.values())
        clone = cls.unpack(packed)
        for lane in range(lanes):
            assert (
                clone.lane_rows(lane).tobytes() == obj.lane_rows(lane).tobytes()
            )


# ---------------------------------------------------------------------------
# The fusion protocol on service plans
# ---------------------------------------------------------------------------


class TestFusionProtocol:
    def test_knn_plan_advertises_fusion(self, knn_service):
        a = knn_service.plan({"x": 0.1})
        b = knn_service.plan({"x": 0.9})
        assert a.fuse_key is not None and a.fuse_key == b.fuse_key
        assert a.group_key != b.group_key
        assert callable(a.fuse)
        assert a.lanes == 1 and a.extract_lane is None

    def test_vmscope_plan_is_explicitly_not_fusable(self, vm_service):
        plan = vm_service.plan({"query": "small"})
        assert plan.fuse_key is None
        assert plan.fuse is None

    def test_fused_plan_shape_and_padding(self, knn_service):
        plans = [knn_service.plan(b) for b in distinct_queries(3)]
        fused = knn_service.fuse_plans(plans)
        assert fused.lanes == 3
        assert fused.fuse_key is None  # a fused plan never re-fuses
        assert fused.extract_lane is not None
        qx = fused.params["qx"]
        assert qx.shape == (4, 1)  # bucket rounds 3 lanes up to 4
        assert qx[3, 0] == qx[2, 0]  # padded with the last real query
        for i, plan in enumerate(plans):
            assert qx[i, 0] == plan.params["qx"]

    def test_bucketed_options_identity_is_stable(self, knn_service):
        f1 = knn_service.fuse_plans(
            [knn_service.plan(b) for b in distinct_queries(3)]
        )
        f2 = knn_service.fuse_plans(
            [knn_service.plan(b) for b in distinct_queries(4, seed=6)]
        )
        f3 = knn_service.fuse_plans(
            [knn_service.plan(b) for b in distinct_queries(5, seed=7)]
        )
        # 3 and 4 lanes share the 4-wide bucket (same compile identity);
        # 5 lanes spill into the 8-wide bucket
        assert f1.options is f2.options
        assert f3.options is not f1.options

    def test_server_options_validation(self):
        with pytest.raises(ValueError):
            ServerOptions(max_fuse_lanes=0)
        assert ServerOptions().fuse is True
        assert ServerOptions(fuse=False, max_fuse_lanes=2).max_fuse_lanes == 2

    def test_response_wire_roundtrips_fused_lanes(self):
        response = Response(
            id=7, kind="knn", status="ok", value=np.arange(3.0), fused_lanes=5
        )
        header, segments = response.to_wire()
        clone = Response.from_wire(header, segments)
        assert clone.fused_lanes == 5
        # frames from a peer that predates the field decode to 0
        header.pop("fused_lanes")
        assert Response.from_wire(header, segments).fused_lanes == 0


# ---------------------------------------------------------------------------
# Fused serving: differential correctness and dispatch behavior
# ---------------------------------------------------------------------------


def _serve_burst(service_kw, server_kw, bodies, engine="threaded"):
    options = ServerOptions(
        engine_options=EngineOptions(engine=engine, timeout=300.0),
        max_batch=max(16, len(bodies)),
        batch_deadline=0.05,
        max_queue=4 * max(16, len(bodies)),
        **server_kw,
    )
    with PipelineServer([make_knn_service(**service_kw)], options) as server:
        with LocalClient(server, timeout=600.0) as client:
            responses = client.burst([("knn", b) for b in bodies])
            stats = client.stats()
    return responses, stats


class TestFusedServing:
    @pytest.mark.parametrize("engine", ["threaded", "process"])
    def test_fused_burst_byte_identical_to_unfused_and_oneshot(self, engine):
        n = 6 if engine == "process" else 10
        bodies = distinct_queries(n)
        fused, fstats = _serve_burst(KNN_KW, {"fuse": True}, bodies, engine)
        unfused, ustats = _serve_burst(KNN_KW, {"fuse": False}, bodies, engine)
        assert all(r.ok for r in fused), [r.error for r in fused if not r.ok][:1]
        assert all(r.ok for r in unfused)
        assert fstats["fusion"]["fused_executions"] >= 1
        assert ustats["fusion"]["fused_executions"] == 0
        assert ustats["executions"] > fstats["executions"]
        service = make_knn_service(**KNN_KW)
        for body, a, b in zip(bodies, fused, unfused):
            assert a.value.tobytes() == b.value.tobytes()
            baseline = oneshot(
                service.plan(body), EngineOptions(engine=engine, timeout=300.0)
            )
            assert a.value.tobytes() == baseline.tobytes(), body

    def test_fused_responses_report_lanes(self):
        bodies = distinct_queries(4)
        responses, stats = _serve_burst(KNN_KW, {"fuse": True}, bodies)
        served_lanes = {r.fused_lanes for r in responses}
        # the whole burst may land in one batch (4 lanes) or split across
        # dispatches; every response must report >= 2 fused lanes either
        # way, and the metrics lane total covers every served lane
        assert all(lanes >= 2 for lanes in served_lanes), served_lanes
        assert stats["fusion"]["fused_lanes"] >= max(served_lanes)
        assert stats["fusion"]["fused_executions"] >= 1

    def test_identical_queries_coalesce_without_fusion(self, knn_service):
        opts = ServerOptions(max_batch=8, batch_deadline=0.05)
        with PipelineServer([knn_service], opts) as server:
            pendings = [
                server.submit("knn", {"x": 0.3, "y": 0.3, "z": 0.3})
                for _ in range(4)
            ]
            responses = [p.result(60) for p in pendings]
            stats = server.stats()
        assert all(r.ok for r in responses)
        assert {r.fused_lanes for r in responses} == {0}
        assert {r.group_size for r in responses} == {4}
        assert stats["executions"] == 1
        assert stats["fusion"]["fused_executions"] == 0
        assert stats["fusion"]["bypass"].get("single-lane") == 1

    def test_disabled_fusion_records_bypass(self):
        bodies = distinct_queries(3)
        responses, stats = _serve_burst(KNN_KW, {"fuse": False}, bodies)
        assert all(r.ok for r in responses)
        assert {r.fused_lanes for r in responses} == {0}
        assert stats["fusion"]["fused_executions"] == 0
        assert stats["fusion"]["bypass"].get("disabled", 0) >= 1

    def test_max_fuse_lanes_chunks_wide_buckets(self):
        bodies = distinct_queries(4)
        responses, stats = _serve_burst(
            KNN_KW, {"fuse": True, "max_fuse_lanes": 2}, bodies
        )
        assert all(r.ok for r in responses)
        assert all(r.fused_lanes <= 2 for r in responses)
        # 4 distinct queries under a 2-lane cap: at least two fused
        # executions (exactly two when the burst lands in one batch)
        assert stats["fusion"]["fused_executions"] >= 2

    def test_mixed_batch_fusable_nonfusable_and_stats(self, vm_service):
        options = ServerOptions(max_batch=16, batch_deadline=0.05)
        services = [make_knn_service(**KNN_KW), vm_service]
        with PipelineServer(services, options) as server:
            pendings = [
                server.submit("knn", b) for b in distinct_queries(4)
            ]
            pendings += [
                server.submit("vmscope", {"query": q})
                for q in ("small", "large")
            ]
            responses = [p.result(120) for p in pendings]
            stats_response = server.request("stats", timeout=60)
        assert all(r.ok for r in responses), [
            (r.kind, r.error) for r in responses if not r.ok
        ][:1]
        knn_responses = responses[:4]
        vm_responses = responses[4:]
        assert all(r.fused_lanes >= 2 for r in knn_responses)
        assert all(r.fused_lanes == 0 for r in vm_responses)
        assert stats_response.ok
        fusion = stats_response.value["fusion"]
        assert fusion["fused_executions"] >= 1
        assert fusion["bypass"].get("unsupported", 0) >= 1
        # vmscope answers match their own one-shot baselines
        for q, r in zip(("small", "large"), vm_responses):
            baseline = oneshot(vm_service.plan({"query": q}))
            assert r.value.tobytes() == baseline.tobytes()

    def test_expired_lane_dropped_from_fused_run_without_charge(
        self, knn_service
    ):
        opts = ServerOptions(max_batch=8, batch_deadline=0.01)
        with PipelineServer([knn_service], opts) as server:
            server._before_execute = lambda plan: time.sleep(0.4)
            bodies = distinct_queries(3)
            pendings = [
                server.submit("knn", bodies[0], deadline=30.0),
                server.submit("knn", bodies[1], deadline=0.2),  # dies in stall
                server.submit("knn", bodies[2], deadline=30.0),
            ]
            responses = [p.result(120) for p in pendings]
            stats = server.stats()
            runs = server.pool.session.runs
        assert responses[1].status == "expired"
        assert "before execution" in responses[1].error
        assert responses[0].ok and responses[2].ok
        # the survivors still fused: one execution, two lanes, and the
        # expired lane was never executed or charged
        assert {responses[0].fused_lanes, responses[2].fused_lanes} == {2}
        assert stats["expired"] == 1
        assert stats["executions"] == 1
        assert stats["fusion"]["fused_executions"] == 1
        assert stats["fusion"]["fused_lanes"] == 2
        assert runs == 1

    def test_lane_extract_failure_errors_only_that_lane(self):
        service = make_knn_service(**KNN_KW)
        inner = service.fuse_plans

        def fuse_and_break(plans):
            fused = inner(plans)
            lane_extract = fused.extract_lane

            def extract(payloads, lane):
                if lane == 1:
                    raise RuntimeError("lane demux boom")
                return lane_extract(payloads, lane)

            fused.extract_lane = extract
            return fused

        service.fuse_plans = fuse_and_break
        opts = ServerOptions(max_batch=8, batch_deadline=0.05)
        bodies = distinct_queries(3)
        with PipelineServer([service], opts) as server:
            pendings = [server.submit("knn", b) for b in bodies]
            responses = [p.result(120) for p in pendings]
            stats = server.stats()
        assert responses[1].status == "error"
        assert "lane demux boom" in responses[1].error
        assert responses[0].ok and responses[2].ok
        assert stats["errors"] == 1
        # the healthy lanes are still byte-identical to one-shot runs
        clean = make_knn_service(**KNN_KW)
        for i in (0, 2):
            baseline = oneshot(clean.plan(bodies[i]))
            assert responses[i].value.tobytes() == baseline.tobytes()

    def test_fuse_combiner_failure_degrades_to_coalescing(self):
        service = make_knn_service(**KNN_KW)
        service.fuse_plans = lambda plans: (_ for _ in ()).throw(
            RuntimeError("combiner boom")
        )
        opts = ServerOptions(max_batch=8, batch_deadline=0.05)
        bodies = distinct_queries(3)
        with PipelineServer([service], opts) as server:
            pendings = [server.submit("knn", b) for b in bodies]
            responses = [p.result(120) for p in pendings]
            stats = server.stats()
        assert all(r.ok for r in responses)
        assert {r.fused_lanes for r in responses} == {0}
        assert stats["fusion"]["bypass"].get("fuse-error", 0) >= 1
        assert stats["fusion"]["fused_executions"] == 0
        clean = make_knn_service(**KNN_KW)
        for body, r in zip(bodies, responses):
            assert r.value.tobytes() == oneshot(clean.plan(body)).tobytes()


# ---------------------------------------------------------------------------
# Accounting: service-time EWMA and execution metrics under fusion
# ---------------------------------------------------------------------------


class TestFusionAccounting:
    def test_service_time_divided_by_lane_count(self, knn_service):
        opts = ServerOptions(max_batch=8, batch_deadline=0.05)
        observed = []
        with PipelineServer([knn_service], opts) as server:
            inner = server.queue.observe_service_time
            server.queue.observe_service_time = lambda s, **kw: (
                observed.append(s),
                inner(s, **kw),
            )[-1]
            pendings = [server.submit("knn", b) for b in distinct_queries(4)]
            responses = [p.result(120) for p in pendings]
        assert all(r.ok for r in responses)
        lanes = responses[0].fused_lanes
        assert lanes >= 2
        # each lane is charged a 1/lanes share of the fused wall time
        share = responses[0].service_seconds / lanes
        assert any(
            obs == pytest.approx(share) for obs in observed
        ), (observed, share)

    def test_metrics_record_group_size_and_lanes(self):
        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.record_execution("knn", 0.0, 1.0, group_size=5, cache_hit=False)
        metrics.record_execution(
            "knn", 1.0, 2.0, group_size=6, cache_hit=True, lanes=4
        )
        metrics.record_fuse_bypass("unsupported")
        metrics.record_fuse_bypass("unsupported")
        metrics.record_fuse_bypass("disabled")
        snapshot = metrics.snapshot()
        fusion = snapshot["fusion"]
        assert snapshot["executions"] == 2
        assert fusion["fused_executions"] == 1
        assert fusion["fused_lanes"] == 4
        assert fusion["mean_lanes_per_fused_execution"] == 4.0
        assert fusion["mean_group_size"] == 5.5
        assert fusion["bypass"] == {"unsupported": 2, "disabled": 1}
