"""Gen/Cons analysis tests, following Figure 2 statement by statement."""


from repro.analysis import GenConsAnalyzer
from repro.lang import check, parse

PRELUDE = """
native double[] produce(double x);
native double consume(double[] v);
class E { double v; double w; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double x) { return; }
    void merge(Acc other) { return; }
}
"""


def analyze(body: str, params: str = ""):
    checked = check(parse(PRELUDE + "class M { void f(%s) { %s } }" % (params, body)))
    meth = checked.program.find_method("f")
    analyzer = GenConsAnalyzer(checked)
    facts = analyzer.analyze(list(meth.body.body))
    return facts, analyzer


def names(pathset):
    return {repr(p) for p in pathset}


class TestAssignments:
    def test_simple_def_and_use(self):
        facts, _ = analyze("double y = x + 1.0;", params="double x")
        assert names(facts.gen) == {"y"}
        assert names(facts.cons) == {"x"}

    def test_def_kills_earlier_use(self):
        # reverse scan: y = x; x = 1  -> x generated after its use? No:
        # program order is x = 1.0; y = x; so x is NOT consumed from outside
        facts, _ = analyze("double x = 1.0; double y = x;")
        assert names(facts.gen) == {"x", "y"}
        assert names(facts.cons) == set()

    def test_use_before_def_is_consumed(self):
        facts, _ = analyze("double y = x; double x2 = 1.0;", params="double x")
        assert "x" in names(facts.cons)

    def test_self_update_consumes(self):
        facts, _ = analyze("x = x + 1.0;", params="double x")
        assert names(facts.cons) == {"x"}
        assert names(facts.gen) == {"x"}

    def test_compound_assignment_consumes_target(self):
        facts, _ = analyze("x += 2.0;", params="double x")
        assert "x" in names(facts.cons)

    def test_field_write_is_precise(self):
        facts, _ = analyze("e.v = 1.0; double z = e.w;", params="E e")
        assert "e.v" in names(facts.gen)
        assert "e.w" in names(facts.cons)
        assert "e.v" not in names(facts.cons)

    def test_array_point_write(self):
        facts, _ = analyze(
            "a[2] = 1.0; double z = a[2];", params="double[] a"
        )
        # a[2] defined before use -> not consumed
        assert not any("[" in n and "a" in n for n in names(facts.cons))

    def test_unknown_index_is_not_must(self):
        facts, _ = analyze(
            "a[k * k] = 1.0; double z = a[0];", params="double[] a, int k"
        )
        # quadratic index isn't converted; the write is not a definite def
        assert any(n.startswith("a") for n in names(facts.cons))


class TestConditionals:
    def test_conditional_def_not_generated(self):
        """Fig 2: Gen(s) of a conditional block is discarded."""
        facts, _ = analyze(
            "if (c) { x = 1.0; } double y = x;",
            params="boolean c, double x",
        )
        assert "x" in names(facts.cons)
        assert "x" not in names(facts.gen)

    def test_conditional_use_propagates(self):
        facts, _ = analyze(
            "if (c) { double y = x; }", params="boolean c, double x"
        )
        assert "x" in names(facts.cons)

    def test_def_then_use_inside_conditional_not_consumed(self):
        """Fig 2: 'a variable that is both defined and used in the block s
        does not get added to the Cons(b) set'."""
        facts, _ = analyze(
            "if (c) { double t = 1.0; double u = t; }", params="boolean c"
        )
        assert "t" not in names(facts.cons)

    def test_both_branches_consume(self):
        facts, _ = analyze(
            "if (c) { double y = x1; } else { double y = x2; }",
            params="boolean c, double x1, double x2",
        )
        assert {"x1", "x2", "c"} <= names(facts.cons)


class TestLoops:
    def test_counted_loop_widens_to_section(self):
        facts, _ = analyze(
            "for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }",
            params="double[] a, int n",
        )
        gen_names = names(facts.gen)
        assert any(n.startswith("a[") and "n" in n for n in gen_names), gen_names

    def test_loop_write_kills_downstream_cons_constant_bound(self):
        """With decidable bounds the widened section definitely defines the
        downstream read (>=1 iteration assumption)."""
        facts, _ = analyze(
            "for (int i = 0; i < 4; i = i + 1) { a[i] = 1.0; }"
            "double z = a[0];",
            params="double[] a",
        )
        assert not any(n.startswith("a") for n in names(facts.cons))

    def test_loop_write_symbolic_bound_stays_conservative(self):
        """a[0, n) covers a[0, 1) only if n >= 1 is provable; with a free
        symbolic bound the read conservatively stays in Cons."""
        facts, _ = analyze(
            "for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }"
            "double z = a[0];",
            params="double[] a, int n",
        )
        assert any(n_.startswith("a") for n_ in names(facts.cons))
        assert any(n_.startswith("a[0, n") for n_ in names(facts.gen))

    def test_loop_read_widens(self):
        facts, _ = analyze(
            "double s = 0.0;"
            "for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }",
            params="double[] a, int n",
        )
        assert any(n.startswith("a[") for n in names(facts.cons))

    def test_while_loop_conservative(self):
        facts, _ = analyze(
            "int i = 0; while (i < n) { a[i] = 1.0; i = i + 1; } double z = a[0];",
            params="double[] a, int n",
        )
        # the while write is not recognized as covering -> still consumed
        assert any(n.startswith("a") for n in names(facts.cons))

    def test_foreach_rebases_to_domain(self):
        facts, _ = analyze(
            "double s = 0.0; foreach (e in d) { s = s + e.v; }",
            params="Rectdomain<1, E> d",
        )
        assert any(n.startswith("d[*]") for n in names(facts.cons)), names(facts.cons)


class TestCallsAndAllocation:
    def test_new_object_is_whole_definition(self):
        facts, _ = analyze("E e = new E(); double z = e.v;")
        assert "e.v" not in names(facts.cons)

    def test_new_array_is_whole_definition(self):
        facts, _ = analyze("double[] a = new double[4]; double z = a[0];")
        assert not any(n.startswith("a") for n in names(facts.cons))

    def test_intrinsic_summary_reads(self):
        facts, _ = analyze("double[] v = produce(x);", params="double x")
        # no registered summary: conservative (x may be read)
        assert "x" in names(facts.cons)

    def test_one_pass_visit_count(self):
        body = "double a = 1.0; double b = a; double c = b; double d = c;"
        _, analyzer = analyze(body)
        assert analyzer.visit_count == 4
