"""Packet-granularity fault tolerance: injection, replay, checkpoints.

The heart of this file is the cross-engine fault matrix: every
combination of engine x fault kind x pipeline stage x width must heal —
an injected failure of one filter copy completes the run with outputs
identical to the fault-free run, including reduction state (no packet
lost, none double-counted).  Around it: retry-budget exhaustion, stall
and heartbeat diagnostics, checkpoint semantics, compiled-application
recovery, and regression tests for the satellite fixes that rode along
(broadcast queue tracing, generate-span ownership, round-robin reset,
stream capacity validation, the post-EOS completion deadline).
"""

import time

import pytest

from repro.__main__ import _canonical_outputs
from repro.datacutter import (
    Broadcast,
    ByPacket,
    CollectorStream,
    EngineOptions,
    FaultPlan,
    FaultSpec,
    Filter,
    FilterSpec,
    LogicalStream,
    PipelineError,
    RetryPolicy,
    RoundRobin,
    SourceFilter,
    Trace,
    run_pipeline,
)
from repro.datacutter.recovery import (
    CheckpointError,
    FaultInjector,
    InjectedCrash,
    clone_state,
    freeze_state,
    restore_state,
    snapshot_state,
)

PROC_TIMEOUT = 120.0
#: fast recovery knobs for tests: no jitter, token backoff, short grace
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0)


class CountingSource(SourceFilter):
    """Yields 0..n-1 and tracks its own reduction state (sum of owned)."""

    def init(self, ctx):
        self.owned_sum = 0

    def generate(self, ctx):
        n = ctx.params.get("n", 10)
        for i in range(n):
            if i % ctx.n_copies == ctx.copy_index:
                self.owned_sum += i
            yield i


class Doubler(Filter):
    def process(self, buf, ctx):
        ctx.write(buf.payload * 2, buf.packet)


class SummingSink(Filter):
    """Reduction sink: the recovered run must neither lose a packet nor
    fold one in twice."""

    def init(self, ctx):
        self.total = 0
        self.count = 0

    def process(self, buf, ctx):
        self.total += buf.payload
        self.count += 1

    def finalize(self, ctx):
        ctx.write(("total", self.total, self.count), -2)


def make_specs(width: int, n: int = 10):
    # ByPacket pins src->mid routing so a fault aimed at mid copy c and
    # packet k deterministically fires (RoundRobin across two concurrent
    # producer copies would make the packet->copy mapping racy)
    return [
        FilterSpec(
            "src",
            CountingSource,
            width=width,
            out_policy=ByPacket(),
            params={"n": n},
        ),
        FilterSpec("mid", Doubler, width=width),
        FilterSpec("sink", SummingSink, width=1),
    ]


def options_for(engine: str, **overrides) -> EngineOptions:
    extra = {"timeout": PROC_TIMEOUT, "death_grace": 0.3} if engine == "process" else {}
    extra.update(overrides)
    return EngineOptions(engine=engine, **extra)


# ---------------------------------------------------------------------------
# the cross-engine fault matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["threaded", "process"])
@pytest.mark.parametrize("kind", ["exception", "crash"])
@pytest.mark.parametrize("stage", ["src", "mid", "sink"])
@pytest.mark.parametrize("width", [1, 2])
def test_injected_fault_heals(engine, kind, stage, width):
    copy = width - 1 if stage != "sink" else 0
    # source faults key on owned packet index; consumers on the routed
    # packet — packet 0 reaches copy 0, so pin the fault accordingly
    packet = copy if stage == "src" else 0
    target_copy = copy if stage == "src" else 0

    baseline = run_pipeline(make_specs(width), options_for(engine))
    assert baseline.payloads, "baseline produced no output"

    trace = Trace()
    faulted = run_pipeline(
        make_specs(width),
        options_for(
            engine,
            trace=trace,
            retry=FAST_RETRY,
            faults=[
                FaultSpec(filter=stage, kind=kind, copy=target_copy, packet=packet)
            ],
        ),
    )
    assert _canonical_outputs(faulted.outputs) == _canonical_outputs(
        baseline.outputs
    )
    restarts = trace.restarts(stage)
    assert len(restarts) == 1
    assert restarts[0].phase == "restart"


@pytest.mark.parametrize("engine", ["threaded", "process"])
def test_stall_fault_completes(engine):
    baseline = run_pipeline(make_specs(2), options_for(engine))
    faulted = run_pipeline(
        make_specs(2),
        options_for(
            engine,
            retry=FAST_RETRY,
            faults=[FaultSpec(filter="mid", kind="stall", copy=0, packet=0,
                              stall_seconds=0.2)],
        ),
    )
    assert _canonical_outputs(faulted.outputs) == _canonical_outputs(
        baseline.outputs
    )


@pytest.mark.parametrize("engine", ["threaded", "process"])
def test_retry_budget_exhaustion_names_copy_and_attempts(engine):
    # times=5 >= budget 2: the copy can never succeed
    with pytest.raises(PipelineError, match=r"mid#0 .*after 2 attempt\(s\)"):
        run_pipeline(
            make_specs(1),
            options_for(
                engine,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.01, jitter=0.0),
                faults=[
                    FaultSpec(filter="mid", kind="exception", copy=0, packet=0,
                              times=5)
                ],
            ),
        )


@pytest.mark.parametrize("engine", ["threaded", "process"])
def test_fault_without_retry_fails_like_a_bug(engine):
    # a fault plan alone injects but gives no budget: first failure final
    with pytest.raises(PipelineError, match="mid#0"):
        run_pipeline(
            make_specs(1),
            options_for(
                engine,
                faults=[FaultSpec(filter="mid", kind="exception", copy=0, packet=0)],
            ),
        )


def test_per_filter_budget_override():
    policy = RetryPolicy(max_attempts=1, per_filter={"mid": 3},
                         backoff_base=0.01, jitter=0.0)
    baseline = run_pipeline(make_specs(1), EngineOptions())
    faulted = run_pipeline(
        make_specs(1),
        EngineOptions(
            retry=policy,
            faults=[FaultSpec(filter="mid", kind="exception", copy=0, packet=2)],
        ),
    )
    assert _canonical_outputs(faulted.outputs) == _canonical_outputs(
        baseline.outputs
    )


def test_drop_heartbeat_named_in_timeout_diagnostic():
    # a worker that stops heartbeating and then wedges: the wall-clock
    # timeout fires and the stalest-heartbeat diagnostic must name it
    with pytest.raises(PipelineError, match=r"stalest heartbeat: mid#0"):
        run_pipeline(
            make_specs(1, n=6),
            EngineOptions(
                engine="process",
                timeout=2.0,
                death_grace=0.3,
                faults=[
                    FaultSpec(filter="mid", kind="drop_heartbeat", copy=0, packet=0),
                    FaultSpec(filter="mid", kind="stall", copy=0, packet=2,
                              stall_seconds=30.0),
                ],
            ),
        )


# ---------------------------------------------------------------------------
# compiled applications recover too (generated filters, reduction objects)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["threaded", "process"])
def test_compiled_app_crash_recovery(engine):
    from repro.apps import make_knn_app
    from repro.cost.environment import cluster_config
    from repro.experiments.harness import _specs_for_version

    app = make_knn_app()
    workload = app.make_workload(num_packets=6, n_points=5_000)
    env = cluster_config(1)
    specs, _ = _specs_for_version(app, workload, "Decomp-Comp", env)
    baseline = run_pipeline(specs, options_for(engine))

    target = specs[len(specs) // 2].name
    trace = Trace()
    faulted = run_pipeline(
        specs,
        options_for(
            engine,
            trace=trace,
            retry=FAST_RETRY,
            faults=[FaultSpec(filter=target, kind="crash", copy=0, packet=0)],
        ),
    )
    assert _canonical_outputs(faulted.outputs) == _canonical_outputs(
        baseline.outputs
    )
    assert len(trace.restarts(target)) == 1
    # the recovered final answer still matches the sequential oracle
    assert workload.check(faulted.payloads[-1], workload.oracle())


# ---------------------------------------------------------------------------
# fault recovery on a resident worker pool
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["exception", "crash"])
@pytest.mark.parametrize("stage", ["src", "mid", "sink"])
def test_resident_pool_fault_heals_and_next_epoch_clean(kind, stage):
    """Crash/fail a resident worker mid-epoch N: respawn + checkpoint
    replay heal epoch N byte-identically, the respawned worker rejoins
    the pool (no refork), and epoch N+1 runs clean on it."""
    from repro.datacutter.engine import EngineSession

    baseline = run_pipeline(make_specs(2), options_for("process"))
    trace = Trace()
    opts = options_for(
        "process",
        trace=trace,
        retry=FAST_RETRY,
        faults=[FaultSpec(filter=stage, kind=kind, copy=0, packet=0)],
    )
    with EngineSession(opts) as session:
        faulted = session.run(make_specs(2))
        assert _canonical_outputs(faulted.outputs) == _canonical_outputs(
            baseline.outputs
        )
        assert len(trace.restarts(stage)) == 1
        engine = session._engine
        assert engine._forks == 1

        # epoch N+1: drop the fault plan — the next epoch order ships the
        # engine's *current* chaos config, so the healed pool runs clean
        engine.faults = None
        clean = session.run(make_specs(2))
        assert _canonical_outputs(clean.outputs) == _canonical_outputs(
            baseline.outputs
        )
        assert engine._forks == 1, "healed pool reforked instead of reusing"
        assert len(trace.restarts(stage)) == 1, "clean epoch restarted a worker"


def test_resident_pool_refires_fault_each_epoch_like_fork_per_run():
    """Parity: with the fault plan left in place, a resident pool behaves
    exactly like fork-per-run — the fault fires (and heals) every unit of
    work, not just the first."""
    from repro.datacutter.engine import EngineSession

    baseline = run_pipeline(make_specs(2), options_for("process"))
    trace = Trace()
    opts = options_for(
        "process",
        trace=trace,
        retry=FAST_RETRY,
        faults=[FaultSpec(filter="mid", kind="crash", copy=0, packet=0)],
    )
    with EngineSession(opts) as session:
        for expected_restarts in (1, 2):
            run = session.run(make_specs(2))
            assert _canonical_outputs(run.outputs) == _canonical_outputs(
                baseline.outputs
            )
            assert len(trace.restarts("mid")) == expected_restarts
        assert session._engine._forks == 1


# ---------------------------------------------------------------------------
# recovery building blocks
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(filter="x", kind="meteor")
    with pytest.raises(ValueError, match="times"):
        FaultSpec(filter="x", times=0)
    with pytest.raises(ValueError, match="stall_seconds"):
        FaultSpec(filter="x", stall_seconds=-1)


def test_fault_plan_coercion():
    assert FaultPlan.coerce(None) is None
    assert FaultPlan.coerce([]) is None
    assert FaultPlan.coerce(FaultPlan()) is None
    plan = FaultPlan.coerce([FaultSpec(filter="a")])
    assert isinstance(plan, FaultPlan) and len(plan.faults) == 1
    with pytest.raises(TypeError):
        FaultPlan.coerce(["not-a-fault"])
    # EngineOptions normalizes through the same path
    opts = EngineOptions(faults=[FaultSpec(filter="a")])
    assert isinstance(opts.faults, FaultPlan)
    assert EngineOptions().faults is None


def test_injector_attempt_gating():
    faults = [FaultSpec(filter="f", kind="crash", packet=3, times=1)]
    with pytest.raises(InjectedCrash):
        FaultInjector(faults, attempt=0).on_packet(3)
    # attempt 1 is past times=1: the restarted copy runs clean
    FaultInjector(faults, attempt=1).on_packet(3)
    # other packets never fire
    FaultInjector(faults, attempt=0).on_packet(2)


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(per_filter={"x": 0})
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3,
                         jitter=0.0)
    assert policy.backoff_for(1) == pytest.approx(0.1)
    assert policy.backoff_for(2) == pytest.approx(0.2)
    assert policy.backoff_for(3) == pytest.approx(0.3)  # capped
    assert policy.attempts_for("anything") == 3
    assert RetryPolicy(per_filter={"a": 7}).attempts_for("a") == 7


def test_checkpoint_roundtrip_and_param_exclusion():
    class Acc(Filter):
        pass

    class Ctx:
        params = {"big": "dataset"}

    acc, ctx = Acc(), Ctx()
    acc.total = 41
    acc._params = ctx.params  # identical object: excluded from snapshots
    state = snapshot_state(acc, ctx)
    assert state == {"total": 41}
    acc.total = 999
    restore_state(acc, clone_state(state), ctx)
    assert acc.total == 41
    restored = Acc()
    restore_state(restored, freeze_state(state), ctx)  # bytes path
    assert restored.total == 41
    assert snapshot_state(Acc(), ctx) is None  # stateless -> free restart


def test_custom_snapshot_protocol():
    class Custom(Filter):
        def __init__(self):
            self.vals = []

        def snapshot(self):
            return list(self.vals)

        def restore(self, state):
            self.vals = list(state)

    a = Custom()
    a.vals = [1, 2]
    state = snapshot_state(a, None)
    b = Custom()
    restore_state(b, state, None)
    assert b.vals == [1, 2]

    class NoRestore(Filter):
        def snapshot(self):
            return 1

    with pytest.raises(CheckpointError, match="restore"):
        restore_state(NoRestore(), snapshot_state(NoRestore(), None), None)


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------


def test_broadcast_puts_are_traced():
    trace = Trace()
    stream = LogicalStream(
        "b", n_producers=1, n_consumers=3, policy=Broadcast(), trace=trace
    )
    from repro.datacutter import Buffer

    for packet in range(4):
        stream.put(Buffer(payload=packet, packet=packet))
    puts = [q for q in trace.queue_samples if q.side == "put"]
    # one queue op per consumer copy per broadcast put
    assert len(puts) == 4 * 3


def test_generate_spans_only_for_owned_packets():
    trace = Trace()
    run_pipeline(make_specs(2, n=8), EngineOptions(trace=trace))
    spans = trace.spans_for("src", phase="generate")
    # 8 packets generated once each across the 2 copies — not 16
    assert len(spans) == 8
    for s in spans:
        assert s.packet % 2 == s.copy


def test_round_robin_resets_between_runs():
    class TagBySink(Filter):
        def process(self, buf, ctx):
            ctx.write((buf.packet, ctx.copy_index), buf.packet)

    def specs():
        return [
            FilterSpec("src", CountingSource, params={"n": 7}),
            # odd packet count against width 2: without reset() the cursor
            # would start run 2 where run 1 left off and flip every route
            FilterSpec("tag", TagBySink, width=2),
        ]

    shared = specs()
    shared[0].out_policy = RoundRobin()
    first = {p[0]: p[1] for p in run_pipeline(shared).payloads}
    second = {p[0]: p[1] for p in run_pipeline(shared).payloads}
    assert first == second


def test_stream_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        LogicalStream("s", capacity=0)
    with pytest.raises(ValueError, match="capacity"):
        LogicalStream("s", capacity=-1)
    unbounded = LogicalStream("s", capacity=None)
    assert unbounded._queues[0].maxsize == 0
    collector = CollectorStream("c")
    assert collector._queues[0].maxsize == 0  # explicit unbounded


def test_process_edge_capacity_validation():
    import multiprocessing

    from repro.datacutter.mp.channels import ProcessEdge

    mpctx = multiprocessing.get_context("fork")
    with pytest.raises(ValueError, match="capacity"):
        ProcessEdge(mpctx, "e", capacity=0)
    edge = ProcessEdge(mpctx, "e", capacity=None)
    assert edge is not None


def test_post_eos_deadline_fails_silent_worker():
    """A live worker that never reports done after end-of-stream must not
    spin the supervisor forever: the post-EOS deadline fails the run with
    a stalest-heartbeat diagnostic naming it."""
    import multiprocessing

    from repro.datacutter.mp.channels import ProcessEdge
    from repro.datacutter.mp.supervisor import Supervisor, WorkerHandle

    mpctx = multiprocessing.get_context("fork")
    collector = ProcessEdge(mpctx, "sink->out", n_producers=1, capacity=None)
    heartbeats = mpctx.Array("d", 1, lock=False)
    heartbeats[0] = time.monotonic()
    control = mpctx.Queue()
    proc = mpctx.Process(target=time.sleep, args=(60,), name="tarpit#0",
                         daemon=True)
    proc.start()
    # the stream ends (collector sees EOS) but the worker never says done
    collector.close_producer()
    supervisor = Supervisor(
        [WorkerHandle(process=proc, worker_id=0, label="tarpit#0")],
        control,
        collector,
        [collector],
        heartbeats,
        post_eos_timeout=0.5,
    )
    t0 = time.monotonic()
    with pytest.raises(
        PipelineError, match=r"never reported done.*tarpit#0.*stalest heartbeat"
    ):
        supervisor.supervise()
    assert time.monotonic() - t0 < 10  # failed fast, did not spin to join
    assert not proc.is_alive()  # teardown reaped the silent worker


def test_recovery_is_opt_in():
    """Default options keep the legacy zero-overhead path on both engines."""
    from repro.datacutter import ThreadedPipeline

    pipe = ThreadedPipeline(make_specs(1))
    assert pipe.retry is None and pipe.faults is None
    assert EngineOptions().retry is None and EngineOptions().faults is None
