"""Packet serialization tests (§5, Figure 4): instance-wise, field-wise,
ragged, packet fields, reductions — including a hypothesis round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.buffers import BatchBuilder, RecordBatch, pack, unpack
from repro.codegen.layout import ColumnSpec, PacketFieldSpec, PacketLayout


def scalar_col(name, group="instance", dtype=np.float64):
    return ColumnSpec(
        name=name, source=name, dtype=np.dtype(dtype), group=group
    )


def build(layout, rows, packet=3, packet_fields=None, reductions=None):
    builder = BatchBuilder(layout, packet=packet)
    for row in rows:
        builder.append(**row)
    builder.packet_fields = packet_fields or {}
    builder.reductions = reductions or {}
    return builder.build()


class TestRoundTrips:
    def test_instance_wise(self):
        layout = PacketLayout(columns=[scalar_col("x"), scalar_col("y")])
        batch = build(layout, [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}])
        out = unpack(pack(batch, layout), layout)
        assert out.count == 2 and out.packet == 3
        assert np.array_equal(out.columns["x"], [1.0, 3.0])
        assert np.array_equal(out.columns["y"], [2.0, 4.0])

    def test_field_wise(self):
        layout = PacketLayout(
            columns=[scalar_col("x", "fieldwise"), scalar_col("y", "fieldwise")]
        )
        batch = build(layout, [{"x": 1.0, "y": 2.0}])
        out = unpack(pack(batch, layout), layout)
        assert np.array_equal(out.columns["x"], [1.0])

    def test_mixed_groups(self):
        layout = PacketLayout(
            columns=[
                scalar_col("a", "instance"),
                scalar_col("b", "fieldwise"),
                scalar_col("c", "instance", np.int32),
            ]
        )
        rows = [{"a": float(i), "b": float(-i), "c": i} for i in range(5)]
        batch = build(layout, rows)
        out = unpack(pack(batch, layout), layout)
        assert np.array_equal(out.columns["c"], np.arange(5, dtype=np.int32))
        assert np.array_equal(out.columns["b"], -np.arange(5, dtype=float))

    def test_fixed_length_vector_column(self):
        layout = PacketLayout(
            columns=[
                ColumnSpec(
                    name="v",
                    source="v",
                    dtype=np.dtype(np.float64),
                    length=3,
                    group="instance",
                )
            ]
        )
        rows = [{"v": np.array([1.0, 2.0, 3.0])}, {"v": np.array([4.0, 5.0, 6.0])}]
        batch = build(layout, rows)
        out = unpack(pack(batch, layout), layout)
        assert out.columns["v"].shape == (2, 3)
        assert np.array_equal(out.columns["v"][1], [4.0, 5.0, 6.0])

    def test_ragged_column(self):
        layout = PacketLayout(
            columns=[
                ColumnSpec(
                    name="tris",
                    source="tris",
                    dtype=np.dtype(np.float64),
                    ragged=True,
                    group="fieldwise",
                )
            ]
        )
        rows = [
            {"tris": np.array([1.0, 2.0])},
            {"tris": np.zeros(0)},
            {"tris": np.array([3.0])},
        ]
        batch = build(layout, rows)
        out = unpack(pack(batch, layout), layout)
        assert np.array_equal(out.ragged_row("tris", 0), [1.0, 2.0])
        assert len(out.ragged_row("tris", 1)) == 0
        assert np.array_equal(out.ragged_row("tris", 2), [3.0])

    def test_packet_fields_scalar_and_array(self):
        layout = PacketLayout(
            packet_fields=[
                PacketFieldSpec("iso", "iso", np.dtype(np.float64)),
                PacketFieldSpec("tbl", "tbl", np.dtype(np.int64), array=True),
            ]
        )
        batch = build(
            layout,
            [],
            packet_fields={"iso": 0.75, "tbl": np.arange(4, dtype=np.int64)},
        )
        out = unpack(pack(batch, layout), layout)
        assert out.packet_fields["iso"] == 0.75
        assert np.array_equal(out.packet_fields["tbl"], np.arange(4))

    def test_reduction_state(self):
        layout = PacketLayout(reduction_roots=["local"])
        packed_state = {
            "depth": np.array([1.0, 2.0]),
            "color": np.array([0.5]),
        }
        batch = build(layout, [], reductions={"local": packed_state})
        out = unpack(pack(batch, layout), layout)
        assert np.array_equal(out.reductions["local"]["depth"], [1.0, 2.0])
        assert np.array_equal(out.reductions["local"]["color"], [0.5])

    def test_empty_batch(self):
        layout = PacketLayout(columns=[scalar_col("x")])
        batch = build(layout, [])
        out = unpack(pack(batch, layout), layout)
        assert out.count == 0
        assert len(out.columns["x"]) == 0

    def test_magic_checked(self):
        layout = PacketLayout(columns=[scalar_col("x")])
        with pytest.raises(ValueError, match="not a RecordBatch"):
            unpack(b"garbage-bytes-here!!", layout)

    def test_nbytes_accounting(self):
        layout = PacketLayout(columns=[scalar_col("x")])
        batch = build(layout, [{"x": float(i)} for i in range(10)])
        assert batch.nbytes == 80


@given(
    st.integers(0, 40),
    st.sampled_from(["instance", "fieldwise"]),
    st.sampled_from(["instance", "fieldwise"]),
    st.randoms(use_true_random=False),
)
@settings(max_examples=80, deadline=None)
def test_pack_unpack_roundtrip_property(count, g1, g2, rng):
    layout = PacketLayout(
        columns=[
            scalar_col("a", g1),
            scalar_col("b", g2, np.int64),
            ColumnSpec(
                name="r",
                source="r",
                dtype=np.dtype(np.float32),
                ragged=True,
                group="fieldwise",
            ),
        ]
    )
    rows = [
        {
            "a": rng.uniform(-1e6, 1e6),
            "b": rng.randint(-(2**40), 2**40),
            "r": np.array(
                [rng.uniform(0, 1) for _ in range(rng.randint(0, 5))],
                dtype=np.float32,
            ),
        }
        for _ in range(count)
    ]
    batch = build(layout, rows)
    out = unpack(pack(batch, layout), layout)
    assert out.count == count
    assert np.array_equal(out.columns["a"], batch.columns["a"])
    assert np.array_equal(out.columns["b"], batch.columns["b"])
    for r in range(count):
        assert np.array_equal(out.ragged_row("r", r), batch.ragged_row("r", r))
