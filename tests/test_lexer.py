"""Lexer unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("foo class foreach PipelinedLoop Rectdomain") == [
            TokKind.IDENT,
            TokKind.KW_CLASS,
            TokKind.KW_FOREACH,
            TokKind.KW_PIPELINED,
            TokKind.KW_RECTDOMAIN,
        ]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("classy foreachx") == [TokKind.IDENT, TokKind.IDENT]

    def test_runtime_define_keyword(self):
        assert kinds("runtime_define int n;") == [
            TokKind.KW_RUNTIME_DEFINE,
            TokKind.KW_INT,
            TokKind.IDENT,
            TokKind.SEMI,
        ]

    def test_integer_literals(self):
        toks = tokenize("0 42 123456")
        assert [t.kind for t in toks[:-1]] == [TokKind.INT] * 3
        assert [t.text for t in toks[:-1]] == ["0", "42", "123456"]

    def test_float_literals(self):
        assert kinds("3.14 1e10 2.5e-3 7E+2") == [TokKind.FLOAT] * 4

    def test_int_followed_by_dot_method(self):
        # '5.x' must not parse as a float
        assert kinds("v[5].x") == [
            TokKind.IDENT,
            TokKind.LBRACKET,
            TokKind.INT,
            TokKind.RBRACKET,
            TokKind.DOT,
            TokKind.IDENT,
        ]

    def test_string_literal_with_escapes(self):
        toks = tokenize(r'"a\nb\t\"c\\"')
        assert toks[0].kind is TokKind.STRING
        assert toks[0].text == 'a\nb\t"c\\'

    def test_operators_two_char_before_one_char(self):
        assert kinds("<= < == = != ! &&")[:6] == [
            TokKind.LE,
            TokKind.LT,
            TokKind.EQ,
            TokKind.ASSIGN,
            TokKind.NE,
            TokKind.NOT,
        ]

    def test_compound_assignment_tokens(self):
        assert kinds("+= -= *= /=") == [
            TokKind.PLUS_ASSIGN,
            TokKind.MINUS_ASSIGN,
            TokKind.STAR_ASSIGN,
            TokKind.SLASH_ASSIGN,
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment with , ; tokens\nb") == [
            TokKind.IDENT,
            TokKind.IDENT,
        ]

    def test_block_comment(self):
        assert kinds("a /* span\nmultiple\nlines */ b") == [
            TokKind.IDENT,
            TokKind.IDENT,
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never closed")


class TestErrorsAndSpans:
    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError, match="newline in string"):
            tokenize('"ab\ncd"')

    def test_spans_track_lines_and_columns(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].span.line, toks[0].span.col) == (1, 1)
        assert (toks[1].span.line, toks[1].span.col) == (2, 3)

    def test_span_end_column(self):
        tok = tokenize("hello")[0]
        assert tok.span.end_col == 6


@given(
    st.lists(
        st.one_of(
            st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
            st.integers(min_value=0, max_value=10**9).map(str),
            st.sampled_from(["+", "-", "*", "/", "(", ")", "{", "}", ";", "<=", "=="]),
        ),
        min_size=0,
        max_size=40,
    )
)
def test_lexer_roundtrip_token_texts(parts):
    """Lexing space-joined tokens reproduces exactly those token texts."""
    source = " ".join(parts)
    toks = tokenize(source)
    assert [t.text for t in toks[:-1]] == parts
