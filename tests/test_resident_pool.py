"""Resident process-engine worker pool: fork-once lifecycle, work epochs,
refork fallbacks, cross-epoch state hygiene, and close semantics.

The pool contract under test: an :class:`EngineSession` on the process
engine forks its workers once, on the first run, and every later run is a
*work epoch* shipped to the same processes over per-worker order
channels — so worker PIDs are stable across runs, shared-memory segments
persist and are reused across epochs, and nothing (routing policy state,
sentinel tallies, stream stats) bleeds from one unit of work into the
next.  ``close()`` is the single real teardown, and a close racing an
in-flight run fails that run with a structured error instead of hanging
or leaking processes.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.apps import make_knn_service, make_vmscope_service
from repro.datacutter import (
    EngineOptions,
    FaultSpec,
    Filter,
    FilterSpec,
    PipelineError,
    RetryPolicy,
    SourceFilter,
    Trace,
    run_pipeline,
)
from repro.datacutter.engine import EngineSession
from repro.serve import LocalClient, PipelineServer, ServerOptions, oneshot
from repro.serve.session import SessionPool

PROC_TIMEOUT = 120.0
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0)


def proc_options(**overrides) -> EngineOptions:
    merged = {"engine": "process", "timeout": PROC_TIMEOUT, "death_grace": 0.3}
    merged.update(overrides)
    return EngineOptions(**merged)


def _no_orphans():
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class PidSource(SourceFilter):
    """Yields this worker process's PID once per packet."""

    def generate(self, ctx):
        for _ in range(ctx.params.get("n", 4)):
            yield os.getpid()


class PidTag(Filter):
    def process(self, buf, ctx):
        ctx.write((buf.payload, os.getpid()), buf.packet)


def pid_specs(width: int = 2, n: int = 4):
    return [
        FilterSpec("src", PidSource, width=width, params={"n": n}),
        FilterSpec("tag", PidTag, width=1),
    ]


def _pids(run) -> set:
    pids = set()
    for src_pid, tag_pid in run.payloads:
        pids.add(src_pid)
        pids.add(tag_pid)
    return pids


# ---------------------------------------------------------------------------
# fork-once lifecycle
# ---------------------------------------------------------------------------


def test_session_forks_once_and_reuses_workers():
    """Three runs on a warm session: identical worker PIDs, one fork."""
    with EngineSession(proc_options()) as session:
        pid_sets = [_pids(session.run(pid_specs())) for _ in range(3)]
        engine = session._engine
        assert engine._forks == 1
        assert engine._reforks == 0
        assert engine._epoch == 3
    assert pid_sets[0] == pid_sets[1] == pid_sets[2]
    assert len(pid_sets[0]) == 3  # 2 source copies + 1 tag copy
    assert os.getpid() not in pid_sets[0]
    _no_orphans()


def test_resident_false_forks_per_run():
    """EngineOptions(resident=False): the benchmark's fork-per-run knob."""
    with EngineSession(proc_options(resident=False)) as session:
        first = _pids(session.run(pid_specs()))
        second = _pids(session.run(pid_specs()))
        assert session._engine._forks == 2
    assert first != second  # fresh processes each run
    _no_orphans()


def test_oneshot_run_pipeline_still_tears_down():
    """Without a session, each run forks and joins its own pool."""
    run = run_pipeline(pid_specs(), proc_options())
    assert len(_pids(run)) == 3
    _no_orphans()


def test_refork_on_pipeline_shape_change():
    """A different (name, width) layout cannot ride the order channels:
    the pool reforks transparently and the run still succeeds."""
    with EngineSession(proc_options()) as session:
        narrow = _pids(session.run(pid_specs(width=1)))
        wide = _pids(session.run(pid_specs(width=2)))
        engine = session._engine
        assert engine._forks == 2
        assert engine._reforks == 1
    assert len(narrow) == 2
    assert len(wide) == 3
    _no_orphans()


# ---------------------------------------------------------------------------
# cross-epoch state hygiene (satellite: warm-reuse state bleed)
# ---------------------------------------------------------------------------


class CountSource(SourceFilter):
    def generate(self, ctx):
        for i in range(ctx.params.get("n", 5)):
            yield i


class CopyTagger(Filter):
    """Payloads record which transparent copy handled them — any routing
    policy state bleeding across epochs changes the assignment."""

    def process(self, buf, ctx):
        ctx.write((ctx.copy_index, buf.payload), buf.packet)


class SortedGather(Filter):
    def init(self, ctx):
        self.seen = []

    def process(self, buf, ctx):
        self.seen.append(buf.payload)

    def finalize(self, ctx):
        ctx.write(tuple(sorted(self.seen)), -2)


def bleed_specs():
    # n=5 is deliberately odd: a round-robin policy that is *not* reset
    # between epochs would start epoch 2 pointing at the other consumer,
    # flipping every (copy, payload) pair
    return [
        FilterSpec("src", CountSource, width=1, params={"n": 5}),
        FilterSpec("mid", CopyTagger, width=2),
        FilterSpec("sink", SortedGather, width=1),
    ]


def test_two_runs_byte_identical_on_resident_pool():
    cold = run_pipeline(bleed_specs(), proc_options()).payloads
    with EngineSession(proc_options()) as session:
        warm1 = session.run(bleed_specs()).payloads
        warm2 = session.run(bleed_specs()).payloads
        assert session._engine._forks == 1
    assert warm1 == warm2 == cold
    _no_orphans()


class ArraySource(SourceFilter):
    def generate(self, ctx):
        for i in range(ctx.params.get("n", 2)):
            yield np.full(1024, i, dtype=np.float64)


class ArrayRelay(Filter):
    def process(self, buf, ctx):
        ctx.write(buf.payload * 2.0, buf.packet)


class ArraySum(Filter):
    def init(self, ctx):
        self.total = 0.0

    def process(self, buf, ctx):
        self.total += float(buf.payload.sum())

    def finalize(self, ctx):
        ctx.write(self.total, -2)


def shm_specs():
    return [
        FilterSpec("src", ArraySource, width=1, params={"n": 3}),
        FilterSpec("mid", ArrayRelay, width=1),
        FilterSpec("sink", ArraySum, width=1),
    ]


def test_shm_segments_persist_and_reuse_across_epochs():
    """Resident workers keep their ShmPool warm between epochs: segments
    are still pooled at epoch end (not unlinked) and the next epoch's
    encodes hit them; the per-run trace note carries the counters."""
    trace = Trace()
    opts = proc_options(trace=trace, shm_min_bytes=1024)
    with EngineSession(opts) as session:
        session.run(shm_specs())
        first = dict(trace.meta["shm_pool"])
        assert first["pooled_bytes"] > 0  # segments survive the epoch
        assert trace.meta["worker_pool"]["resident"] is True
        session.run(shm_specs())
        second = dict(trace.meta["shm_pool"])
        assert second["hits"] > 0  # epoch 2 reused pooled segments
        assert trace.meta["worker_pool"]["epoch"] == 2
        assert trace.meta["worker_pool"]["forks"] == 1
    _no_orphans()


# ---------------------------------------------------------------------------
# close semantics (satellite: close racing an in-flight run)
# ---------------------------------------------------------------------------


class StalledFilter(Filter):
    def process(self, buf, ctx):
        time.sleep(30.0)
        ctx.write(buf.payload, buf.packet)


def stalled_specs():
    return [
        FilterSpec("src", CountSource, width=1, params={"n": 2}),
        FilterSpec("stall", StalledFilter, width=1),
    ]


def test_close_racing_inflight_run_fails_structured():
    session = EngineSession(proc_options())
    outcome: list = []

    def runner():
        try:
            session.run(stalled_specs())
            outcome.append(("ok", None))
        except BaseException as err:  # noqa: BLE001 - recorded for asserts
            outcome.append(("raised", err))

    t = threading.Thread(target=runner, daemon=True)
    t.start()
    time.sleep(1.0)  # let the workers fork and wedge inside the stall
    t_close = time.monotonic()
    session.close()
    close_seconds = time.monotonic() - t_close
    t.join(timeout=30)
    assert not t.is_alive(), "run() hung after close()"
    assert close_seconds < 15.0, "close() waited out the stalled filter"

    status, err = outcome[0]
    assert status == "raised"
    assert isinstance(err, PipelineError)
    assert "closed while a unit of work was in flight" in str(err)

    with pytest.raises(RuntimeError, match="closed"):
        session.run(stalled_specs())
    _no_orphans()


def test_session_pool_close_then_execute_raises():
    pool = SessionPool(proc_options())
    pool.close()
    service = make_knn_service(n_points=500, num_packets=2)
    with pytest.raises(RuntimeError, match="closed"):
        pool.execute(service.plan({"x": 0.5, "y": 0.5, "z": 0.5}))
    _no_orphans()


def test_close_is_idempotent():
    with EngineSession(proc_options()) as session:
        session.run(pid_specs())
        session.close()
        session.close()
    _no_orphans()


# ---------------------------------------------------------------------------
# serve bursts on the resident pool (acceptance: byte-identical, with and
# without an injected mid-epoch crash)
# ---------------------------------------------------------------------------

KNN_KW = dict(n_points=2_000, num_packets=3)
VM_KW = dict(image_w=96, image_h=96, tile=32, num_packets=3)


def _mixed_requests(n: int) -> list:
    requests = []
    for i in range(n):
        if i % 2 == 0:
            x = 0.1 + (i % 5) * 0.05
            requests.append(("knn", {"x": x, "y": x, "z": x}))
        else:
            requests.append(("vmscope", {"query": "large" if i % 3 else "small"}))
    return requests


def _burst_matches_oneshot(engine_options, n_requests: int) -> None:
    services = [make_knn_service(**KNN_KW), make_vmscope_service(**VM_KW)]
    by_kind = {s.name: s for s in services}
    requests = _mixed_requests(n_requests)
    baselines = {}
    for kind, body in requests:
        key = (kind, tuple(sorted(body.items())))
        if key not in baselines:
            baselines[key] = oneshot(by_kind[kind].plan(body))
    opts = ServerOptions(
        engine_options=engine_options,
        max_batch=16,
        batch_deadline=0.02,
        max_queue=2 * n_requests,
    )
    with PipelineServer(services, opts) as server:
        client = LocalClient(server, timeout=600.0)
        responses = client.burst(requests)
    assert all(r.ok for r in responses), [
        (r.status, r.error) for r in responses if not r.ok
    ][:1]
    for (kind, body), response in zip(requests, responses):
        expect = baselines[(kind, tuple(sorted(body.items())))]
        assert response.value.tobytes() == expect.tobytes()
    _no_orphans()


def test_serve_burst_on_resident_pool_matches_oneshot():
    _burst_matches_oneshot(proc_options(), 30)


def test_serve_burst_heals_injected_mid_epoch_crash():
    """A worker crash mid-epoch on the resident pool is healed in place
    (respawn + checkpoint replay) — every response in the burst still
    byte-matches the one-shot baseline."""
    _burst_matches_oneshot(
        proc_options(
            retry=FAST_RETRY,
            faults=[FaultSpec(filter="gen_unit1", kind="crash", copy=0, packet=0)],
        ),
        12,
    )
