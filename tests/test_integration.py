"""End-to-end integration: compile each application from dialect source,
run Default and DP-decomposed pipelines on the threaded runtime, and
compare against the sequential oracle bit-for-bit."""

import pytest

from repro.apps import (
    make_active_pixels_app,
    make_knn_app,
    make_vmscope_app,
    make_zbuffer_app,
)
from repro.cost import cluster_config
from repro.datacutter import run_pipeline
from repro.experiments.harness import _specs_for_version


def run_version(app, workload, version, env=None):
    specs, result = _specs_for_version(
        app, workload, version, env or cluster_config(1)
    )
    run = run_pipeline(specs)
    finals = run.payloads[-1]
    expected = workload.oracle()
    assert workload.check(finals, expected), f"{app.name}/{version} wrong output"
    return run, result


@pytest.fixture(scope="module")
def zbuffer_app():
    app = make_zbuffer_app(width=48, height=48)
    return app, app.make_workload(dataset="tiny", num_packets=4)


@pytest.fixture(scope="module")
def apixels_app():
    app = make_active_pixels_app(width=48, height=48)
    return app, app.make_workload(dataset="tiny", num_packets=4)


@pytest.fixture(scope="module")
def knn_app():
    app = make_knn_app(k=5)
    return app, app.make_workload(n_points=4000, num_packets=5)


@pytest.fixture(scope="module")
def vm_app():
    app = make_vmscope_app(image_w=256, image_h=256, tile=64)
    return app, app.make_workload(query="large", num_packets=4)


class TestCompiledPipelines:
    def test_zbuffer_decomp(self, zbuffer_app):
        run, result = run_version(*zbuffer_app, "Decomp-Comp")
        assert result.plan is not None

    def test_zbuffer_default(self, zbuffer_app):
        run_version(*zbuffer_app, "Default")

    def test_zbuffer_default_ships_more(self, zbuffer_app):
        run_dec, _ = run_version(*zbuffer_app, "Decomp-Comp")
        run_def, _ = run_version(*zbuffer_app, "Default")
        link1 = lambda run: sum(
            v for k, v in run.stream_bytes.items() if "unit1->" in k
        )
        assert link1(run_def) > link1(run_dec)

    def test_apixels_decomp(self, apixels_app):
        run_version(*apixels_app, "Decomp-Comp")

    def test_apixels_default(self, apixels_app):
        run_version(*apixels_app, "Default")

    def test_knn_all_versions(self, knn_app):
        for version in ("Default", "Decomp-Comp", "Decomp-Manual"):
            run_version(*knn_app, version)

    def test_vmscope_all_versions(self, vm_app):
        for version in ("Default", "Decomp-Comp", "Decomp-Manual"):
            run_version(*vm_app, version)

    def test_vmscope_small_query(self):
        app = make_vmscope_app(image_w=256, image_h=256, tile=64)
        workload = app.make_workload(query="small", num_packets=4)
        run_version(app, workload, "Decomp-Comp")

    def test_decomp_correct_on_wider_env(self, knn_app):
        """Compiling against 4-4-1 still runs correctly."""
        run_version(*knn_app, "Decomp-Comp", env=cluster_config(4))

    def test_generated_sources_are_inspectable(self, zbuffer_app):
        app, workload = zbuffer_app
        specs, result = _specs_for_version(
            app, workload, "Decomp-Comp", cluster_config(1)
        )
        sources = [gf.source for gf in result.pipeline.filters]
        assert len(sources) == 3
        assert any("def generate" in s for s in sources)
        assert any("_unpack" in s or "relay" in s or "view" in s for s in sources)

    def test_report_renders(self, zbuffer_app):
        app, workload = zbuffer_app
        _, result = _specs_for_version(
            app, workload, "Decomp-Comp", cluster_config(1)
        )
        report = result.report()
        assert "plan:" in report and "volumes" in report


class TestPacketCountInvariance:
    @pytest.mark.parametrize("num_packets", [1, 3, 8])
    def test_knn_result_independent_of_packetization(self, num_packets):
        app = make_knn_app(k=4)
        workload = app.make_workload(n_points=3000, num_packets=num_packets)
        run_version(app, workload, "Decomp-Comp")

    @pytest.mark.parametrize("num_packets", [1, 4])
    def test_zbuffer_result_independent_of_packetization(self, num_packets):
        app = make_zbuffer_app(width=32, height=32)
        workload = app.make_workload(dataset="tiny", num_packets=num_packets)
        run_version(app, workload, "Decomp-Comp")


class TestTransparentCopies:
    def test_compiled_pipeline_with_copies(self):
        """Width >1 on the compute stage must not change the answer."""
        app = make_knn_app(k=3)
        workload = app.make_workload(n_points=3000, num_packets=6)
        specs, _ = _specs_for_version(
            app, workload, "Decomp-Comp", cluster_config(1)
        )
        widened = []
        for spec in specs:
            width = 2 if 0 < spec.placement < 2 else 1
            spec.width = width
            widened.append(spec)
        run = run_pipeline(widened)
        finals = run.payloads[-1]
        assert workload.check(finals, workload.oracle())
