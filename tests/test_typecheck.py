"""Semantic-analysis tests: typing, name resolution, dialect rules (§3)."""

import pytest

from repro.lang import check, parse
from repro.lang.errors import SemanticError
from repro.lang.types import BOOLEAN, DOUBLE, RectdomainType

PRELUDE = """
native Rectdomain<1, E> read();
class E { double v; double w; }
class Acc implements Reducinterface {
    double[] total;
    void add(double x) { return; }
    void merge(Acc other) { return; }
}
"""


def check_body(body: str, params: str = ""):
    return check(parse(PRELUDE + "class M { void f(%s) { %s } }" % (params, body)))


class TestTyping:
    def test_numeric_promotion(self):
        checked = check_body("int i = 1; double d = i + 2.5;")
        assert checked is not None

    def test_narrowing_rejected(self):
        with pytest.raises(SemanticError, match="cannot initialize"):
            check_body("int i = 2.5;")

    def test_condition_must_be_boolean(self):
        with pytest.raises(SemanticError, match="must be boolean"):
            check_body("if (1) { int x = 0; }")

    def test_modulo_requires_integral(self):
        with pytest.raises(SemanticError, match="integral"):
            check_body("double d = 1.5 % 2.0;")

    def test_array_indexing_and_length(self):
        checked = check_body("double[] xs = new double[4]; double v = xs[0]; int n = xs.length;")
        assert checked is not None

    def test_index_must_be_integral(self):
        with pytest.raises(SemanticError, match="integral"):
            check_body("double[] xs = new double[4]; double v = xs[1.5];")

    def test_field_access_and_unknown_field(self):
        check_body("E e = new E(); double v = e.v;")
        with pytest.raises(SemanticError, match="no field 'q'"):
            check_body("E e = new E(); double v = e.q;")

    def test_undefined_name(self):
        with pytest.raises(SemanticError, match="undefined name"):
            check_body("int x = missing;")

    def test_duplicate_variable_in_scope(self):
        with pytest.raises(SemanticError, match="duplicate variable"):
            check_body("int x = 1; int x = 2;")

    def test_shadowing_in_inner_scope_allowed(self):
        check_body("int x = 1; if (x > 0) { int y = 2; } int y = 3;")

    def test_return_type_checked(self):
        with pytest.raises(SemanticError, match="cannot return"):
            check(parse(PRELUDE + "class M { int f() { return 1.5; } }"))

    def test_ternary_arms_promote(self):
        check_body("double d = true ? 1 : 2.5;")

    def test_unknown_class_rejected(self):
        with pytest.raises(SemanticError, match="unknown type"):
            check_body("Missing m = null;")

    def test_runtime_define_must_be_integral(self):
        with pytest.raises(SemanticError, match="integral"):
            check_body("runtime_define double d;")

    def test_runtime_params_collected(self):
        checked = check_body("runtime_define int n;")
        assert [s.name for s in checked.runtime_params] == ["n"]


class TestCallsAndMethods:
    def test_native_call_resolved(self):
        checked = check_body("Rectdomain<1, E> d = read();")
        assert checked is not None

    def test_native_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 0 argument"):
            check_body("Rectdomain<1, E> d = read(3);")

    def test_method_call_on_object(self):
        check_body("Acc a = new Acc(); a.add(1.0);")

    def test_method_argument_type_checked(self):
        with pytest.raises(SemanticError, match="argument 1"):
            check_body("Acc a = new Acc(); a.add(a);")

    def test_unknown_method(self):
        with pytest.raises(SemanticError, match="no method"):
            check_body("Acc a = new Acc(); a.nope();")

    def test_domain_size(self):
        check_body("int n = d.size();", params="Rectdomain<1, E> d")

    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check_body("int x = nothing();")


class TestDialectRules:
    def test_foreach_requires_rectdomain(self):
        with pytest.raises(SemanticError, match="must iterate a Rectdomain"):
            check_body("double[] xs = new double[3]; foreach (x in xs) { }")

    def test_foreach_element_typed(self):
        checked = check_body(
            "foreach (e in d) { double v = e.v; }", params="Rectdomain<1, E> d"
        )
        program = checked.program
        meth = program.find_method("f")
        loop = meth.body.body[0]
        assert loop.var_symbol.type.name == "E"

    def test_pipelined_loop_var_is_packet(self):
        checked = check_body(
            "PipelinedLoop (p in d) { foreach (e in p) { double v = e.v; } }",
            params="Rectdomain<1, E> d",
        )
        loop = checked.pipelined_loops()[0][1]
        assert isinstance(loop.var_symbol.type, RectdomainType)

    def test_pipelined_inside_foreach_rejected(self):
        with pytest.raises(SemanticError, match="not be nested"):
            check_body(
                "foreach (e in d) { PipelinedLoop (p in d) { } }",
                params="Rectdomain<1, E> d",
            )

    def test_reduction_assignment_inside_foreach_rejected(self):
        with pytest.raises(SemanticError, match="reduction variable"):
            check_body(
                "Acc a = new Acc(); foreach (e in d) { a = new Acc(); }",
                params="Rectdomain<1, E> d",
            )

    def test_reduction_read_inside_foreach_rejected(self):
        with pytest.raises(SemanticError, match="method-call receiver"):
            check_body(
                "Acc a = new Acc(); Acc b = new Acc(); "
                "foreach (e in d) { b.merge(a); }",
                params="Rectdomain<1, E> d",
            )

    def test_reduction_update_inside_foreach_allowed(self):
        check_body(
            "Acc a = new Acc(); foreach (e in d) { a.add(e.v); }",
            params="Rectdomain<1, E> d",
        )

    def test_reduction_usable_outside_foreach(self):
        check_body(
            "Acc a = new Acc(); Acc b = new Acc(); b.merge(a);",
        )

    def test_unknown_interface_rejected(self):
        with pytest.raises(SemanticError, match="unknown interface"):
            check(parse("class A implements Serializable { }"))

    def test_expression_types_annotated(self):
        checked = check_body("int i = 1; double d = i + 2.5; boolean b = d < 3.0;")
        meth = checked.program.find_method("f")
        decls = meth.body.body
        assert decls[1].init.type == DOUBLE
        assert decls[2].init.type == BOOLEAN
