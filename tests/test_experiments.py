"""Experiment-harness tests: timing wrappers, measurement aggregation,
calibration, and simulation of measured runs."""

import pytest

from repro.apps import make_knn_app
from repro.cost import cluster_config
from repro.datacutter import Filter, FilterSpec, SourceFilter, run_pipeline
from repro.experiments import (
    TimeAccumulator,
    calibrate_net_scale,
    format_results,
    measure_version,
    run_experiment,
    simulate_measured,
    timed_specs,
)
from repro.experiments.harness import VersionTimes


class _Src(SourceFilter):
    def generate(self, ctx):
        for k in range(4):
            yield float(k)


class _Work(Filter):
    def process(self, buf, ctx):
        total = sum(i * 0.5 for i in range(2000))
        ctx.write(buf.payload + total * 0, buf.packet)


class TestTimingWrappers:
    def test_accumulator_thread_safety_and_totals(self):
        acc = TimeAccumulator()
        acc.add("f", 0, 0.5)
        acc.add("f", 0, 0.25)
        acc.add("f", 1, 1.0)
        assert acc.total("f") == pytest.approx(1.75)
        assert acc.per_packet("f", 0) == pytest.approx(0.75)

    def test_timed_specs_record_per_packet(self):
        specs = [
            FilterSpec("src", _Src),
            FilterSpec("work", _Work, placement=1),
        ]
        acc = TimeAccumulator()
        run_pipeline(timed_specs(specs, acc))
        assert set(acc.seconds["work"].keys()) >= {0, 1, 2, 3}
        assert all(t >= 0 for t in acc.seconds["work"].values())

    def test_timed_specs_preserve_results(self):
        specs = [
            FilterSpec("src", _Src),
            FilterSpec("work", _Work, placement=1),
        ]
        plain = run_pipeline(specs).payloads
        acc = TimeAccumulator()
        timed = run_pipeline(timed_specs(specs, acc)).payloads
        assert sorted(plain) == sorted(timed)


@pytest.fixture(scope="module")
def knn_measured():
    app = make_knn_app(k=3)
    workload = app.make_workload(n_points=3000, num_packets=5)
    return app, workload, measure_version(app, workload, "Decomp-Comp")


class TestMeasurement:
    def test_measured_run_shape(self, knn_measured):
        _app, workload, measured = knn_measured
        assert measured.correct
        assert measured.num_packets == 5
        assert len(measured.stage_seconds) == 3
        assert len(measured.link_bytes) == 2
        assert measured.modeled_packet_seconds is not None

    def test_stage_means_positive_where_work_happens(self, knn_measured):
        _app, _wl, measured = knn_measured
        assert measured.measured_packet_seconds() > 0

    def test_calibration_at_least_one(self, knn_measured):
        _app, _wl, measured = knn_measured
        assert calibrate_net_scale(measured) >= 1.0

    def test_simulation_of_measured_run(self, knn_measured):
        _app, _wl, measured = knn_measured
        env1 = cluster_config(1)
        env4 = cluster_config(4)
        scale = calibrate_net_scale(measured)
        t1 = simulate_measured(measured, env1, scale).makespan
        t4 = simulate_measured(measured, env4, scale).makespan
        assert t4 <= t1

    def test_manual_version_measured(self):
        app = make_knn_app(k=3)
        workload = app.make_workload(n_points=2000, num_packets=4)
        measured = measure_version(app, workload, "Decomp-Manual")
        assert measured.correct

    def test_unknown_version_rejected(self):
        app = make_knn_app(k=3)
        workload = app.make_workload(n_points=1000, num_packets=2)
        with pytest.raises(ValueError, match="unknown version"):
            measure_version(app, workload, "Nonsense")


class TestRunExperiment:
    def test_full_experiment_and_formatting(self):
        app = make_knn_app(k=3)
        workload = app.make_workload(n_points=3000, num_packets=5)
        results = run_experiment(
            app,
            workload,
            ["Default", "Decomp-Comp"],
            configs={"1-1-1": cluster_config(1), "2-2-1": cluster_config(2)},
        )
        assert set(results) == {"Default", "Decomp-Comp"}
        for vt in results.values():
            assert vt.correct
            assert set(vt.times) == {"1-1-1", "2-2-1"}
        table = format_results("test", results, ["1-1-1", "2-2-1"])
        assert "Decomp-Comp" in table and "1-1-1" in table

    def test_version_times_speedup(self):
        vt = VersionTimes("x", times={"a": 2.0, "b": 1.0})
        assert vt.speedup("a", "b") == 2.0
