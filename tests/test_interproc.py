"""Interprocedural analysis tests (§4.2): renaming, context sensitivity,
intrinsic summaries, recursion fallback."""

import pytest

from repro.analysis import GenConsAnalyzer
from repro.lang import Intrinsic, IntrinsicRegistry, check, parse
from repro.lang.types import DOUBLE, ArrayType


def analyze(source: str, registry=None, method="f"):
    checked = check(parse(source), registry)
    meth = checked.program.find_method(method)
    analyzer = GenConsAnalyzer(checked)
    return analyzer.analyze(list(meth.body.body)), checked


def names(ps):
    return {repr(p) for p in ps}


class TestDialectMethods:
    def test_formal_to_actual_renaming(self):
        facts, _ = analyze(
            """
            class H { double twice(double x) { return x + x; } }
            class M { void f(double q) { double r = twice(q); } }
            """
        )
        assert "q" in names(facts.cons)

    def test_receiver_field_renaming(self):
        facts, _ = analyze(
            """
            class Box {
                double v;
                double get() { return v; }
                void set(double x) { v = x; }
            }
            class M {
                void f(Box b) {
                    b.set(1.0);
                    double r = b.get();
                }
            }
            """
        )
        # set definitely writes b.v; get's read is satisfied locally
        assert "b.v" in names(facts.gen)
        assert "b.v" not in names(facts.cons)

    def test_context_sensitive_two_call_sites(self):
        facts, _ = analyze(
            """
            class H { double pick(E e) { return e.v; } }
            class E { double v; }
            class M {
                void f(E e1, E e2) {
                    double a = pick(e1);
                    double b = pick(e2);
                }
            }
            """
        )
        assert {"e1.v", "e2.v"} <= names(facts.cons)

    def test_array_section_substitution(self):
        facts, _ = analyze(
            """
            class H {
                double at(double[] a, int i) { return a[i]; }
            }
            class M {
                void f(double[] xs, int k) { double r = at(xs, k); }
            }
            """
        )
        assert any(n.startswith("xs[") for n in names(facts.cons))

    def test_recursion_degrades_conservatively(self):
        facts, _ = analyze(
            """
            class H {
                double rec(double x) { return rec(x - 1.0); }
            }
            class M { void f(double q) { double r = rec(q); } }
            """
        )
        assert "q" in names(facts.cons)

    def test_unqualified_call_touching_fields_rejected(self):
        from repro.lang.errors import AnalysisError

        with pytest.raises(AnalysisError, match="without a receiver"):
            analyze(
                """
                class H { double state; double bump() { state = state + 1.0; return state; } }
                class M { void f() { double r = bump(); } }
                """
            )


class TestIntrinsicSummaries:
    def make_registry(self):
        return IntrinsicRegistry(
            [
                Intrinsic(
                    "extract",
                    (ArrayType(DOUBLE), DOUBLE),
                    ArrayType(DOUBLE),
                    fn=lambda v, s: v,
                    reads=("vals", "iso"),
                    writes=("return",),
                ),
                Intrinsic(
                    "fill",
                    (ArrayType(DOUBLE),),
                    None,
                    fn=lambda out: None,
                    reads=(),
                    writes=("out",),
                ),
            ]
        )

    def test_summary_reads_renamed(self):
        source = """
        native double[] extract(double[] vals, double iso);
        class E { double[] data; }
        class M { void f(E e, double iso) { double[] t = extract(e.data, iso); } }
        """
        facts, _ = analyze(source, self.make_registry())
        assert "e.data" in names(facts.cons)
        assert "iso" in names(facts.cons)

    def test_summary_writes_are_definitions(self):
        source = """
        native void fill(double[] out);
        class M {
            void f(double[] buf) {
                fill(buf);
                double z = buf[0];
            }
        }
        """
        facts, _ = analyze(source, self.make_registry())
        assert "buf" in names(facts.gen)
        assert not any(n.startswith("buf") for n in names(facts.cons))

    def test_missing_summary_is_conservative(self):
        source = """
        native double[] extract(double[] vals, double iso);
        class E { double[] data; }
        class M { void f(E e, double iso) { double[] t = extract(e.data, iso); } }
        """
        facts, _ = analyze(source, registry=None)
        assert "e.data" in names(facts.cons)

    def test_field_subpath_summary(self):
        registry = IntrinsicRegistry(
            [
                Intrinsic(
                    "probe",
                    (),
                    DOUBLE,
                    fn=lambda c: 0.0,
                    reads=("c.minval",),
                    writes=("return",),
                )
            ]
        )
        source = """
        native double probe(E c);
        class E { double minval; double maxval; }
        class M { void f(E e) { double r = probe(e); } }
        """
        facts, _ = analyze(source, registry)
        assert "e.minval" in names(facts.cons)
        assert "e.maxval" not in names(facts.cons)
