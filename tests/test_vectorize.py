"""Differential tests for the columnar (vector) codegen backend.

The vector backend must be a pure performance knob: for every bundled
application and for hand-written dialect snippets, compiling with
``backend="vector"`` must produce byte-identical final payloads to the
scalar backend on both execution engines, while actually emitting
columnar element loops (asserted through the per-filter
``vector_loops``/``scalar_loops`` counters).  Loops the analyzer cannot
vectorize must fall back to the scalar path per loop — with the reason
recorded in the generated source — and still compute the same answer.
"""

import multiprocessing
import time
import warnings

import numpy as np
import pytest

from repro.apps import (
    make_active_pixels_app,
    make_knn_app,
    make_vmscope_app,
    make_zbuffer_app,
)
from repro.codegen.runtime_support import RawPacket
from repro.codegen.vectorize import resolve_backend
from repro.core.compiler import CompileOptions, compile_source
from repro.cost import cluster_config
from repro.datacutter import EngineOptions, run_pipeline
from repro.experiments.harness import _specs_for_version
from repro.lang.intrinsics import Intrinsic, IntrinsicRegistry
from repro.lang.types import DOUBLE, VOID

#: generous wall-clock cap for process-engine runs so a regression fails
#: instead of hanging the suite
PROC_TIMEOUT = 120.0

ENGINE_NAMES = ("threaded", "process")
BACKENDS = ("scalar", "vector")

APPS = {
    "zbuffer": lambda: _bundle(
        make_zbuffer_app(width=48, height=48), dataset="tiny", num_packets=4
    ),
    "apixels": lambda: _bundle(
        make_active_pixels_app(width=48, height=48), dataset="tiny", num_packets=4
    ),
    "knn": lambda: _bundle(make_knn_app(k=5), n_points=4000, num_packets=5),
    "vmscope": lambda: _bundle(
        make_vmscope_app(image_w=256, image_h=256, tile=64),
        query="large",
        num_packets=4,
    ),
}


def _bundle(app, **workload_kwargs):
    return app, app.make_workload(**workload_kwargs)


def _run(specs, engine):
    timeout = PROC_TIMEOUT if engine == "process" else None
    return run_pipeline(specs, EngineOptions(engine=engine, timeout=timeout))


def _no_orphans():
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def _canonical(finals):
    """Final payload dict -> {name: {field: ndarray}} in a backend-neutral
    byte-exact form.  Reductions whose *stored* order is arrival-dependent
    but whose value is a set (KNN candidate lists) are compared through
    their canonical ``rows()`` view; everything else through ``pack()``."""
    out = {}
    for key, value in finals.items():
        if hasattr(value, "rows"):
            out[key] = {"rows": np.asarray(value.rows())}
        elif hasattr(value, "pack"):
            out[key] = {k: np.asarray(v) for k, v in value.pack().items()}
        else:
            out[key] = {"value": np.asarray(value)}
    return out


def _assert_identical(a, b):
    assert a.keys() == b.keys()
    for key in a:
        assert a[key].keys() == b[key].keys(), key
        for fld in a[key]:
            assert a[key][fld].dtype == b[key][fld].dtype, (key, fld)
            assert np.array_equal(a[key][fld], b[key][fld]), (key, fld)


# ---------------------------------------------------------------------------
# All four applications, both engines: vector == scalar, byte for byte
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_backends_identical(app_name, engine):
    """backend='vector' is a pure perf knob: same bytes out on every app."""
    app, workload = APPS[app_name]()
    env = cluster_config(1)
    runs = {}
    for backend in BACKENDS:
        # fresh specs per run: reduction instances are stateful
        specs, result = _specs_for_version(
            app, workload, "Decomp-Comp", env, backend=backend
        )
        assert result.pipeline.backend == backend
        vec = sum(f.vector_loops for f in result.pipeline.filters)
        if backend == "vector":
            # every bundled app must actually exercise the columnar path
            assert vec >= 1, f"{app_name}: no element loop vectorized"
        else:
            assert vec == 0
        runs[backend] = _run(specs, engine)

    a = _canonical(runs["scalar"].payloads[-1])
    b = _canonical(runs["vector"].payloads[-1])
    _assert_identical(a, b)

    # both backends must also agree with the sequential oracle
    expected = workload.oracle()
    assert workload.check(runs["scalar"].payloads[-1], expected)
    assert workload.check(runs["vector"].payloads[-1], expected)
    if engine == "process":
        _no_orphans()


# ---------------------------------------------------------------------------
# Dialect snippets: masked conditionals, reductions, scalar fallback
# ---------------------------------------------------------------------------

_PRELUDE = """
native Rectdomain<1, Rec> read_recs();
native double wiggle(double x);
native void display(Acc r);

class Rec {
    double a;
    double b;
}

class Acc implements Reducinterface {
    double best;
    void add(double v) { return; }
    void merge(Acc other) { return; }
}
"""

#: nested if/else computing a value under masks, then one reduction fold
MASKED_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                double v = r.a;
                if (r.a > thresh) {
                    v = r.a * 2.0 + r.b;
                } else {
                    if (r.b > 0.0) {
                        v = r.b - r.a;
                    } else {
                        v = 0.0 - r.b;
                    }
                }
                local.add(v);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""

#: two element loops: the first vectorizes, the second calls an intrinsic
#: with no batch form and must fall back — per loop, not per program
PARTIAL_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                double v = r.a * 2.0 + r.b;
                local.add(v);
            }
            foreach (s in p) {
                double w = wiggle(s.b);
                local.add(w);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""

#: reduction folds nested inside conditional branches: a documented
#: analyzer limit — must fall back (with the reason) and stay correct
BRANCH_REDUCE_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                if (r.a > thresh) {
                    local.add(r.a * 2.0);
                } else {
                    local.add(r.b);
                }
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


#: compound assignment on a local initialized from an element field: the
#: local's binding starts as a zero-copy view of the caller's column, so
#: the emitted update must rebind, never run an in-place ufunc (the
#: trailing 'v + r.a' reads the column again and exposes any mutation)
COMPOUND_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                double v = r.a;
                v += r.b;
                local.add(v + r.a);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""

#: compound assignment inside a branch: the branch-save is an alias of
#: the pre-branch value, so an in-place '+=' would leak the branch effect
#: into every lane through the np.where merge
BRANCH_COMPOUND_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                double v = r.b;
                if (r.a > thresh) {
                    v += 10.0;
                }
                local.add(v);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""

#: '&&' whose right operand divides by the value the left operand guards:
#: scalar short-circuits past the divide, the eager columnar '&' runs it
#: on every lane — under errstate(ignore) inside the generated code
SHORT_CIRCUIT_DIV_SOURCE = _PRELUDE + """
class Main {
    void go(double thresh) {
        runtime_define int num_packets;
        Rectdomain<1, Rec> recs = read_recs();
        Acc result = new Acc();
        PipelinedLoop (p in recs) {
            Acc local = new Acc();
            foreach (r in p) {
                double v = 0.0;
                if (r.b != 0.0 && r.a / r.b > 1.0) {
                    v = r.a;
                }
                local.add(v);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


class MaxAcc:
    """Max fold: an exact selection, so batch and scalar agree bitwise."""

    def __init__(self):
        self.best = -np.inf

    def add(self, v):
        self.best = max(self.best, float(v))

    def batch_add(self, v):
        v = np.asarray(v, dtype=np.float64)
        if v.size:
            self.best = max(self.best, float(v.max()))

    def merge(self, other):
        self.best = max(self.best, other.best)

    def pack(self):
        return {"best": np.array([self.best])}

    @classmethod
    def unpack(cls, packed):
        obj = cls()
        obj.best = float(packed["best"][0])
        return obj

    @property
    def nbytes(self):
        return 8


def _snippet_registry():
    return IntrinsicRegistry(
        [
            Intrinsic("read_recs", (), None, fn=lambda: None, writes=("return",)),
            Intrinsic(
                "wiggle",
                (DOUBLE,),
                DOUBLE,
                fn=lambda x: x * 1.5 + 0.25,
                reads=("x",),
                writes=("return",),
            ),
            Intrinsic("display", (), VOID, fn=lambda r: None, reads=("r",), writes=()),
        ]
    )


def _snippet_packets(seed, count=50, num_packets=4):
    rng = np.random.default_rng(seed)
    return [
        RawPacket(
            count=count,
            fields={"a": rng.normal(size=count), "b": rng.normal(size=count)},
        )
        for _ in range(num_packets)
    ]


def _run_snippet(source, backend, packets, params):
    options = CompileOptions(
        env=cluster_config(2),
        runtime_classes={"Acc": MaxAcc},
        backend=backend,
    )
    result = compile_source(source, _snippet_registry(), options)
    out = result.execute(packets, dict(params))
    return result, out.payloads[-1]["result"].best


def _loop_counts(result):
    return [(f.vector_loops, f.scalar_loops) for f in result.pipeline.filters]


def test_masked_conditional_vectorizes():
    """Nested if/else lowers to masks/where; the fold is batched exactly."""
    packets = _snippet_packets(seed=7)
    params = {"thresh": 0.2, "num_packets": len(packets)}
    scalar, s_best = _run_snippet(MASKED_SOURCE, "scalar", packets, params)
    vector, v_best = _run_snippet(MASKED_SOURCE, "vector", packets, params)
    assert sum(v for v, _ in _loop_counts(scalar)) == 0
    counts = _loop_counts(vector)
    assert counts[0] == (1, 0), counts
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


def test_partial_vectorization_per_loop():
    """One program, two loops: the vectorizable one goes columnar, the one
    calling a batchless intrinsic falls back — and the source names why."""
    packets = _snippet_packets(seed=5, count=40, num_packets=3)
    params = {"thresh": 0.0, "num_packets": len(packets)}
    scalar, s_best = _run_snippet(PARTIAL_SOURCE, "scalar", packets, params)
    vector, v_best = _run_snippet(PARTIAL_SOURCE, "vector", packets, params)
    assert _loop_counts(scalar)[0] == (0, 2)
    assert _loop_counts(vector)[0] == (1, 1)
    src = vector.pipeline.filters[0].source
    assert "# scalar fallback:" in src
    assert "no batch form" in src
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


def test_branch_reduction_falls_back():
    """Reduction updates under if/else are a documented analyzer limit:
    the loop stays scalar, the reason is recorded, the answer is right."""
    packets = _snippet_packets(seed=11, count=40, num_packets=3)
    params = {"thresh": 0.1, "num_packets": len(packets)}
    scalar, s_best = _run_snippet(BRANCH_REDUCE_SOURCE, "scalar", packets, params)
    vector, v_best = _run_snippet(BRANCH_REDUCE_SOURCE, "vector", packets, params)
    assert _loop_counts(vector)[0] == (0, 1)
    assert "reduction update under if/else" in vector.pipeline.filters[0].source
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


def test_compound_assign_does_not_mutate_input():
    """'v = r.a; v += r.b' vectorizes, and the caller's packet arrays come
    back byte-identical: the hoisted column is a zero-copy view, so the
    update must rebind rather than run an in-place ufunc through it."""
    packets = _snippet_packets(seed=13)
    before = [{k: v.copy() for k, v in pk.fields.items()} for pk in packets]
    params = {"thresh": 0.0, "num_packets": len(packets)}
    scalar, s_best = _run_snippet(COMPOUND_SOURCE, "scalar", packets, params)
    vector, v_best = _run_snippet(COMPOUND_SOURCE, "vector", packets, params)
    assert _loop_counts(vector)[0] == (1, 0)
    for pk, orig in zip(packets, before):
        for fld, arr in orig.items():
            assert np.array_equal(pk.fields[fld], arr), fld
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


def test_compound_assign_in_branch_masks_lanes():
    """'v += 10.0' under if/else applies to the guarded lanes only: an
    in-place update would write through the branch-save alias and the
    np.where merge would then add 10 to every lane."""
    count = 32
    a = np.full(count, -1.0)
    a[:4] = 1.0  # only lanes 0..3 take the branch
    b = np.arange(count, dtype=np.float64)
    packets = [RawPacket(count=count, fields={"a": a, "b": b})]
    params = {"thresh": 0.0, "num_packets": len(packets)}
    scalar, s_best = _run_snippet(
        BRANCH_COMPOUND_SOURCE, "scalar", packets, params
    )
    vector, v_best = _run_snippet(
        BRANCH_COMPOUND_SOURCE, "vector", packets, params
    )
    assert _loop_counts(vector)[0] == (1, 0)
    # unmasked max (31.0) beats the masked lanes (3.0 + 10.0); a leaked
    # branch effect would report 41.0 instead
    assert s_best == 31.0
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


def test_short_circuit_divide_is_silent():
    """Eager '&' legally divides on lanes the scalar code short-circuits
    past; the generated errstate block keeps those lanes silent even when
    the caller escalates warnings to errors."""
    count = 40
    rng = np.random.default_rng(17)
    packets = [
        RawPacket(
            count=count,
            fields={
                "a": rng.normal(size=count) * 4.0,
                "b": rng.normal(size=count).round(),  # exact zeros
            },
        )
        for _ in range(3)
    ]
    assert any((pk.fields["b"] == 0.0).any() for pk in packets)
    params = {"thresh": 0.0, "num_packets": len(packets)}
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        scalar, s_best = _run_snippet(
            SHORT_CIRCUIT_DIV_SOURCE, "scalar", packets, params
        )
        vector, v_best = _run_snippet(
            SHORT_CIRCUIT_DIV_SOURCE, "vector", packets, params
        )
    assert _loop_counts(vector)[0] == (1, 0)
    assert "with _np.errstate" in vector.pipeline.filters[0].source
    assert np.float64(s_best).tobytes() == np.float64(v_best).tobytes()


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------


def test_resolve_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend("scalar") == "scalar"
    assert resolve_backend("vector") == "vector"
    assert resolve_backend("auto") == "scalar"
    monkeypatch.setenv("REPRO_BACKEND", "vector")
    assert resolve_backend("auto") == "vector"
    # explicit choices win over the environment
    assert resolve_backend("scalar") == "scalar"
    with pytest.raises(ValueError, match="unknown codegen backend"):
        resolve_backend("simd")
    monkeypatch.setenv("REPRO_BACKEND", "gpu")
    with pytest.raises(ValueError, match="unknown codegen backend"):
        resolve_backend("auto")


def test_compile_options_thread_backend(monkeypatch):
    """CompileOptions.backend='auto' resolves through the environment and
    the resolved name is recorded on the compiled pipeline."""
    monkeypatch.setenv("REPRO_BACKEND", "vector")
    packets = _snippet_packets(seed=3, count=20, num_packets=2)
    params = {"thresh": 0.0, "num_packets": len(packets)}
    result, _ = _run_snippet(MASKED_SOURCE, "auto", packets, params)
    assert result.pipeline.backend == "vector"
    assert _loop_counts(result)[0] == (1, 0)
