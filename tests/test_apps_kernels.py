"""Application kernel tests: datasets, isosurface geometry, reduction
classes, knn candidate sets, vmscope subsampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    knn_oracle,
    make_cube_dataset,
    make_knn_class,
    make_point_dataset,
    make_tile_dataset,
    make_vimage_class,
    scalar_field,
    subsample_tile_masked,
    subsample_tile_strided,
)
from repro.apps.isosurface import (
    extract_triangles,
    make_active_pixels_class,
    make_zbuffer_class,
    project_triangles,
)
from repro.apps.isosurface.kernels import rasterize_triangles


class TestDatasets:
    def test_scalar_field_normalized_and_deterministic(self):
        a = scalar_field((8, 8, 8), seed=3)
        b = scalar_field((8, 8, 8), seed=3)
        assert np.array_equal(a, b)
        assert 0.0 <= a.min() and a.max() <= 1.0

    def test_cube_dataset_minmax_consistent(self):
        ds = make_cube_dataset((6, 6, 6), seed=1)
        assert np.all(ds.minval <= ds.maxval)
        assert np.array_equal(ds.minval, ds.vals.min(axis=1))

    def test_cube_packets_partition(self):
        ds = make_cube_dataset((6, 6, 6), seed=1)
        packets = ds.packets(4)
        assert sum(p.count for p in packets) == ds.n_cubes

    def test_selectivity_monotone_extremes(self):
        ds = make_cube_dataset((8, 8, 8), seed=2)
        assert ds.selectivity(-1.0) == 0.0
        mid = ds.selectivity(0.5)
        assert 0.0 <= mid <= 1.0

    def test_point_packets(self):
        ds = make_point_dataset(1000, seed=5)
        packets = ds.packets(7)
        assert sum(p.count for p in packets) == 1000

    def test_tile_dataset_covers_image(self):
        ds = make_tile_dataset(128, 96, tile=32, seed=5)
        assert ds.n_tiles == 4 * 3
        area = sum(w * h for w, h in zip(ds.ws, ds.hs))
        assert area == 128 * 96

    def test_tile_query_selectivity(self):
        ds = make_tile_dataset(128, 128, tile=32, seed=5)
        assert ds.query_selectivity(0, 0, 128, 128) == 1.0
        assert ds.query_selectivity(0, 0, 1, 1) == pytest.approx(1 / 16)


class TestIsoGeometry:
    def test_non_crossing_cube_has_no_triangles(self):
        vals = np.full(8, 0.9)
        assert extract_triangles(vals, 0, 0, 0, 0.5).size == 0

    def test_crossing_cube_produces_triangles(self):
        vals = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        tris = extract_triangles(vals, 2, 3, 4, 0.5)
        assert tris.size % 9 == 0 and tris.size > 0
        # vertices lie within the cube at (2,3,4)
        pts = tris.reshape(-1, 3)
        assert np.all(pts >= [2, 3, 4]) and np.all(pts <= [3, 4, 5])

    def test_projection_on_screen(self):
        vals = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        tris = extract_triangles(vals, 1, 1, 1, 0.5)
        stris = project_triangles(tris, 0.4, 8.0, 64, 64)
        assert stris.size % 10 == 0

    def test_rasterize_produces_fragments_in_bounds(self):
        vals = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        tris = extract_triangles(vals, 3, 3, 3, 0.5)
        stris = project_triangles(tris, 0.4, 8.0, 64, 64)
        frags = rasterize_triangles(stris, 64, 64).reshape(-1, 4)
        assert len(frags) > 0
        assert np.all(frags[:, 0] >= 0) and np.all(frags[:, 0] <= 63)
        assert np.all(frags[:, 1] >= 0) and np.all(frags[:, 1] <= 63)

    def test_empty_inputs(self):
        assert project_triangles(np.zeros(0), 0.1, 8.0, 32, 32).size == 0
        assert rasterize_triangles(np.zeros(0), 32, 32).size == 0


class TestReductionClasses:
    def frags(self, rows):
        return np.asarray(rows, dtype=np.float64).ravel()

    def test_zbuffer_min_select(self):
        ZB = make_zbuffer_class(4, 4)
        zb = ZB()
        zb.accum(self.frags([[1, 1, 5.0, 0.3], [1, 1, 2.0, 0.7]]))
        img = zb.image()
        assert img[1, 1] == 0.7

    def test_zbuffer_merge_commutative(self):
        ZB = make_zbuffer_class(8, 8)
        rng = np.random.default_rng(0)
        pts = np.column_stack(
            [
                rng.integers(0, 8, 50),
                rng.integers(0, 8, 50),
                rng.uniform(0, 1, 50),
                rng.uniform(0, 1, 50),
            ]
        ).ravel()
        a1, a2 = ZB(), ZB()
        a1.accum(pts[:100])
        a2.accum(pts[100:])
        m12, m21 = ZB(), ZB()
        m12.merge(a1)
        m12.merge(a2)
        m21.merge(a2)
        m21.merge(a1)
        assert np.array_equal(m12.image(), m21.image())

    def test_zbuffer_pack_roundtrip(self):
        ZB = make_zbuffer_class(4, 4)
        zb = ZB()
        zb.accum(self.frags([[0, 0, 1.0, 0.5]]))
        clone = ZB.unpack(zb.pack())
        assert np.array_equal(clone.image(), zb.image())

    def test_active_pixels_matches_zbuffer(self):
        """The sparse algorithm computes the same image as the dense one."""
        ZB = make_zbuffer_class(16, 16)
        AP = make_active_pixels_class(16, 16)
        rng = np.random.default_rng(1)
        pts = np.column_stack(
            [
                rng.integers(0, 16, 300),
                rng.integers(0, 16, 300),
                rng.uniform(0, 1, 300),
                rng.uniform(0, 1, 300),
            ]
        ).ravel()
        zb, ap = ZB(), AP()
        zb.accum(pts)
        ap.accum(pts)
        assert np.array_equal(zb.image(), ap.image())

    def test_active_pixels_sparser_than_dense(self):
        ZB = make_zbuffer_class(64, 64)
        AP = make_active_pixels_class(64, 64)
        zb, ap = ZB(), AP()
        pts = self.frags([[1, 1, 0.5, 0.5], [2, 2, 0.25, 0.5]])
        zb.accum(pts)
        ap.accum(pts)
        packed_dense = sum(a.nbytes for a in zb.pack().values())
        packed_sparse = sum(a.nbytes for a in ap.pack().values())
        assert packed_sparse < packed_dense / 50


class TestKnn:
    def test_insert_keeps_k_best(self):
        KNN = make_knn_class(2)
        acc = KNN()
        for d in [5.0, 1.0, 3.0, 0.5]:
            acc.insert(d, d, 0.0, 0.0)
        assert sorted(acc.dist) == [0.5, 1.0]

    def test_merge_matches_oracle(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, (500, 3))
        q = (0.5, 0.5, 0.5)
        KNN = make_knn_class(7)
        parts = []
        for chunk in np.array_split(pts, 4):
            acc = KNN()
            for x, y, z in chunk:
                d = (x - q[0]) ** 2 + (y - q[1]) ** 2 + (z - q[2]) ** 2
                acc.insert(d, x, y, z)
            parts.append(acc)
        total = KNN()
        for part in parts:
            total.merge(part)
        assert np.allclose(total.rows(), knn_oracle(pts, q, 7))

    @given(st.integers(1, 10), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_insert_order_independent(self, k, rng):
        KNN = make_knn_class(k)
        items = [
            (rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1))
            for _ in range(30)
        ]
        a, b = KNN(), KNN()
        for item in items:
            a.insert(*item)
        for item in reversed(items):
            b.insert(*item)
        assert np.allclose(a.rows(), b.rows())


class TestVmscope:
    @given(
        st.integers(0, 40),
        st.integers(0, 40),
        st.integers(1, 4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_masked_equals_strided(self, qx0, qy0, s, rng):
        """The compiled (masked) and manual (strided) kernels agree."""
        w = h = 16
        x0 = rng.randint(0, 48)
        y0 = rng.randint(0, 48)
        qx1 = qx0 + rng.randint(1, 30)
        qy1 = qy0 + rng.randint(1, 30)
        pixels = np.arange(w * h * 3, dtype=np.float64)
        a = subsample_tile_masked(pixels, x0, y0, w, h, qx0, qy0, qx1, qy1, s)
        b = subsample_tile_strided(pixels, x0, y0, w, h, qx0, qy0, qx1, qy1, s)
        assert np.array_equal(a, b)

    def test_vimage_paste_and_merge(self):
        VI = make_vimage_class(0, 0, 8, 8, 2)
        a, b = VI(), VI()
        block1 = np.concatenate([[0, 0, 2, 2], np.ones(2 * 2 * 3)])
        block2 = np.concatenate([[2, 2, 2, 2], np.full(2 * 2 * 3, 2.0)])
        a.paste(block1)
        b.paste(block2)
        a.merge(b)
        img = a.image()
        assert img[0, 0, 0] == 1.0 and img[2, 2, 0] == 2.0
        assert img[3, 0, 0] == 0.0  # untouched stays background

    def test_vimage_pack_roundtrip(self):
        VI = make_vimage_class(0, 0, 4, 4, 1)
        v = VI()
        v.paste(np.concatenate([[1, 1, 1, 1], [0.25, 0.5, 0.75]]))
        clone = VI.unpack(v.pack())
        assert np.array_equal(clone.image(), v.image())
