"""Socket transport conformance: wire schema, framing, hostile input,
and Local/Remote client equivalence.

The acceptance bar: a 100-request mixed burst through a
:class:`RemoteClient` over loopback is *byte-identical* to the same
burst through a :class:`LocalClient`, on both engines — and no hostile
input (truncated frame, oversized frame, garbage bytes, disconnect
mid-batch, unknown schema version) may kill the dispatcher: the server
stays serviceable and the metrics record the event.

The client-conformance suite runs every test against both transports via
the ``any_client`` fixture parameter — the :class:`Client` protocol is
one surface, however work reaches the server.
"""

import io
import queue
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.apps import make_knn_service, make_vmscope_service
from repro.datacutter import EngineOptions
from repro.serve import (
    Client,
    LocalClient,
    PipelineServer,
    RemoteClient,
    Request,
    Response,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    SchemaVersionError,
    ServerClosed,
    ServerOptions,
    WireFormatError,
)
from repro.serve.requests import PendingResponse, decode_value, encode_value
from repro.serve.transport import (
    FRAME_VERSION,
    MAGIC,
    T_ERROR,
    T_HELLO,
    T_REQUEST,
    T_RESPONSE,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    encode_frame,
    parse_address,
    read_frame,
)

KNN_KW = dict(n_points=2_000, num_packets=3)
VM_KW = dict(image_w=96, image_h=96, tile=32, num_packets=3)


@pytest.fixture(scope="module")
def knn_service():
    return make_knn_service(**KNN_KW)


@pytest.fixture(scope="module")
def vm_service():
    return make_vmscope_service(**VM_KW)


@pytest.fixture()
def server(knn_service, vm_service):
    opts = ServerOptions(max_batch=16, batch_deadline=0.02, max_queue=128)
    with PipelineServer([knn_service, vm_service], opts) as srv:
        yield srv


@pytest.fixture(params=["local", "remote"])
def any_client(request, server):
    """The same conformance suite against either transport."""
    if request.param == "local":
        client = LocalClient(server, timeout=120.0)
    else:
        client = RemoteClient(server.listen(), timeout=120.0)
    with client:
        yield client


# ---------------------------------------------------------------------------
# Wire schema: encode/decode on the types (satellite: to_wire/from_wire)
# ---------------------------------------------------------------------------


class TestWireSchema:
    def test_value_round_trip(self):
        value = {
            "f": 1.5,
            "i": 7,
            "s": "x",
            "none": None,
            "flag": True,
            "nan": float("nan"),
            "inf": float("-inf"),
            "arr": np.arange(12, dtype=np.float32).reshape(3, 4),
            "blob": b"\x00\x01\xff",
            "nested": {"t": (1, 2), "set": {3, 4}, "list": [1, [2, {"k": "v"}]]},
            5: "int-key",
        }
        segments: list[bytes] = []
        encoded = encode_value(value, segments)
        decoded = decode_value(encoded, segments)
        assert decoded["f"] == 1.5 and decoded["i"] == 7 and decoded["flag"] is True
        assert decoded["nan"] != decoded["nan"]  # NaN round-trips as NaN
        assert decoded["inf"] == float("-inf")
        assert decoded["arr"].dtype == np.float32
        assert decoded["arr"].tobytes() == value["arr"].tobytes()
        assert decoded["blob"] == b"\x00\x01\xff"
        assert decoded["nested"]["t"] == (1, 2)
        assert decoded["nested"]["set"] == {3, 4}
        assert decoded[5] == "int-key"
        # the decoded ndarray owns writable memory (not a frombuffer view)
        decoded["arr"][0, 0] = 99.0

    def test_ndarray_noncontiguous_and_scalar(self):
        segments: list[bytes] = []
        arr = np.arange(16).reshape(4, 4)[::2, ::2]  # strided view
        decoded = decode_value(encode_value(arr, segments), segments)
        assert np.array_equal(decoded, arr)
        segments = []
        scalar = np.float64(2.5)
        back = decode_value(encode_value(scalar, segments), segments)
        assert back == 2.5 and isinstance(back, np.floating)

    def test_unencodable_value_refused(self):
        with pytest.raises(WireFormatError, match="cannot encode"):
            encode_value(object(), [])

    def test_request_round_trip_reanchors_deadline(self):
        req = Request(
            kind="knn",
            body={"x": 0.5, "arr": np.ones(3)},
            deadline=time.monotonic() + 5.0,
        )
        header, segments = req.to_wire()
        assert header["schema"] == SCHEMA_VERSION
        assert 0.0 < header["deadline"] <= 5.0
        back = Request.from_wire(header, segments)
        assert back.kind == "knn"
        assert back.body["x"] == 0.5
        assert np.array_equal(back.body["arr"], np.ones(3))
        # re-anchored on the receiver's clock, still ~5s out
        assert 3.0 < back.deadline - time.monotonic() <= 5.0
        assert Request.from_wire(*Request(kind="t").to_wire()).deadline is None

    def test_response_round_trip(self):
        resp = Response(
            id=3,
            kind="knn",
            status="ok",
            value=np.linspace(0, 1, 7),
            latency=0.25,
            group_size=4,
            batch_size=8,
            cache_hit=True,
            retry_after=None,
        )
        back = Response.from_wire(*resp.to_wire())
        assert back.ok and back.value.tobytes() == resp.value.tobytes()
        assert back.group_size == 4 and back.cache_hit is True

    def test_unknown_schema_version_raises(self):
        header, segments = Request(kind="knn").to_wire()
        header["schema"] = SCHEMA_VERSION + 41
        with pytest.raises(SchemaVersionError, match="unsupported wire schema"):
            Request.from_wire(header, segments)
        with pytest.raises(SchemaVersionError):
            Response.from_wire({"schema": None}, [])

    def test_trace_id_on_the_wire(self):
        req = Request(kind="knn", body={"x": 0.1})
        header, segments = req.to_wire()
        assert header["trace"] == req.trace_id
        assert Request.from_wire(header, segments).trace_id == req.trace_id
        resp = Response(id=1, kind="knn", status="ok", trace_id=req.trace_id)
        assert Response.from_wire(*resp.to_wire()).trace_id == req.trace_id

    def test_v2_request_without_trace_still_decodes(self):
        # a v2 client has never heard of trace ids: the server must
        # accept the frame and mint one itself
        assert set(SUPPORTED_SCHEMAS) >= {2, SCHEMA_VERSION}
        header, segments = Request(kind="knn", body={"x": 0.1}).to_wire()
        header["schema"] = 2
        header.pop("trace")
        back = Request.from_wire(header, segments)
        assert back.kind == "knn" and back.trace_id  # server-minted

    def test_v2_response_without_trace_still_decodes(self):
        header, segments = Response(id=1, kind="knn", status="ok").to_wire()
        header["schema"] = 2
        header.pop("trace")
        back = Response.from_wire(header, segments)
        assert back.ok and back.trace_id is None

    def test_malformed_trace_id_rejected(self):
        header, segments = Request(kind="knn").to_wire()
        header["trace"] = 1234
        with pytest.raises(WireFormatError, match="trace"):
            Request.from_wire(header, segments)

    def test_segment_index_validated(self):
        # negative indices must not alias from the end of the segment list
        for bad in (-1, 2, True, "0", None):
            with pytest.raises(WireFormatError, match="segment index"):
                decode_value({"__bytes__": bad}, [b"a", b"b"])
        with pytest.raises(WireFormatError, match="segment index"):
            decode_value(
                {"__ndarray__": {"dtype": "<f8", "shape": [1], "segment": -1}},
                [b"x" * 8],
            )

    def test_malformed_header_raises_wire_error(self):
        with pytest.raises(WireFormatError, match="missing"):
            Request.from_wire({"schema": SCHEMA_VERSION}, [])
        with pytest.raises(WireFormatError):
            Request.from_wire(
                {"schema": SCHEMA_VERSION, "kind": 7, "body": {"__map__": []}}, []
            )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_frame_round_trip(self):
        segments = [b"abc", b"", b"\x00" * 100]
        frame = encode_frame(T_REQUEST, {"k": 1}, segments)
        ftype, header, segs, nbytes = read_frame(io.BytesIO(frame))
        assert (ftype, header, segs) == (T_REQUEST, {"k": 1}, segments)
        assert nbytes == len(frame)

    def test_empty_stream_is_clean_eof(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_frame(self):
        frame = encode_frame(T_REQUEST, {"k": 1}, [b"payload"])
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(frame[:-3]))
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(frame[:7]))

    def test_bad_magic_is_desync(self):
        with pytest.raises(FrameError, match="magic"):
            read_frame(io.BytesIO(b"GARBAGE-GARBAGE-GARBAGE-"))

    def test_unknown_frame_version(self):
        frame = bytearray(encode_frame(T_REQUEST, {}))
        frame[4] = 99
        with pytest.raises(FrameError, match="frame version"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_oversized_frame_consumed_and_raised(self):
        big = encode_frame(T_REQUEST, {"pad": "x" * 5000})
        tail = encode_frame(T_REQUEST, {"next": 1})
        stream = io.BytesIO(big + tail)
        with pytest.raises(FrameTooLarge):
            read_frame(stream, max_frame=1024)
        # the oversized frame was fully discarded: the stream is aligned
        ftype, header, _segs, _n = read_frame(stream, max_frame=1024)
        assert header == {"next": 1}

    def test_bad_json_header_is_recoverable(self):
        bad = struct.pack("!4sBBHI", MAGIC, FRAME_VERSION, T_REQUEST, 0, 4) + b"{{{{"
        stream = io.BytesIO(bad + encode_frame(T_REQUEST, {"ok": True}))
        with pytest.raises(WireFormatError, match="JSON"):
            read_frame(stream)
        assert read_frame(stream)[1] == {"ok": True}

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7070") == ("10.0.0.1", 7070)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError):
            parse_address("7070")


# ---------------------------------------------------------------------------
# Client conformance: one suite, both transports (satellite: Client protocol)
# ---------------------------------------------------------------------------


class TestClientConformance:
    def test_satisfies_client_protocol(self, any_client):
        assert isinstance(any_client, Client)

    def test_call_and_submit(self, any_client):
        response = any_client.knn(0.3, 0.3, 0.3)
        assert response.ok and isinstance(response.value, np.ndarray)
        pending = any_client.submit("knn", {"x": 0.3, "y": 0.3, "z": 0.3})
        assert pending.result(60).value.tobytes() == response.value.tobytes()

    def test_burst_coalesces(self, any_client):
        responses = any_client.burst(
            [("knn", {"x": 0.4, "y": 0.4, "z": 0.4})] * 6
        )
        assert all(r.ok for r in responses)
        assert {r.value.tobytes() for r in responses} == {
            responses[0].value.tobytes()
        }
        assert max(r.group_size for r in responses) > 1

    def test_stats_surface(self, any_client):
        any_client.knn(0.5, 0.5, 0.5)
        stats = any_client.stats()
        assert stats["served"] >= 1
        assert "transport" in stats and "latency" in stats

    def test_drain_collects_outstanding(self, any_client):
        for _ in range(3):
            any_client.submit("knn", {"x": 0.6, "y": 0.6, "z": 0.6})
        drained = any_client.drain(timeout=60)
        assert len(drained) == 3 and all(r.ok for r in drained)
        assert any_client.drain(timeout=1) == []

    def test_unknown_kind_raises(self, any_client):
        with pytest.raises(ValueError, match="unknown request kind"):
            any_client.submit("nope", {})

    def test_vmscope_convenience(self, any_client):
        response = any_client.vmscope("small")
        assert response.ok and isinstance(response.value, np.ndarray)


class TestRemoteClientLifecycle:
    def test_closed_client_refuses_submissions(self, server):
        client = RemoteClient(server.listen(), timeout=60.0)
        assert client.knn(0.2, 0.2, 0.2).ok
        client.close()
        with pytest.raises(ServerClosed):
            client.submit("knn", {"x": 0.1})
        client.close()  # idempotent

    def test_connect_without_listener_fails(self):
        sock = socket.create_server(("127.0.0.1", 0))
        host, port = sock.getsockname()[:2]
        sock.close()
        with pytest.raises(OSError):
            RemoteClient((host, port), connect_timeout=0.5)

    def test_server_stop_fails_inflight_remotely(self, knn_service):
        opts = ServerOptions(max_batch=1, batch_deadline=0.0)
        server = PipelineServer([knn_service], opts).start()
        client = RemoteClient(server.listen(), timeout=30.0)
        pending = [
            client.submit("knn", {"x": x, "y": x, "z": x})
            for x in (0.11, 0.22, 0.33)
        ]
        server.stop(drain=False)
        statuses = {p.result(20).status for p in pending}
        # whatever wasn't served resolves: shutdown relayed over the wire,
        # or a connection-loss error — never a hang
        assert statuses <= {"ok", "shutdown", "error"}
        client.close()


# ---------------------------------------------------------------------------
# Hostile input: the dispatcher must survive all of it (satellite)
# ---------------------------------------------------------------------------


def _raw_connection(address) -> tuple[socket.socket, "socket.SocketIO"]:
    sock = socket.create_connection(address, timeout=10.0)
    rfile = sock.makefile("rb")
    hello = read_frame(rfile)
    assert hello is not None and hello[0] == T_HELLO
    return sock, rfile


def _assert_serviceable(server) -> None:
    """A fresh client still gets answers — the dispatcher survived."""
    with RemoteClient(server._listener.address, timeout=60.0) as probe:
        assert probe.knn(0.25, 0.25, 0.25).ok


class TestHostileInput:
    def test_garbage_bytes_close_connection_not_server(self, server):
        addr = server.listen()
        sock, rfile = _raw_connection(addr)
        # exactly one fixed header's worth of garbage: the server reads it
        # all before closing, so the error frame arrives on an orderly FIN
        sock.sendall(b"\xde\xad\xbe\xef" * 3)
        frame = read_frame(rfile)  # structured error before the close
        assert frame is not None and frame[0] == T_ERROR
        assert "magic" in frame[1]["error"]
        assert rfile.read(1) == b""  # then EOF: desync closes the stream
        sock.close()
        _assert_serviceable(server)
        assert server.metrics.decode_errors >= 1

    def test_truncated_frame_records_disconnect(self, server):
        addr = server.listen()
        sock, _rfile = _raw_connection(addr)
        frame = encode_frame(T_REQUEST, *Request(kind="knn", body={"x": 0.1}).to_wire())
        sock.sendall(frame[: len(frame) - 4])
        sock.shutdown(socket.SHUT_RDWR)  # EOF lands mid-frame
        sock.close()
        deadline = time.monotonic() + 5
        while server.metrics.disconnects < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.metrics.disconnects >= 1
        _assert_serviceable(server)

    def test_oversized_frame_gets_error_and_connection_survives(
        self, knn_service
    ):
        opts = ServerOptions(max_frame_bytes=4096, batch_deadline=0.0)
        with PipelineServer([knn_service], opts) as server:
            addr = server.listen()
            sock, rfile = _raw_connection(addr)
            request = Request(kind="knn", body={"blob": b"x" * 10_000})
            sock.sendall(encode_frame(T_REQUEST, *request.to_wire()))
            frame = read_frame(rfile)
            assert frame is not None and frame[0] == T_ERROR
            assert "cap" in frame[1]["error"]
            # the connection is still usable for a well-formed request
            good = Request(kind="knn", body={"x": 0.3, "y": 0.3, "z": 0.3})
            sock.sendall(encode_frame(T_REQUEST, *good.to_wire()))
            frame = read_frame(rfile)
            assert frame is not None and frame[0] == T_RESPONSE
            assert frame[1]["status"] == "ok"
            sock.close()
            assert server.metrics.decode_errors >= 1

    def test_unknown_schema_version_gets_structured_error(self, server):
        addr = server.listen()
        sock, rfile = _raw_connection(addr)
        header, segments = Request(kind="knn", body={"x": 0.1}).to_wire()
        header["schema"] = 99
        sock.sendall(encode_frame(T_REQUEST, header, segments))
        frame = read_frame(rfile)
        assert frame is not None and frame[0] == T_ERROR
        assert "schema version" in frame[1]["error"]
        assert frame[1]["cid"] == header["id"]  # attributed to the request
        # same connection still serves current-schema frames
        good = Request(kind="knn", body={"x": 0.3, "y": 0.3, "z": 0.3})
        sock.sendall(encode_frame(T_REQUEST, *good.to_wire()))
        assert read_frame(rfile)[1]["status"] == "ok"
        sock.close()
        _assert_serviceable(server)

    def test_disconnect_mid_batch_does_not_kill_dispatcher(self, server):
        addr = server.listen()
        sock, _rfile = _raw_connection(addr)
        for x in (0.15, 0.35, 0.55, 0.75):
            request = Request(kind="knn", body={"x": x, "y": x, "z": x})
            sock.sendall(encode_frame(T_REQUEST, *request.to_wire()))
        sock.shutdown(socket.SHUT_RDWR)  # vanish while the batch is in flight
        sock.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.metrics.disconnects >= 1 or server.metrics.connections_closed >= 1:
                break
            time.sleep(0.02)
        _assert_serviceable(server)
        stats = server.stats()
        assert stats["transport"]["connections_closed"] >= 1

    def test_close_with_full_inflight_queue_returns_promptly(self, server):
        # regression: close() used to do a blocking put on the bounded
        # in-flight queue — full under flow control — and hang stop()
        addr = server.listen()
        sock, _rfile = _raw_connection(addr)
        deadline = time.monotonic() + 5
        while not server._listener._connections and time.monotonic() < deadline:
            time.sleep(0.01)
        (conn,) = list(server._listener._connections)
        # fill the window with never-resolving futures (a busy client)
        while True:
            try:
                conn.inflight.put_nowait((None, PendingResponse(Request(kind="knn"))))
            except queue.Full:
                break
        closer = threading.Thread(target=conn.close)
        closer.start()
        closer.join(timeout=5)
        assert not closer.is_alive(), "close() deadlocked on a full in-flight queue"
        sock.close()
        _assert_serviceable(server)

    def test_unframeable_response_reported_not_fatal(self, server):
        # regression: a response with >65535 segments raises struct.error
        # in the writer, which used to kill the thread and wedge the
        # connection instead of coming back as a structured error
        addr = server.listen()
        sock, rfile = _raw_connection(addr)
        deadline = time.monotonic() + 5
        while not server._listener._connections and time.monotonic() < deadline:
            time.sleep(0.01)
        (conn,) = list(server._listener._connections)
        req = Request(kind="knn")
        pending = PendingResponse(req)
        pending.resolve(
            Response(id=req.id, kind="knn", status="ok", value=[b"x"] * 70_000)
        )
        conn.inflight.put((123, pending))
        frame = read_frame(rfile)
        assert frame is not None and frame[0] == T_ERROR
        assert "not wire-encodable" in frame[1]["error"]
        assert frame[1]["cid"] == 123
        # the writer survived: the same connection still serves requests
        good = Request(kind="knn", body={"x": 0.3, "y": 0.3, "z": 0.3})
        sock.sendall(encode_frame(T_REQUEST, *good.to_wire()))
        frame = read_frame(rfile)
        assert frame is not None and frame[0] == T_RESPONSE
        assert frame[1]["status"] == "ok"
        sock.close()

    def test_oversized_submit_fails_locally_not_inflight(self, knn_service):
        # regression: an oversized request used to reach the server, come
        # back as an unattributed T_ERROR (cid=None), and spuriously fail
        # every other request in flight on the connection
        opts = ServerOptions(max_frame_bytes=8192, max_batch=4, batch_deadline=0.02)
        with PipelineServer([knn_service], opts) as server:
            with RemoteClient(server.listen(), timeout=60.0) as client:
                assert client.max_frame == 8192
                pending = [
                    client.submit("knn", {"x": x, "y": x, "z": x})
                    for x in (0.2, 0.4)
                ]
                with pytest.raises(WireFormatError, match="frame cap"):
                    client.submit("knn", {"blob": b"x" * 20_000})
                # concurrent in-flight requests are untouched by the failure
                assert all(p.result(60).ok for p in pending)
                assert client.knn(0.3, 0.3, 0.3).ok

    def test_connection_gauges_track_clients(self, server):
        addr = server.listen()
        with RemoteClient(addr) as a, RemoteClient(addr) as b:
            assert a.knn(0.2, 0.2, 0.2).ok and b.knn(0.2, 0.2, 0.2).ok
            assert server.metrics.connections_active == 2
        deadline = time.monotonic() + 5
        while server.metrics.connections_active > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.metrics.connections_active == 0
        assert server.metrics.connections_opened >= 2
        trace_streams = {q.stream for q in server.metrics.trace.queue_samples}
        assert "serve.connections" in trace_streams


# ---------------------------------------------------------------------------
# Flow control
# ---------------------------------------------------------------------------


class TestFlowControl:
    def test_rejection_maps_to_wire_retry_after(self, knn_service):
        opts = ServerOptions(
            admission="reject", max_queue=1, max_batch=1, batch_deadline=0.0
        )
        with PipelineServer([knn_service], opts) as server:
            with RemoteClient(server.listen(), timeout=60.0) as client:
                pending = [
                    client.submit("knn", {"x": x, "y": x, "z": x})
                    for x in (0.1, 0.2, 0.3, 0.4, 0.5)
                ]
                responses = [p.result(60) for p in pending]
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected, [r.status for r in responses]
        assert all(
            r.retry_after is not None and r.retry_after > 0 for r in rejected
        )
        assert any(r.ok for r in responses)

    def test_inflight_bound_backpressures_not_drops(self, knn_service):
        # tiny per-connection window; every request must still be served
        opts = ServerOptions(max_batch=8, batch_deadline=0.01, max_inflight=2)
        with PipelineServer([knn_service], opts) as server:
            with RemoteClient(server.listen(), timeout=120.0) as client:
                responses = client.burst(
                    [("knn", {"x": 0.3, "y": 0.3, "z": 0.3})] * 12
                )
        assert len(responses) == 12 and all(r.ok for r in responses)


# ---------------------------------------------------------------------------
# Schema compatibility and trace context across the socket
# ---------------------------------------------------------------------------


class TestSchemaCompat:
    def test_v2_client_served_by_v3_server(self, server):
        addr = server.listen()
        sock, rfile = _raw_connection(addr)
        header, segments = Request(
            kind="knn", body={"x": 0.3, "y": 0.3, "z": 0.3}
        ).to_wire()
        header["schema"] = 2
        header.pop("trace")  # a v2 client never sends one
        sock.sendall(encode_frame(T_REQUEST, header, segments))
        frame = read_frame(rfile)
        assert frame is not None and frame[0] == T_RESPONSE
        assert frame[1]["status"] == "ok"
        # the server answers in its own schema; a v2 reader that
        # tolerates unknown keys simply ignores ``trace``
        assert frame[1]["schema"] == SCHEMA_VERSION
        response = Response.from_wire(frame[1], frame[2])
        assert response.ok and response.trace_id  # server-minted
        sock.close()

    def test_trace_id_round_trips_over_the_wire(self, server):
        with RemoteClient(server.listen(), timeout=60.0) as client:
            pending = client.submit("knn", {"x": 0.3, "y": 0.3, "z": 0.3})
            minted = pending.request.trace_id
            response = pending.result(60)
        assert response.ok and response.trace_id == minted
        # ... and the server's trace recorded stage spans under that id
        traces = {
            s.trace for s in server.metrics.trace.spans if s.trace is not None
        }
        assert minted in traces


class TestTracingModes:
    """The conformance surface with request tracing on and off."""

    @pytest.fixture(params=["traced", "untraced"])
    def mode_server(self, request, knn_service, vm_service):
        opts = ServerOptions(
            max_batch=16,
            batch_deadline=0.02,
            max_queue=128,
            trace_requests=(request.param == "traced"),
        )
        with PipelineServer([knn_service, vm_service], opts) as srv:
            yield srv

    @pytest.fixture(params=["local", "remote"])
    def mode_client(self, request, mode_server):
        if request.param == "local":
            client = LocalClient(mode_server, timeout=120.0)
        else:
            client = RemoteClient(mode_server.listen(), timeout=120.0)
        with client:
            yield client

    def test_burst_and_stats_either_mode(self, mode_server, mode_client):
        responses = mode_client.burst(
            [("knn", {"x": 0.3, "y": 0.3, "z": 0.3})] * 4
            + [("vmscope", {"query": "small"})]
        )
        assert all(r.ok for r in responses)
        assert all(r.trace_id for r in responses)  # ids flow either way
        stats = mode_client.stats(deep=True)
        assert stats["served"] >= 5
        assert stats["latency"]["p95"] > 0.0  # histograms always on
        assert "windows" in stats
        # per-request stage spans are gated by trace_requests; the
        # per-execution spans (execute/request) stay on regardless
        stage_spans = [
            s
            for s in mode_server.metrics.trace.spans
            if s.phase in ("admission", "queue", "assemble", "extract", "write")
        ]
        if mode_server.options.trace_requests:
            assert stage_spans and any(s.trace for s in stage_spans)
        else:
            assert not stage_spans


# ---------------------------------------------------------------------------
# Acceptance: remote burst byte-identical to local, both engines
# ---------------------------------------------------------------------------


def _mixed_requests(n: int) -> list:
    points = [(0.2, 0.2, 0.2), (0.8, 0.3, 0.5), (0.5, 0.5, 0.5), (0.1, 0.9, 0.4)]
    out = []
    for i in range(n):
        if i % 3 == 2:
            out.append(("vmscope", {"query": ("small", "large")[i % 2]}))
        else:
            x, y, z = points[i % len(points)]
            out.append(("knn", {"x": x, "y": y, "z": z}))
    return out


class TestRemoteEqualsLocal:
    def test_threaded_100_request_burst_byte_identical(
        self, knn_service, vm_service
    ):
        requests = _mixed_requests(100)
        opts = ServerOptions(max_batch=32, batch_deadline=0.02, max_queue=128)
        with PipelineServer([knn_service, vm_service], opts) as server:
            local = LocalClient(server, timeout=600.0)
            local_responses = local.burst(requests)
            with RemoteClient(server.listen(), timeout=600.0) as remote:
                remote_responses = remote.burst(requests)
                stats = remote.stats()
        assert all(r.ok for r in local_responses)
        assert all(r.ok for r in remote_responses), [
            (r.status, r.error) for r in remote_responses if not r.ok
        ][:1]
        for a, b in zip(local_responses, remote_responses):
            assert isinstance(b.value, np.ndarray)
            assert a.value.shape == b.value.shape
            assert a.value.tobytes() == b.value.tobytes()
        # the remote burst went through the same serving machinery
        assert stats["transport"]["frames_in"] >= 100
        assert stats["executions"] < 2 * len(requests)
        assert stats["plan_cache_hits"] > 0

    def test_process_engine_burst_byte_identical(self, knn_service, vm_service):
        requests = _mixed_requests(30)
        opts = ServerOptions(
            engine_options=EngineOptions(engine="process", timeout=120.0),
            max_batch=30,
            batch_deadline=0.05,
            max_queue=64,
        )
        with PipelineServer([knn_service, vm_service], opts) as server:
            local = LocalClient(server, timeout=600.0)
            local_responses = local.burst(requests)
            with RemoteClient(server.listen(), timeout=600.0) as remote:
                remote_responses = remote.burst(requests)
        assert all(r.ok for r in local_responses)
        assert all(r.ok for r in remote_responses), [
            (r.status, r.error) for r in remote_responses if not r.ok
        ][:1]
        for a, b in zip(local_responses, remote_responses):
            assert a.value.tobytes() == b.value.tobytes()


class TestConcurrentConnections:
    def test_many_clients_one_dispatcher(self, server):
        addr = server.listen()
        results: dict[int, list] = {}
        errors: list = []

        def worker(idx: int) -> None:
            try:
                with RemoteClient(addr, timeout=120.0) as client:
                    results[idx] = client.burst(
                        [("knn", {"x": 0.3, "y": 0.3, "z": 0.3})] * 5
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(results) == 4
        blobs = {
            r.value.tobytes() for responses in results.values() for r in responses
        }
        assert len(blobs) == 1  # every client saw the same bytes
