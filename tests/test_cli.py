"""CLI tests for ``python -m repro``."""

import json

import pytest

from repro.__main__ import main
from repro.datacutter.obs import read_jsonl, validate_chrome_trace

SOURCE = """
native Rectdomain<1, E> read();
native double[] work(double[] v, double s);
class E { double key; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc o) { return; }
}
class M {
    void run(double s, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, E> elems = read();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {
            Acc local = new Acc();
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] v = work(e.data, s);
                    local.add(v);
                }
            }
            result.merge(local);
        }
    }
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "app.pipe"
    path.write_text(SOURCE)
    return str(path)


def test_compile_report(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out and "volumes" in out


def test_compile_emit_and_params(source_file, capsys):
    code = main(
        [
            "compile",
            source_file,
            "--width",
            "2",
            "--objective",
            "fill",
            "--param",
            "packet_size=500",
            "--param",
            "sel.g0=0.2",
            "--emit",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "unit C_1" in out and "def generate" in out


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "iso-zbuffer" in out and "vmscope" in out


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "fig99"]) == 2


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------


def test_run_exit_zero_and_accounting(capsys):
    assert main(["run", "knn", "--packets", "4"]) == 0
    out = capsys.readouterr().out
    assert "oracle check: OK" in out
    assert "stream" in out and "bytes" in out


def test_run_rejects_bad_engine():
    with pytest.raises(SystemExit) as exc_info:
        main(["run", "knn", "--engine", "distributed"])
    assert exc_info.value.code == 2


def test_run_rejects_bad_packet_count(capsys):
    assert main(["run", "knn", "--packets", "0"]) == 2


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------


def test_trace_writes_valid_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    code = main(["trace", "knn", "--packets", "4", "-o", str(out_path)])
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    names = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert any(name.endswith("#0") for name in names)
    out = capsys.readouterr().out
    assert "trace written to" in out
    assert "cost model vs" in out  # compiled version -> measured-vs-predicted


def test_trace_jsonl_round_trips(tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    code = main(
        ["trace", "knn", "--packets", "4", "--format", "jsonl", "-o", str(out_path)]
    )
    assert code == 0
    trace = read_jsonl(str(out_path))
    assert trace.engine == "threaded"
    assert trace.spans and trace.queue_samples


def test_trace_rejects_bad_engine():
    with pytest.raises(SystemExit) as exc_info:
        main(["trace", "knn", "--engine", "bogus"])
    assert exc_info.value.code == 2


def test_chaos_heals_and_exports_restart_span(tmp_path, capsys):
    out_path = tmp_path / "chaos.json"
    code = main(
        [
            "chaos",
            "knn",
            "--engine",
            "threaded",
            "--packets",
            "4",
            "--kind",
            "crash",
            "-o",
            str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "outputs identical to fault-free run: YES" in out
    assert "restarts: 1" in out
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    restart_events = [
        ev
        for ev in doc["traceEvents"]
        if ev["ph"] == "X" and ev["name"] == "restart"
    ]
    assert restart_events


def test_chaos_rejects_unknown_filter(capsys):
    code = main(["chaos", "knn", "--filter", "nope"])
    assert code == 2
    assert "no filter named 'nope'" in capsys.readouterr().out


def test_serve_burst_verifies_and_exports_metrics(tmp_path, capsys):
    out_path = tmp_path / "serve.jsonl"
    code = main(
        [
            "serve",
            "--requests",
            "16",
            "--max-batch",
            "16",
            "--verify",
            "-o",
            str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "requests: 16  ok: 16  failed: 0" in out
    assert "verify vs one-shot" in out and "OK" in out
    trace = read_jsonl(str(out_path))
    assert trace.meta["role"] == "serve"
    assert {s.phase for s in trace.spans} >= {"request", "execute"}


def test_serve_rejects_bad_mix(capsys):
    code = main(["serve", "--requests", "4", "--mix", "bogus=1"])
    assert code == 2
    assert "unknown kinds" in capsys.readouterr().out
