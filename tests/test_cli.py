"""CLI tests for ``python -m repro``."""

import pytest

from repro.__main__ import main

SOURCE = """
native Rectdomain<1, E> read();
native double[] work(double[] v, double s);
class E { double key; double[] data; }
class Acc implements Reducinterface {
    double[] total;
    void add(double[] v) { return; }
    void merge(Acc o) { return; }
}
class M {
    void run(double s, double cutoff) {
        runtime_define int num_packets;
        Rectdomain<1, E> elems = read();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {
            Acc local = new Acc();
            foreach (e in p) {
                if (e.key < cutoff) {
                    double[] v = work(e.data, s);
                    local.add(v);
                }
            }
            result.merge(local);
        }
    }
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "app.pipe"
    path.write_text(SOURCE)
    return str(path)


def test_compile_report(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out and "volumes" in out


def test_compile_emit_and_params(source_file, capsys):
    code = main(
        [
            "compile",
            source_file,
            "--width",
            "2",
            "--objective",
            "fill",
            "--param",
            "packet_size=500",
            "--param",
            "sel.g0=0.2",
            "--emit",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "unit C_1" in out and "def generate" in out


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "iso-zbuffer" in out and "vmscope" in out


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "fig99"]) == 2


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
