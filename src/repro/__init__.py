"""repro — reproduction of *Compiler Support for Exploiting Coarse-Grained
Pipelined Parallelism* (Du, Ferreira, Agrawal — SC 2003).

A compilation system for data-driven applications written in a Java-like
dialect exposing pipelined and data parallelism.  The compiler selects
candidate filter boundaries, determines required communication with a
one-pass analysis, prices decompositions with a pipeline cost model, picks
the optimal decomposition by dynamic programming, and generates filter code
for a DataCutter-style filter-stream runtime.

Quick start::

    from repro import CompileOptions, compile_source, cluster_config
    from repro.analysis import WorkloadProfile

    options = CompileOptions(env=cluster_config(1),
                             profile=WorkloadProfile({"num_packets": 10,
                                                      "packet_size": 1000}))
    result = compile_source(APP_SOURCE, registry, options)
    print(result.report())

Subpackages: :mod:`repro.lang` (dialect frontend), :mod:`repro.analysis`
(§4 analyses), :mod:`repro.cost` (§4.3 model), :mod:`repro.decompose`
(§4.4 DP), :mod:`repro.codegen` (§5), :mod:`repro.datacutter` (runtime
substrate), :mod:`repro.apps` (the four evaluation applications),
:mod:`repro.experiments` (the §6 harness).
"""

from .analysis.workload import WorkloadProfile
from .core.compiler import (
    CompilationResult,
    CompileOptions,
    analyze_source,
    compile_source,
    default_plan,
)
from .cost.environment import PAPER_CONFIGS, cluster_config, make_pipeline
from .lang import Intrinsic, IntrinsicRegistry, OpCount, parse

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "CompileOptions",
    "Intrinsic",
    "IntrinsicRegistry",
    "OpCount",
    "PAPER_CONFIGS",
    "WorkloadProfile",
    "analyze_source",
    "cluster_config",
    "compile_source",
    "default_plan",
    "make_pipeline",
    "parse",
    "__version__",
]
