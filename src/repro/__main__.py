"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — run the full compiler on a dialect source file and
  print the compilation report (atoms, per-boundary volumes, the chosen
  plan); ``--emit`` also prints the generated Python filter sources.
* ``run APP`` — compile one bundled application, execute it on an
  execution engine (``--engine threaded|process``), verify the output
  against the sequential oracle, and print stream accounting.
* ``trace APP`` — run one application with engine-native tracing and
  write the trace to disk: Chrome ``trace_event`` JSON (load in
  chrome://tracing or https://ui.perfetto.dev) or JSON lines.  Also
  prints the trace summary and, for compiled versions, the §4.3
  measured-vs-predicted cost-model table.
* ``chaos APP`` — the fault-tolerance proof: run one application twice on
  the same engine, fault-free and with an injected fault (crash /
  exception / stall on a chosen filter copy and packet) under a retry
  policy, then verify the recovered outputs are identical to the
  fault-free outputs and report restarts and recovery overhead;
  ``-o`` exports the recovery trace (with its ``restart`` spans).
* ``figures [NAMES...]`` — reproduce the paper's evaluation figures
  (default: all of fig5..fig12) and print paper-vs-measured reports.
* ``serve`` — start an in-process pipeline server (plan cache, warm
  engine, micro-batching, admission control), push a deterministic mixed
  burst of knn + vmscope requests through it, and print serving metrics;
  ``--verify`` additionally checks every response byte-identical to a
  fresh one-shot compile+execute, and ``-o`` exports the request-scoped
  trace as JSON lines.  Multi-host mode: ``--listen host:port`` serves
  remote clients over the socket transport (same admission/batching/
  plan-cache path), ``--connect host:port`` pushes the burst through a
  ``RemoteClient`` instead of an in-process server.  Observability
  artifacts: ``--metrics-out`` writes the Prometheus text exposition
  (scraped over the wire in ``--connect`` mode) and ``--trace-out``
  exports the linked request trace — serve-level stage spans joined to
  engine-level filter spans — as Chrome ``trace_event`` JSON.
* ``top`` — live terminal dashboard over a running ``serve --listen``
  server: polls the deep ``stats`` snapshot over a ``RemoteClient`` and
  renders rolling 1 s / 10 s / 60 s rates, queue/batch gauges, and
  windowed per-kind and per-stage latency percentiles.
* ``apps`` — list the bundled evaluation applications.

Intrinsic implementations cannot be supplied from the command line, so
``compile`` analyzes and decomposes with conservative summaries; use the
Python API (:func:`repro.compile_source`) for executable pipelines.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_compile(args: argparse.Namespace) -> int:
    from .analysis.workload import WorkloadProfile
    from .core.compiler import CompileOptions, compile_source
    from .cost.environment import cluster_config

    source = open(args.file).read()
    profile_params: dict[str, float] = {}
    for item in args.param or []:
        name, _, value = item.partition("=")
        profile_params[name] = float(value)
    options = CompileOptions(
        env=cluster_config(args.width),
        profile=WorkloadProfile(profile_params),
        objective=args.objective,
        backend=args.backend,
    )
    result = compile_source(source, None, options)
    print(result.report())
    if args.emit:
        for gf in result.pipeline.filters:
            print(f"\n# ===== unit C_{gf.unit} ({gf.name}) =====")
            print(gf.source)
    return 0


_APP_FACTORIES = {
    "zbuffer": ("make_zbuffer_app", {"dataset": "small"}),
    "apixels": ("make_active_pixels_app", {"dataset": "small"}),
    "knn": ("make_knn_app", {"n_points": 20_000}),
    "vmscope": ("make_vmscope_app", {"query": "large"}),
}


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    from . import apps as apps_mod
    from .cost.environment import cluster_config
    from .datacutter import EngineOptions, run_pipeline
    from .experiments.harness import _specs_for_version

    if args.packets < 1 or args.width < 1:
        print("run: --packets and --width must be >= 1")
        return 2
    factory_name, workload_defaults = _APP_FACTORIES[args.app]
    app = getattr(apps_mod, factory_name)()
    workload = app.make_workload(num_packets=args.packets, **workload_defaults)
    env = cluster_config(args.width)
    specs, _result = _specs_for_version(
        app, workload, args.version, env, backend=args.backend
    )
    t0 = time.perf_counter()
    run = run_pipeline(specs, options=EngineOptions(engine=args.engine))
    elapsed = time.perf_counter() - t0
    finals = run.payloads[-1]
    ok = workload.check(finals, workload.oracle())
    print(f"{app.name} / {args.version} on the {args.engine} engine")
    if _result is not None:
        print(f"  codegen backend: {_result.pipeline.backend}")
    print(f"  packets: {workload.num_packets}  width: {args.width}")
    print(f"  wall time: {elapsed:.3f}s")
    for stream in sorted(run.stream_bytes):
        print(
            f"  stream {stream:<40} "
            f"{run.stream_buffers.get(stream, 0):>5} buffers  "
            f"{run.stream_bytes[stream]:>12,} bytes"
        )
    print(f"  oracle check: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import apps as apps_mod
    from .cost.environment import cluster_config
    from .datacutter import EngineOptions
    from .datacutter.obs import (
        to_chrome,
        validate_chrome_trace,
        write_chrome,
        write_jsonl,
    )
    from .experiments.harness import (
        _specs_for_version,
        measure_specs,
        validate_cost_model,
    )

    if args.packets < 1 or args.width < 1:
        print("trace: --packets and --width must be >= 1")
        return 2
    factory_name, workload_defaults = _APP_FACTORIES[args.app]
    app = getattr(apps_mod, factory_name)()
    workload = app.make_workload(num_packets=args.packets, **workload_defaults)
    env = cluster_config(args.width)
    specs, result = _specs_for_version(
        app, workload, args.version, env, backend=args.backend
    )
    measured = measure_specs(
        specs,
        result,
        workload,
        env,
        args.version,
        warmup=False,
        options=EngineOptions(engine=args.engine),
    )
    trace = measured.trace

    if args.format == "chrome":
        errors = validate_chrome_trace(to_chrome(trace))
        if errors:  # pragma: no cover - exporter bug guard
            print("trace: internal error, invalid chrome export:")
            for err in errors:
                print(f"  {err}")
            return 1
        write_chrome(trace, args.out)
    else:
        write_jsonl(trace, args.out)
    print(f"{app.name} / {args.version} on the {args.engine} engine")
    print(trace.summary())
    print(f"trace written to {args.out} ({args.format})")
    if result is not None:
        report = validate_cost_model(result, measured)
        report.app = app.name
        print()
        print(report.summary())
        print(report.table())
    print(f"oracle check: {'OK' if measured.correct else 'MISMATCH'}")
    return 0 if measured.correct else 1


def _canonical_outputs(outputs) -> list:
    """Order- and identity-insensitive form of a run's output buffers,
    for byte-level comparison of a recovered run against a fault-free
    one (numpy payloads compare by shape/dtype/bytes)."""
    import pickle

    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        np = None

    def norm(obj):
        if np is not None and isinstance(obj, np.ndarray):
            return ("ndarray", obj.shape, str(obj.dtype), obj.tobytes())
        if isinstance(obj, dict):
            return tuple(sorted((k, norm(v)) for k, v in obj.items()))
        if isinstance(obj, (list, tuple)):
            return tuple(norm(v) for v in obj)
        return obj

    return sorted(
        (buf.packet, pickle.dumps(norm(buf.payload))) for buf in outputs
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import time

    from . import apps as apps_mod
    from .cost.environment import cluster_config
    from .datacutter import (
        EngineOptions,
        FaultSpec,
        RetryPolicy,
        Trace,
        run_pipeline,
    )
    from .datacutter.obs import write_chrome
    from .experiments.harness import _specs_for_version

    if args.packets < 1 or args.width < 1:
        print("chaos: --packets and --width must be >= 1")
        return 2
    factory_name, workload_defaults = _APP_FACTORIES[args.app]
    app = getattr(apps_mod, factory_name)()
    workload = app.make_workload(num_packets=args.packets, **workload_defaults)
    env = cluster_config(args.width)
    specs, _result = _specs_for_version(
        app, workload, args.version, env, backend=args.backend
    )

    names = [s.name for s in specs]
    target = args.filter or names[len(names) // 2]
    if target not in names:
        print(f"chaos: no filter named {target!r}; pipeline has: {', '.join(names)}")
        return 2

    # process runs get a generous wall-clock cap so a recovery bug fails
    # loudly instead of hanging the command
    base_opts = EngineOptions(
        engine=args.engine,
        timeout=120.0 if args.engine == "process" else None,
    )
    t0 = time.perf_counter()
    baseline = run_pipeline(specs, options=base_opts)
    clean_wall = time.perf_counter() - t0

    trace = Trace()
    fault = FaultSpec(
        filter=target, kind=args.kind, copy=args.copy, packet=args.packet_index
    )
    opts = base_opts.replace(
        trace=trace,
        retry=RetryPolicy(max_attempts=args.attempts, backoff_base=0.01, jitter=0.0),
        faults=[fault],
    )
    t0 = time.perf_counter()
    faulted = run_pipeline(specs, options=opts)
    faulted_wall = time.perf_counter() - t0

    identical = _canonical_outputs(baseline.outputs) == _canonical_outputs(
        faulted.outputs
    )
    restarts = trace.restarts()
    overhead = faulted_wall - clean_wall
    print(f"{app.name} / {args.version} on the {args.engine} engine")
    print(
        f"  injected: {fault.kind} in {target}#{fault.copy} "
        f"on packet {fault.packet}"
    )
    print(f"  fault-free wall: {clean_wall:.3f}s  recovered wall: {faulted_wall:.3f}s")
    print(f"  recovery overhead: {overhead:+.3f}s  restarts: {len(restarts)}")
    print(f"  outputs identical to fault-free run: {'YES' if identical else 'NO'}")
    if args.out:
        write_chrome(trace, args.out)
        print(f"  recovery trace written to {args.out} (chrome trace_event)")
    if not restarts:
        print(
            "  warning: the fault never fired (no restarts recorded) — "
            "check --filter/--copy/--packet-index against the routing"
        )
    return 0 if identical and restarts else 1


def _mixed_burst(count: int, mix: str, seed: int) -> list:
    """A deterministic request burst: ``mix`` is ``kind=weight,...``;
    knn query points are seeded so ``--verify`` has a stable baseline."""
    import numpy as np

    weights: dict[str, int] = {}
    for item in mix.split(","):
        kind, _, weight = item.partition("=")
        weights[kind.strip()] = int(weight) if weight else 1
    unknown = sorted(set(weights) - {"knn", "vmscope"})
    if unknown:
        raise ValueError(f"unknown kinds in --mix: {unknown}")
    rng = np.random.default_rng(seed)
    schedule = [k for k, w in sorted(weights.items()) for _ in range(w)]
    requests = []
    presets = ("small", "large")
    for i in range(count):
        kind = schedule[i % len(schedule)]
        if kind == "knn":
            # few distinct points, repeated: gives the broker coalescing
            # opportunities while still exercising multiple groups
            x, y, z = rng.integers(0, 5, size=3) / 5.0 + 0.1
            requests.append(("knn", {"x": round(x, 3), "y": round(y, 3), "z": round(z, 3)}))
        else:
            requests.append(("vmscope", {"query": presets[i % len(presets)]}))
    return requests


def _serve_services(args: argparse.Namespace) -> list:
    """The CLI's fixed service set — deterministic, so a ``--connect``
    client can rebuild the same adapters for ``--verify`` baselines."""
    from .apps import make_knn_service, make_vmscope_service

    return [
        make_knn_service(n_points=4_000, num_packets=4, backend=args.backend),
        make_vmscope_service(
            image_w=128, image_h=128, tile=32, num_packets=4, backend=args.backend
        ),
    ]


def _export_serve_artifacts(metrics, args: argparse.Namespace, indent: str = "") -> int:
    """Write the optional observability artifacts of a serve run: the
    Prometheus exposition (``--metrics-out``) and the linked request
    trace as validated Chrome ``trace_event`` JSON (``--trace-out``)."""
    from .datacutter.obs import to_chrome, validate_chrome_trace, write_chrome

    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.render_prometheus())
        print(f"{indent}prometheus metrics written to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        trace = metrics.export_trace()
        errors = validate_chrome_trace(to_chrome(trace))
        if errors:  # pragma: no cover - exporter bug guard
            print(f"{indent}trace-out: invalid chrome export:")
            for err in errors:
                print(f"{indent}  {err}")
            return 1
        write_chrome(trace, args.trace_out)
        print(
            f"{indent}request trace written to {args.trace_out} "
            "(chrome trace_event; open in Perfetto)"
        )
    return 0


def _cmd_serve_listen(args: argparse.Namespace) -> int:
    """``serve --listen host:port``: a long-running multi-host server."""
    import signal
    import threading

    from .datacutter import EngineOptions
    from .serve import PipelineServer, ServerOptions
    from .serve.transport import parse_address

    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        print(f"serve: {exc}")
        return 2
    options = ServerOptions(
        engine_options=EngineOptions(engine=args.engine),
        max_queue=args.queue,
        admission=args.policy,
        max_batch=args.max_batch,
        batch_deadline=args.batch_deadline,
        max_frame_bytes=args.max_frame,
        fuse=args.fuse,
        max_fuse_lanes=args.max_fuse_lanes,
    )
    server = PipelineServer(_serve_services(args), options)
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        with server:
            host, port = server.listen(host, port)
            print(f"pipeline server on the {args.engine} engine", flush=True)
            print(f"listening on {host}:{port}", flush=True)
            try:
                stop.wait(timeout=args.duration)  # None = until signalled
            except KeyboardInterrupt:
                pass
            stats = server.stats()
    finally:
        signal.signal(signal.SIGTERM, previous)
    print(
        f"served: {stats['served']}  executions: {stats['executions']}  "
        f"fused: {stats['fusion']['fused_executions']}  "
        f"connections: {stats['transport']['connections_opened']}  "
        f"decode errors: {stats['transport']['decode_errors']}"
    )
    if args.out:
        server.metrics.write_jsonl(args.out)
        print(f"metrics written to {args.out} (JSON lines)")
    return _export_serve_artifacts(server.metrics, args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .datacutter import EngineOptions
    from .serve import LocalClient, PipelineServer, RemoteClient, ServerOptions
    from .serve.session import oneshot

    if args.listen and args.connect:
        print("serve: --listen and --connect are mutually exclusive")
        return 2
    if args.listen:
        return _cmd_serve_listen(args)
    if args.requests < 1:
        print("serve: --requests must be >= 1")
        return 2
    services = _serve_services(args)
    try:
        requests = _mixed_burst(args.requests, args.mix, args.seed)
    except ValueError as exc:
        print(f"serve: {exc}")
        return 2

    server = None
    if args.connect:
        # remote mode: the server (same service set) runs elsewhere,
        # started with ``serve --listen host:port``
        try:
            client = RemoteClient(args.connect, timeout=600.0)
        except (OSError, ValueError) as exc:
            print(f"serve: cannot connect to {args.connect}: {exc}")
            return 2
    else:
        options = ServerOptions(
            engine_options=EngineOptions(engine=args.engine),
            max_queue=args.queue,
            admission=args.policy,
            max_batch=args.max_batch,
            batch_deadline=args.batch_deadline,
            max_frame_bytes=args.max_frame,
            fuse=args.fuse,
            max_fuse_lanes=args.max_fuse_lanes,
        )
        server = PipelineServer(services, options).start()
        client = LocalClient(server, timeout=600.0)

    try:
        with client:
            t0 = time.perf_counter()
            responses = client.burst(requests)
            wall = time.perf_counter() - t0
            stats = client.stats()
            prom_text = (
                client.prometheus()
                if args.connect and args.metrics_out
                else None
            )
    finally:
        if server is not None:
            server.stop()

    ok = [r for r in responses if r.ok]
    failed = [r for r in responses if not r.ok]
    where = (
        f"remote server at {args.connect}"
        if args.connect
        else f"pipeline server on the {args.engine} engine"
    )
    print(where)
    print(f"  requests: {len(responses)}  ok: {len(ok)}  failed: {len(failed)}")
    print(f"  wall time: {wall:.3f}s  throughput: {len(ok) / wall:.1f} req/s")
    print(
        f"  executions: {stats['executions']}  "
        f"plan-cache hits: {stats['plan_cache_hits']}  "
        f"mean batch occupancy: {stats['batch_occupancy_mean']:.2f}"
    )
    fusion = stats["fusion"]
    bypass = ", ".join(
        f"{reason}={count}" for reason, count in sorted(fusion["bypass"].items())
    )
    print(
        f"  fused executions: {fusion['fused_executions']}  "
        f"lanes: {fusion['fused_lanes']}  "
        f"mean lanes/fused: {fusion['mean_lanes_per_fused_execution']:.2f}  "
        f"bypass: {bypass or 'none'}"
    )
    lat = stats["latency"]
    print(
        f"  latency p50/p95/p99: "
        f"{lat['p50'] * 1e3:.1f} / {lat['p95'] * 1e3:.1f} / {lat['p99'] * 1e3:.1f} ms"
    )
    if args.connect:
        wire = stats["transport"]
        print(
            f"  wire: {wire['frames_in']} frames in / {wire['frames_out']} out  "
            f"{wire['bytes_in']:,} B in / {wire['bytes_out']:,} B out  "
            f"decode errors: {wire['decode_errors']}"
        )
    for response in failed:
        print(f"  FAILED #{response.id} {response.kind}: {response.status}")

    if args.out and server is not None:
        server.metrics.write_jsonl(args.out)
        print(f"  metrics written to {args.out} (JSON lines)")
    if server is not None:
        rc = _export_serve_artifacts(server.metrics, args, indent="  ")
        if rc:
            return rc
    else:
        if args.metrics_out and prom_text is not None:
            # remote mode: scrape the listener's registry over the wire
            with open(args.metrics_out, "w") as fh:
                fh.write(prom_text)
            print(f"  prometheus metrics written to {args.metrics_out}")
        if args.trace_out:
            print(
                "  trace-out: unavailable in --connect mode "
                "(use --trace-out on the --listen side)"
            )

    if failed:
        return 1
    if args.verify:
        # one fresh one-shot compile+execute per distinct request body;
        # every served response must be byte-identical to it.  In
        # --connect mode the baselines are computed locally from the same
        # deterministic service set the listener was started with.
        baselines: dict[str, object] = {}
        mismatches = 0
        by_kind = {s.name: s for s in services}
        for (kind, body), response in zip(requests, responses):
            key = f"{kind}/{sorted(body.items())}"
            if key not in baselines:
                baselines[key] = oneshot(
                    by_kind[kind].plan(body),
                    EngineOptions(engine=args.engine),
                )
            expect = baselines[key]
            if response.value.tobytes() != expect.tobytes():
                mismatches += 1
                print(f"  VERIFY MISMATCH #{response.id} {kind} {body}")
        verdict = "OK" if mismatches == 0 else f"{mismatches} MISMATCHES"
        print(
            f"  verify vs one-shot ({len(baselines)} distinct requests): {verdict}"
        )
        if mismatches:
            return 1
    return 0


def _parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot key like ``stage{kind="knn",stage="execute"}``
    into its family name and label dict (label values never contain
    commas or quotes in this registry)."""
    name, brace, rest = key.partition("{")
    labels: dict[str, str] = {}
    if brace:
        for part in rest.rstrip("}").split(","):
            k, _, v = part.partition("=")
            labels[k] = v.strip('"')
    return name, labels


def _render_top(snap: dict, where: str) -> str:
    """One ``top`` frame from a deep stats snapshot."""
    import time

    windows = snap.get("windows") or {}
    counters = windows.get("counters", {})
    gauges = windows.get("gauges", {})
    hists = windows.get("histograms", {})
    lines = [
        f"repro serve top — {where} — {time.strftime('%H:%M:%S')}",
        f"  served {snap.get('served', 0)}  executions {snap.get('executions', 0)}"
        f"  errors {snap.get('errors', 0)}  shed {snap.get('shed', 0)}"
        f"  expired {snap.get('expired', 0)}"
        f"  dropped spans {snap.get('dropped_spans', 0)}",
    ]
    qd = gauges.get("queue_depth", {})
    bs = gauges.get("batch_size", {})
    ca = gauges.get("connections_active", {})
    lines.append(
        f"  queue depth {qd.get('last', 0):g} (peak {qd.get('peak', 0):g})"
        f"  batch size {bs.get('last', 0):g} (peak {bs.get('peak', 0):g})"
        f"  connections {ca.get('last', 0):g}"
    )
    lines.append("")
    lines.append(f"  {'rate (events/s)':<24} {'1s':>9} {'10s':>9} {'60s':>9}")
    for name in (
        "admitted",
        "served",
        "errors",
        "shed",
        "expired",
        "batches",
        "fused_executions",
    ):
        entry = counters.get(name)
        if not entry:
            continue
        rates = entry.get("rates", {})
        lines.append(
            f"  {name:<24} {rates.get('1s', 0.0):>9.1f}"
            f" {rates.get('10s', 0.0):>9.1f} {rates.get('60s', 0.0):>9.2f}"
        )

    def hist_rows(family: str, label_fmt) -> list[str]:
        rows = []
        for key in sorted(hists):
            name, labels = _parse_metric_key(key)
            if name != family:
                continue
            entry = hists[key]
            win = entry.get("10s") or {}
            n = int(win.get("count", 0))
            # quiet families fall back to lifetime percentiles so the
            # table stays readable between bursts
            src, n_shown, tag = (
                (win, n, "10s")
                if n
                else (entry.get("overall", {}), int(entry.get("count", 0)), "all")
            )
            rows.append(
                f"  {label_fmt(labels):<28}"
                f" {src.get('p50', 0.0) * 1e3:>9.2f}"
                f" {src.get('p95', 0.0) * 1e3:>9.2f}"
                f" {src.get('p99', 0.0) * 1e3:>9.2f}"
                f" {n_shown:>8} {tag:>4}"
            )
        return rows

    request_rows = hist_rows("request", lambda lb: lb.get("kind", "?"))
    if request_rows:
        lines.append("")
        lines.append(
            f"  {'request latency (ms)':<28} {'p50':>9} {'p95':>9} {'p99':>9}"
            f" {'n':>8} {'win':>4}"
        )
        lines.extend(request_rows)
    stage_rows = hist_rows(
        "stage", lambda lb: f"{lb.get('kind', '?')}/{lb.get('stage', '?')}"
    )
    if stage_rows:
        lines.append("")
        lines.append(
            f"  {'stage latency (ms)':<28} {'p50':>9} {'p95':>9} {'p99':>9}"
            f" {'n':>8} {'win':>4}"
        )
        lines.extend(stage_rows)
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """``top --connect host:port``: poll deep stats, render frames."""
    import time

    from .serve import RemoteClient, ServerClosed

    if args.interval <= 0:
        print("top: --interval must be > 0")
        return 2
    try:
        client = RemoteClient(args.connect, timeout=30.0)
    except (OSError, ValueError) as exc:
        print(f"top: cannot connect to {args.connect}: {exc}")
        return 2
    clear = "" if args.no_clear else "\x1b[2J\x1b[H"
    frames = 0
    try:
        with client:
            while True:
                snap = client.stats(deep=True)
                print(f"{clear}{_render_top(snap, args.connect)}", flush=True)
                frames += 1
                if args.iterations and frames >= args.iterations:
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    except (RuntimeError, ServerClosed) as exc:
        print(f"top: {exc}")
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments.figures import ALL_FIGURES

    names = args.names or list(ALL_FIGURES)
    bad = [n for n in names if n not in ALL_FIGURES]
    if bad:
        print(f"unknown figures {bad}; choose from {sorted(ALL_FIGURES)}")
        return 2
    ok = True
    for name in names:
        figure = ALL_FIGURES[name](engine=args.engine, backend=args.backend)
        print(figure.report())
        print()
        ok = ok and figure.ok
    return 0 if ok else 1


def _cmd_apps(_args: argparse.Namespace) -> int:
    from .apps import (
        make_active_pixels_app,
        make_knn_app,
        make_vmscope_app,
        make_zbuffer_app,
    )

    for factory in (
        make_zbuffer_app,
        make_active_pixels_app,
        make_knn_app,
        make_vmscope_app,
    ):
        app = factory()
        print(f"{app.name:<20} {app.notes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Coarse-grained pipelined-parallelism compiler (SC 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a dialect source file")
    p_compile.add_argument("file", help="dialect source file")
    p_compile.add_argument(
        "--width", type=int, default=1, help="pipeline width (w-w-1 config)"
    )
    p_compile.add_argument(
        "--objective",
        choices=["fill", "total", "brute"],
        default="total",
        help="decomposition objective (fill = published Fig 3)",
    )
    p_compile.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="workload profile parameter (repeatable)",
    )
    p_compile.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_compile.add_argument(
        "--emit", action="store_true", help="print generated filter sources"
    )
    p_compile.set_defaults(fn=_cmd_compile)

    p_run = sub.add_parser("run", help="compile + execute one application")
    p_run.add_argument("app", choices=sorted(_APP_FACTORIES))
    p_run.add_argument(
        "--engine",
        choices=["threaded", "process"],
        default="threaded",
        help="execution engine (process = one OS process per filter copy)",
    )
    p_run.add_argument(
        "--version",
        choices=["Default", "Decomp-Comp", "Decomp-Manual"],
        default="Decomp-Comp",
        help="pipeline version to run",
    )
    p_run.add_argument(
        "--width", type=int, default=1, help="pipeline width (w-w-1 config)"
    )
    p_run.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_run.add_argument(
        "--packets", type=int, default=8, help="number of input packets"
    )
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run one application with tracing and export the trace"
    )
    p_trace.add_argument("app", choices=sorted(_APP_FACTORIES))
    p_trace.add_argument(
        "--engine",
        choices=["threaded", "process"],
        default="threaded",
        help="execution engine to trace",
    )
    p_trace.add_argument(
        "--version",
        choices=["Default", "Decomp-Comp", "Decomp-Manual"],
        default="Decomp-Comp",
        help="pipeline version to run",
    )
    p_trace.add_argument(
        "--width", type=int, default=1, help="pipeline width (w-w-1 config)"
    )
    p_trace.add_argument(
        "--packets", type=int, default=8, help="number of input packets"
    )
    p_trace.add_argument(
        "-o",
        "--out",
        default="trace.json",
        help="output path (default trace.json)",
    )
    p_trace.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_trace.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="chrome = trace_event JSON for chrome://tracing / Perfetto; "
        "jsonl = one span/sample per line",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject a fault into one run and verify recovery heals it",
    )
    p_chaos.add_argument("app", choices=sorted(_APP_FACTORIES))
    p_chaos.add_argument(
        "--engine",
        choices=["threaded", "process"],
        default="threaded",
        help="execution engine to inject into",
    )
    p_chaos.add_argument(
        "--version",
        choices=["Default", "Decomp-Comp", "Decomp-Manual"],
        default="Decomp-Comp",
        help="pipeline version to run",
    )
    p_chaos.add_argument(
        "--width", type=int, default=1, help="pipeline width (w-w-1 config)"
    )
    p_chaos.add_argument(
        "--packets", type=int, default=8, help="number of input packets"
    )
    p_chaos.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_chaos.add_argument(
        "--filter",
        default=None,
        help="logical filter to fault (default: the middle pipeline stage)",
    )
    p_chaos.add_argument(
        "--kind",
        choices=["crash", "exception", "stall", "drop_heartbeat"],
        default="crash",
        help="fault kind (crash = abrupt worker death, no goodbye)",
    )
    p_chaos.add_argument(
        "--copy", type=int, default=0, help="transparent-copy index to fault"
    )
    p_chaos.add_argument(
        "--packet-index",
        type=int,
        default=0,
        help="packet on which the fault fires",
    )
    p_chaos.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="retry budget per filter copy (first run included)",
    )
    p_chaos.add_argument(
        "-o",
        "--out",
        default=None,
        help="also export the recovery trace (chrome trace_event JSON)",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_fig = sub.add_parser("figures", help="reproduce evaluation figures")
    p_fig.add_argument("names", nargs="*", help="fig5 .. fig12 (default all)")
    p_fig.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_fig.add_argument(
        "--engine",
        choices=["threaded", "process"],
        default="threaded",
        help="execution engine for the measured runs",
    )
    p_fig.set_defaults(fn=_cmd_figures)

    p_serve = sub.add_parser(
        "serve",
        help="start a pipeline server and push a mixed request burst through it",
    )
    p_serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve remote clients over the socket transport instead of "
        "pushing a local burst (port 0 picks a free port; runs until "
        "--duration elapses or SIGINT/SIGTERM)",
    )
    p_serve.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="push the burst through a RemoteClient against a server "
        "started elsewhere with --listen",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds a --listen server stays up (default: until signalled)",
    )
    p_serve.add_argument(
        "--max-frame",
        type=int,
        default=64 * 1024 * 1024,
        help="wire-frame size cap in bytes (default 64 MiB); oversized "
        "frames get a structured error response",
    )
    p_serve.add_argument(
        "--engine",
        choices=["threaded", "process"],
        default="threaded",
        help="execution engine behind the warm session",
    )
    p_serve.add_argument(
        "--requests", type=int, default=60, help="burst size (default 60)"
    )
    p_serve.add_argument(
        "--mix",
        default="knn=3,vmscope=1",
        help="request mix as kind=weight,... (default knn=3,vmscope=1)",
    )
    p_serve.add_argument(
        "--policy",
        choices=["block", "reject", "shed-oldest"],
        default="block",
        help="admission policy when the queue is full",
    )
    p_serve.add_argument(
        "--queue", type=int, default=256, help="admission queue capacity"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch size budget"
    )
    p_serve.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fuse distinct-param requests of a fusable service into one "
        "lane-batched execution (--no-fuse falls back to equal-param "
        "coalescing only)",
    )
    p_serve.add_argument(
        "--max-fuse-lanes",
        type=int,
        default=32,
        help="cap on lanes per fused execution (default 32)",
    )
    p_serve.add_argument(
        "--batch-deadline",
        type=float,
        default=0.005,
        help="seconds the batcher waits for followers (default 0.005)",
    )
    p_serve.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="codegen backend for foreach bodies (vector = columnar NumPy; auto = $REPRO_BACKEND or scalar)",
    )
    p_serve.add_argument(
        "--seed", type=int, default=7, help="burst RNG seed (deterministic)"
    )
    p_serve.add_argument(
        "--verify",
        action="store_true",
        help="check every response byte-identical to a fresh one-shot run",
    )
    p_serve.add_argument(
        "-o",
        "--out",
        default=None,
        help="export serving metrics as JSON lines",
    )
    p_serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the Prometheus text exposition on exit (in --connect "
        "mode the listener's registry is scraped over the wire)",
    )
    p_serve.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export the linked request trace as Chrome trace_event JSON "
        "(local burst and --listen modes; open in Perfetto)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running serve --listen server",
    )
    p_top.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="address of a server started with serve --listen",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds (default 1.0)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (default 0 = until ^C)",
    )
    p_top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (logs, CI)",
    )
    p_top.set_defaults(fn=_cmd_top)

    p_apps = sub.add_parser("apps", help="list bundled applications")
    p_apps.set_defaults(fn=_cmd_apps)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
