"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — run the full compiler on a dialect source file and
  print the compilation report (atoms, per-boundary volumes, the chosen
  plan); ``--emit`` also prints the generated Python filter sources.
* ``figures [NAMES...]`` — reproduce the paper's evaluation figures
  (default: all of fig5..fig12) and print paper-vs-measured reports.
* ``apps`` — list the bundled evaluation applications.

Intrinsic implementations cannot be supplied from the command line, so
``compile`` analyzes and decomposes with conservative summaries; use the
Python API (:func:`repro.compile_source`) for executable pipelines.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_compile(args: argparse.Namespace) -> int:
    from .analysis.workload import WorkloadProfile
    from .core.compiler import CompileOptions, compile_source
    from .cost.environment import cluster_config

    source = open(args.file).read()
    profile_params: dict[str, float] = {}
    for item in args.param or []:
        name, _, value = item.partition("=")
        profile_params[name] = float(value)
    options = CompileOptions(
        env=cluster_config(args.width),
        profile=WorkloadProfile(profile_params),
        objective=args.objective,
    )
    result = compile_source(source, None, options)
    print(result.report())
    if args.emit:
        for gf in result.pipeline.filters:
            print(f"\n# ===== unit C_{gf.unit} ({gf.name}) =====")
            print(gf.source)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments.figures import ALL_FIGURES

    names = args.names or list(ALL_FIGURES)
    bad = [n for n in names if n not in ALL_FIGURES]
    if bad:
        print(f"unknown figures {bad}; choose from {sorted(ALL_FIGURES)}")
        return 2
    ok = True
    for name in names:
        figure = ALL_FIGURES[name]()
        print(figure.report())
        print()
        ok = ok and figure.ok
    return 0 if ok else 1


def _cmd_apps(_args: argparse.Namespace) -> int:
    from .apps import (
        make_active_pixels_app,
        make_knn_app,
        make_vmscope_app,
        make_zbuffer_app,
    )

    for factory in (
        make_zbuffer_app,
        make_active_pixels_app,
        make_knn_app,
        make_vmscope_app,
    ):
        app = factory()
        print(f"{app.name:<20} {app.notes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Coarse-grained pipelined-parallelism compiler (SC 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a dialect source file")
    p_compile.add_argument("file", help="dialect source file")
    p_compile.add_argument(
        "--width", type=int, default=1, help="pipeline width (w-w-1 config)"
    )
    p_compile.add_argument(
        "--objective",
        choices=["fill", "total", "brute"],
        default="total",
        help="decomposition objective (fill = published Fig 3)",
    )
    p_compile.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="workload profile parameter (repeatable)",
    )
    p_compile.add_argument(
        "--emit", action="store_true", help="print generated filter sources"
    )
    p_compile.set_defaults(fn=_cmd_compile)

    p_fig = sub.add_parser("figures", help="reproduce evaluation figures")
    p_fig.add_argument("names", nargs="*", help="fig5 .. fig12 (default all)")
    p_fig.set_defaults(fn=_cmd_figures)

    p_apps = sub.add_parser("apps", help="list bundled applications")
    p_apps.set_defaults(fn=_cmd_apps)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
