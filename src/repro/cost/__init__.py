"""Cost model (paper §4.3): pipeline environments, CostComp/CostComm, and
the bottleneck execution-time formula."""

from .environment import (
    ComputeUnit,
    Link,
    MYRINET_BANDWIDTH,
    MYRINET_LATENCY,
    PAPER_CONFIGS,
    PENTIUM_700_POWER,
    PipelineEnv,
    cluster_config,
    make_pipeline,
)
from .model import (
    DEFAULT_WEIGHTS,
    OpWeights,
    StageTimes,
    cost_comm,
    cost_comp,
    estimate_total_time,
    pipeline_time,
    stage_times_for_assignment,
)

__all__ = [
    "ComputeUnit",
    "DEFAULT_WEIGHTS",
    "Link",
    "MYRINET_BANDWIDTH",
    "MYRINET_LATENCY",
    "OpWeights",
    "PAPER_CONFIGS",
    "PENTIUM_700_POWER",
    "PipelineEnv",
    "StageTimes",
    "cluster_config",
    "cost_comm",
    "cost_comp",
    "estimate_total_time",
    "make_pipeline",
    "pipeline_time",
    "stage_times_for_assignment",
]
