"""The execution-time cost model (paper §4.3).

Total pipeline time over ``N`` packets with per-packet stage times
``T(C_i)`` and link times ``T(L_i)``::

    (N - 1) * T(bottleneck) + sum_i T(C_i) + sum_i T(L_i)

where the bottleneck is the slowest stage or link.  ``CostComp`` converts a
filter's weighted operation count into seconds on a unit; ``CostComm``
converts a boundary's byte volume into seconds on a link.  Transparent
copies divide a stage's (and its feeding link's) per-packet load by the
stage width — the §6 speedup mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.intrinsics import OpCount
from .environment import ComputeUnit, Link, PipelineEnv


@dataclass(frozen=True, slots=True)
class OpWeights:
    """Relative costs of the three op classes (flop-normalized)."""

    flop: float = 1.0
    iop: float = 0.5
    branch: float = 0.25

    def total(self, ops: OpCount) -> float:
        return ops.flops * self.flop + ops.iops * self.iop + ops.branches * self.branch


DEFAULT_WEIGHTS = OpWeights()


def cost_comp(unit: ComputeUnit, task_ops: OpCount | float,
              weights: OpWeights = DEFAULT_WEIGHTS) -> float:
    """CostComp(P(C_j), Task(f_i)): seconds for one packet's worth of work
    of a filter on a unit (one transparent copy)."""
    total = task_ops if isinstance(task_ops, (int, float)) else weights.total(task_ops)
    return float(total) / unit.power


def cost_comm(link: Link, volume_bytes: float) -> float:
    """CostComm(B(L_j), Vol(f_i)): seconds to move one packet's boundary
    volume across a link."""
    return volume_bytes / link.bandwidth + link.latency


@dataclass(slots=True)
class StageTimes:
    """Per-packet times of a concrete decomposition: ``comp[j]`` is
    T(C_{j+1}) and ``comm[j]`` is T(L_{j+1}) — already divided by stage
    width where transparent copies apply.

    ``drain[j]`` marks links past the last filter: they carry the final
    output once per run, so they count toward fill time but never toward
    the steady-state bottleneck."""

    comp: list[float] = field(default_factory=list)
    comm: list[float] = field(default_factory=list)
    drain: list[bool] = field(default_factory=list)

    def _is_drain(self, j: int) -> bool:
        return j < len(self.drain) and self.drain[j]

    @property
    def bottleneck(self) -> float:
        candidates = list(self.comp) + [
            t for j, t in enumerate(self.comm) if not self._is_drain(j)
        ]
        return max(candidates) if candidates else 0.0

    def fill_time(self) -> float:
        return sum(self.comp) + sum(self.comm)


def pipeline_time(times: StageTimes, num_packets: int) -> float:
    """The §4.3 formula: (N-1) * T(bottleneck) + Σ T(C_i) + Σ T(L_i)."""
    if num_packets < 1:
        return 0.0
    return (num_packets - 1) * times.bottleneck + times.fill_time()


def stage_times_for_assignment(
    env: PipelineEnv,
    unit_ops: list[OpCount | float],
    link_volumes: list[float],
    weights: OpWeights = DEFAULT_WEIGHTS,
    use_widths: bool = True,
) -> StageTimes:
    """Build :class:`StageTimes` from per-unit op totals and per-link byte
    volumes.  With ``use_widths``, a stage of width w processes packets in
    round-robin across w transparent copies, so its *steady-state*
    per-packet time divides by w; the link feeding a width-w consumer
    likewise serves w packet streams in parallel at the paper's
    configurations (w data nodes feed w compute nodes pairwise)."""
    if len(unit_ops) != env.m or len(link_volumes) != env.m - 1:
        raise ValueError("one op total per unit and one volume per link required")
    comp: list[float] = []
    for j in range(env.m):
        unit = env.units[j]
        t = cost_comp(unit, unit_ops[j], weights)
        if use_widths:
            t /= unit.width
        comp.append(t)
    comm: list[float] = []
    for j in range(env.m - 1):
        link = env.links[j]
        t = cost_comm(link, link_volumes[j])
        if use_widths:
            # parallel streams: limited by the narrower endpoint
            streams = min(env.units[j].width, env.units[j + 1].width)
            t /= streams
        comm.append(t)
    return StageTimes(comp=comp, comm=comm)


def estimate_total_time(
    env: PipelineEnv,
    unit_ops: list[OpCount | float],
    link_volumes: list[float],
    num_packets: int,
    weights: OpWeights = DEFAULT_WEIGHTS,
    use_widths: bool = True,
) -> float:
    """End-to-end §4.3 estimate for a concrete decomposition."""
    times = stage_times_for_assignment(
        env, unit_ops, link_volumes, weights, use_widths
    )
    return pipeline_time(times, num_packets)
