"""The execution environment: a pipeline of computing units and links
(paper §4.1, §4.3, §6.2).

    "We denote the computing units in the pipeline by C_1, ..., C_m.  The
    connection between units C_i and C_{i+1} is denoted by L_i."

The first unit hosts the data, the last views the results.  Units carry a
*power* (weighted operations per second) and a *width* — the number of
transparent copies available at that stage (the paper's 1-1-1 / 2-2-1 /
4-4-1 configurations); links carry bandwidth (bytes/second) and latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence


@dataclass(frozen=True, slots=True)
class ComputeUnit:
    """One pipeline stage's compute resource."""

    name: str
    power: float  # weighted ops / second (see OpCount.total)
    width: int = 1  # transparent copies available at this stage

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError(f"unit {self.name}: power must be positive")
        if self.width < 1:
            raise ValueError(f"unit {self.name}: width must be >= 1")


@dataclass(frozen=True, slots=True)
class Link:
    """Connection between consecutive units."""

    name: str
    bandwidth: float  # bytes / second
    latency: float = 0.0  # seconds per buffer

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name}: latency must be >= 0")


@dataclass(frozen=True, slots=True)
class PipelineEnv:
    """C_1..C_m and L_1..L_{m-1}."""

    units: tuple[ComputeUnit, ...]
    links: tuple[Link, ...]

    def __post_init__(self) -> None:
        if len(self.units) < 1:
            raise ValueError("a pipeline needs at least one computing unit")
        if len(self.links) != len(self.units) - 1:
            raise ValueError(
                f"{len(self.units)} units need {len(self.units) - 1} links, "
                f"got {len(self.links)}"
            )

    @property
    def m(self) -> int:
        return len(self.units)

    def unit(self, j: int) -> ComputeUnit:
        """1-based accessor: C_j."""
        return self.units[j - 1]

    def link(self, j: int) -> Link:
        """1-based accessor: L_j connects C_j and C_{j+1}."""
        return self.links[j - 1]

    def __iter__(self) -> Iterator[ComputeUnit]:
        return iter(self.units)

    def with_widths(self, widths: Sequence[int]) -> "PipelineEnv":
        if len(widths) != self.m:
            raise ValueError("one width per unit required")
        return PipelineEnv(
            tuple(replace(u, width=w) for u, w in zip(self.units, widths)),
            self.links,
        )


def make_pipeline(
    powers: Sequence[float],
    bandwidths: Sequence[float],
    widths: Sequence[int] | None = None,
    latencies: Sequence[float] | None = None,
    names: Sequence[str] | None = None,
) -> PipelineEnv:
    """Convenience constructor used throughout tests and experiments."""
    m = len(powers)
    widths = list(widths) if widths is not None else [1] * m
    latencies = list(latencies) if latencies is not None else [0.0] * (m - 1)
    names = list(names) if names is not None else [f"C{i + 1}" for i in range(m)]
    units = tuple(
        ComputeUnit(names[i], float(powers[i]), int(widths[i])) for i in range(m)
    )
    links = tuple(
        Link(f"L{i + 1}", float(bandwidths[i]), float(latencies[i]))
        for i in range(m - 1)
    )
    return PipelineEnv(units, links)


# ---------------------------------------------------------------------------
# The paper's cluster configurations (§6.2)
# ---------------------------------------------------------------------------

#: Weighted ops/second for a 700 MHz Pentium III-class node: the paper's
#: cluster.  One weighted op ~ a flop with our default OpCount weights.
PENTIUM_700_POWER = 250e6

#: Myrinet LANai 7.0 point-to-point bandwidth, ~1 Gbit/s effective.
MYRINET_BANDWIDTH = 125e6

#: Per-buffer latency on Myrinet within one cluster.
MYRINET_LATENCY = 50e-6


def cluster_config(width: int, *, stages: int = 3) -> PipelineEnv:
    """The paper's w-w-1 configurations: data nodes, compute nodes, and one
    view node, all 700 MHz Pentiums on Myrinet.

    ``cluster_config(1)`` is 1-1-1, ``cluster_config(2)`` is 2-2-1,
    ``cluster_config(4)`` is 4-4-1 (§6.2)."""
    if stages != 3:
        raise ValueError("the paper's configurations have 3 stages")
    widths = [width, width, 1]
    return make_pipeline(
        powers=[PENTIUM_700_POWER] * 3,
        bandwidths=[MYRINET_BANDWIDTH] * 2,
        widths=widths,
        latencies=[MYRINET_LATENCY] * 2,
        names=["data", "compute", "view"],
    )


#: Name -> configuration, as used in every §6 figure.
PAPER_CONFIGS = {
    "1-1-1": cluster_config(1),
    "2-2-1": cluster_config(2),
    "4-4-1": cluster_config(4),
}
