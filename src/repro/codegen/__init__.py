"""Code generation (paper §5): boundary layouts with instance-/field-wise
packing, packet serialization, dialect-to-Python translation, and per-unit
filter emission."""

from .buffers import BatchBuilder, RecordBatch, pack, unpack
from .filtergen import (
    CompiledPipeline,
    FilterGenerator,
    GeneratedFilter,
    RuntimeConfig,
)
from .layout import (
    ColumnSpec,
    LayoutBuilder,
    PacketFieldSpec,
    PacketLayout,
    dtype_for,
    mangle,
)
from .pygen import CodegenError, NameEnv, PyGen, generate_runtime_class
from .runtime_support import FINAL_PACKET, RawPacket, ragged_from_rows

__all__ = [
    "BatchBuilder",
    "CodegenError",
    "ColumnSpec",
    "CompiledPipeline",
    "FINAL_PACKET",
    "FilterGenerator",
    "GeneratedFilter",
    "LayoutBuilder",
    "NameEnv",
    "PacketFieldSpec",
    "PacketLayout",
    "PyGen",
    "RawPacket",
    "RecordBatch",
    "RuntimeConfig",
    "dtype_for",
    "generate_runtime_class",
    "mangle",
    "pack",
    "ragged_from_rows",
    "unpack",
]
