"""Columnar (vector) codegen backend.

The scalar backend reproduces the paper's §6.5 code shape faithfully: a
per-record Python loop with an ``if not (guard): continue`` per conditional.
That shape is also why the compiled pipelines trail the §4.3 cost-model
predictions by 20–500× under CPython (see the calibration tables in
EXPERIMENTS.md).  The dialect guarantees exactly what data-parallel
lowering needs — ``foreach`` iterations are order-independent, domain
elements never alias, and reductions are associative and commutative — so
each fused element loop may legally be compiled to columnar NumPy instead:

* element-field reads become column views on the input batch,
* straight-line arithmetic becomes one ufunc expression per statement,
* a guard becomes a boolean mask that *compresses* the live columns
  (the §6.5 "conditional vs stride" gap, eliminated),
* ``if``/``else`` becomes select (``np.where``) over per-branch values,
* intrinsic calls dispatch to their registered **batch form**
  (:attr:`repro.lang.intrinsics.Intrinsic.batch_fn`), and
* reduction updates call ``batch_<method>`` on the runtime class once per
  packet instead of once per record.

:func:`analyze_group` decides *per fused loop* whether this lowering is
sound; anything it cannot prove falls back to the scalar loop, so partially
vectorizable programs still compile (the generated source records the
reason as a comment).  Both backends must produce byte-identical packed
batches — elementwise ufuncs neither reorder nor reassociate float
operations, and the differential suite in ``tests/test_vectorize.py``
asserts identity on all four applications.

Two invariants keep the lowering observationally equal to the scalar
loop.  First, generated columnar code never mutates an array in place:
every assignment — compound assignment included — *rebinds* its target,
because the current binding may be a zero-copy view of the caller's
packet/batch column or the saved pre-branch value of an ``if``/``else``
merge.  Second, each vectorized group runs under
``np.errstate(all='ignore')``: eager ``&``/``|`` and both-branch
``np.where`` evaluation compute lanes the scalar code short-circuits
past, and those dead lanes must not surface as FP warnings or errors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..lang import ast
from ..lang.types import VarSymbol
from .layout import PacketLayout, mangle
from .pygen import (
    _PREC_PY,
    CodegenError,
    NameEnv,
    PyGen,
    _is_int_type,
    _safe,
    zero_value,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.boundaries import FilterChain

BACKENDS = ("scalar", "vector")
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: str) -> str:
    """Resolve a ``CompileOptions.backend`` value to a concrete backend.

    ``"auto"`` consults the ``REPRO_BACKEND`` environment variable (used by
    the CI matrix job) and defaults to ``"scalar"``."""
    if backend == "auto":
        backend = os.environ.get(ENV_VAR, "").strip() or "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown codegen backend {backend!r}; expected one of "
            f"{BACKENDS + ('auto',)}"
        )
    return backend


# ---------------------------------------------------------------------------
# Vectorizability analysis
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Decision:
    """Outcome of the per-loop vectorizability analysis."""

    ok: bool
    reason: str = ""


class _Analyzer:
    def __init__(
        self,
        chain: "FilterChain",
        red_classes: Mapping[str, type],
        batch_intrinsics: Mapping[str, Callable],
    ) -> None:
        self.chain = chain
        self.red_classes = red_classes
        self.batch_intrinsics = batch_intrinsics

    def check_group(self, group: list[int]) -> Decision:
        for i in group:
            atom = self.chain.atom(i)
            if atom.guard is not None:
                reason = self._expr(atom.guard, in_branch=False)
                if reason:
                    return Decision(False, f"atom f{i} guard: {reason}")
            for stmt in atom.stmts:
                reason = self._stmt(stmt, in_branch=False)
                if reason:
                    return Decision(False, f"atom f{i}: {reason}")
        return Decision(True)

    # -- statements ---------------------------------------------------------
    def _stmt(self, node: ast.Stmt, in_branch: bool) -> str | None:
        if isinstance(node, ast.Block):
            for inner in node.body:
                reason = self._stmt(inner, in_branch)
                if reason:
                    return reason
            return None
        if isinstance(node, ast.VarDecl):
            sym = node.symbol
            if isinstance(sym, VarSymbol) and sym.is_reduction:
                return f"reduction '{sym.name}' declared inside element loop"
            if node.init is not None:
                return self._expr(node.init, in_branch)
            return None
        if isinstance(node, ast.Assign):
            target = node.target
            if not isinstance(target, ast.Name):
                return "assignment through a field or index"
            sym = target.symbol
            if isinstance(sym, VarSymbol):
                if sym in self.chain.elem_vars:
                    return f"assignment to element '{sym.name}'"
                if sym.is_reduction:
                    return f"assignment to reduction '{sym.name}'"
            return self._expr(node.value, in_branch)
        if isinstance(node, ast.ExprStmt):
            e = node.expr
            if self._is_reduction_update(e):
                assert isinstance(e, ast.MethodCall)
                if in_branch:
                    return "reduction update under if/else"
                reason = self._reduction_update(e)
                if reason:
                    return reason
                for a in e.args:
                    r = self._expr(a, in_branch)
                    if r:
                        return r
                return None
            return self._expr(e, in_branch)
        if isinstance(node, ast.If):
            reason = self._expr(node.cond, in_branch)
            if reason:
                return reason
            reason = self._stmt(node.then, in_branch=True)
            if reason:
                return reason
            if node.other is not None:
                return self._stmt(node.other, in_branch=True)
            return None
        return f"{type(node).__name__} not vectorizable"

    @staticmethod
    def _is_reduction_update(e: ast.Expr) -> bool:
        return (
            isinstance(e, ast.MethodCall)
            and isinstance(e.obj, ast.Name)
            and isinstance(e.obj.symbol, VarSymbol)
            and e.obj.symbol.is_reduction
        )

    def _reduction_update(self, e: ast.MethodCall) -> str | None:
        assert isinstance(e.obj, ast.Name) and isinstance(e.obj.symbol, VarSymbol)
        root = e.obj.symbol.name
        cls = self.red_classes.get(root)
        if cls is None:
            return f"no runtime class for reduction '{root}'"
        if not hasattr(cls, f"batch_{e.method}"):
            return (
                f"reduction class {cls.__name__} has no batch form "
                f"'batch_{e.method}'"
            )
        return None

    # -- expressions --------------------------------------------------------
    def _expr(self, e: ast.Expr, in_branch: bool) -> str | None:
        if isinstance(e, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return None
        if isinstance(e, ast.Name):
            sym = e.symbol
            if isinstance(sym, VarSymbol):
                if sym in self.chain.elem_vars:
                    return f"whole-element use of '{sym.name}'"
                if sym.is_reduction:
                    return f"reduction '{sym.name}' used as a value"
            return None
        if isinstance(e, ast.FieldAccess):
            base = e.obj
            if (
                isinstance(base, ast.Name)
                and isinstance(base.symbol, VarSymbol)
                and base.symbol in self.chain.elem_vars
            ):
                return None  # element-field read -> column view
            return f"field access '.{e.field_name}' on a non-element value"
        if isinstance(e, ast.Unary):
            return self._expr(e.operand, in_branch)
        if isinstance(e, ast.Binary):
            return self._expr(e.left, in_branch) or self._expr(
                e.right, in_branch
            )
        if isinstance(e, ast.Ternary):
            return (
                self._expr(e.cond, in_branch)
                or self._expr(e.then, in_branch)
                or self._expr(e.other, in_branch)
            )
        if isinstance(e, ast.Call):
            if e.target_kind != "intrinsic":
                return "dialect method call has no batch form"
            name = e.target.name  # type: ignore[union-attr]
            if name not in self.batch_intrinsics:
                return f"intrinsic '{name}' has no batch form"
            if in_branch:
                # a masked call would execute on rows the scalar code skips
                return f"intrinsic call '{name}' under if/else"
            for a in e.args:
                reason = self._expr(a, in_branch)
                if reason:
                    return reason
            return None
        if isinstance(e, ast.MethodCall):
            return "method call inside an expression"
        return f"{type(e).__name__} not vectorizable"


def analyze_group(
    chain: "FilterChain",
    group: list[int],
    red_classes: Mapping[str, type],
    batch_intrinsics: Mapping[str, Callable],
) -> Decision:
    """Decide whether one fused element loop can be lowered columnar.

    An empty group (a pure forwarding loop) is always vectorizable."""
    if not group:
        return Decision(True)
    return _Analyzer(chain, red_classes, batch_intrinsics).check_group(group)


# ---------------------------------------------------------------------------
# Columnar expression translation
# ---------------------------------------------------------------------------


class VectorPyGen(PyGen):
    """Dialect expression -> columnar NumPy expression.

    Differences from the scalar translator: ``&&``/``||`` become eager
    elementwise ``&``/``|`` (sound here because the analysis only admits
    pure arithmetic operands), ``!`` becomes ``np.logical_not``, the
    ternary becomes ``np.where``, and intrinsic calls dispatch through the
    batch table ``_intrb``."""

    def _expr(self, node: ast.Expr) -> tuple[str, int]:
        P = _PREC_PY
        if isinstance(node, ast.Unary) and node.op == "!":
            return (
                f"_np.logical_not({self.expr(node.operand)})",
                P["postfix"],
            )
        if isinstance(node, ast.Ternary):
            return (
                f"_np.where({self.expr(node.cond)}, "
                f"{self.expr(node.then)}, {self.expr(node.other)})",
                P["postfix"],
            )
        if isinstance(node, ast.Call):
            if node.target_kind != "intrinsic":
                raise CodegenError(
                    "non-intrinsic call in vectorized loop"
                )
            args = ", ".join(self.expr(a) for a in node.args)
            return (
                f"_intrb[{node.target.name!r}]({args})",  # type: ignore[union-attr]
                P["postfix"],
            )
        if isinstance(node, (ast.MethodCall, ast.New, ast.NewArray, ast.Index)):
            raise CodegenError(
                f"{type(node).__name__} not supported in vectorized loop"
            )
        return super()._expr(node)

    def _binary(self, node: ast.Binary) -> tuple[str, int]:
        P = _PREC_PY
        if node.op in ("&&", "||"):
            py_op = "&" if node.op == "&&" else "|"
            # fully parenthesized: Python's & / | bind tighter than
            # comparisons, the opposite of the dialect's && / ||
            return (
                f"(({self.expr(node.left)}) {py_op} ({self.expr(node.right)}))",
                P["postfix"],
            )
        return super()._binary(node)


# ---------------------------------------------------------------------------
# Columnar loop emission
# ---------------------------------------------------------------------------


class _GroupEmitter:
    """Emits one fused element loop as straight-line columnar code.

    ``columnar`` tracks which generated Python names currently hold
    per-record columns (vs. broadcast packet scalars): guards compress
    exactly those, and ``if``/``else`` merges know whether a branch value
    needs selecting."""

    def __init__(
        self, fg: Any, gen: PyGen, env: NameEnv, columnar: set[str]
    ) -> None:
        self.fg = fg
        self.gen = gen
        self.env = env
        self.columnar = columnar
        self._serial = 0

    def _expr(self, node: ast.Expr) -> str:
        return VectorPyGen(self.env).expr(node)

    # -- columnar-ness ------------------------------------------------------
    def _is_columnar(self, e: ast.Expr) -> bool:
        if isinstance(e, ast.Name):
            sym = e.symbol
            if not isinstance(sym, VarSymbol):
                return False
            return self.env.bindings.get(id(sym)) in self.columnar
        if isinstance(e, ast.FieldAccess):
            base = e.obj
            if (
                isinstance(base, ast.Name)
                and isinstance(base.symbol, VarSymbol)
                and self.env.is_elem(base.symbol)
            ):
                return True
            return self._is_columnar(base)
        if isinstance(e, ast.Call):
            return True  # batch intrinsic result
        if isinstance(e, ast.Unary):
            return self._is_columnar(e.operand)
        if isinstance(e, ast.Binary):
            return self._is_columnar(e.left) or self._is_columnar(e.right)
        if isinstance(e, ast.Ternary):
            return (
                self._is_columnar(e.cond)
                or self._is_columnar(e.then)
                or self._is_columnar(e.other)
            )
        return False

    def _mark(self, name: str, is_col: bool) -> None:
        if is_col:
            self.columnar.add(name)
        else:
            self.columnar.discard(name)

    # -- guards -------------------------------------------------------------
    def guard(self, guard: ast.Expr) -> None:
        self.gen.emit(f"_mask = _vec_mask({self._expr(guard)}, _n)")
        for name in sorted(self.columnar):
            self.gen.emit(f"{name} = _col_take({name}, _mask)")
        self.gen.emit("_n = int(_mask.sum())")

    # -- statements ---------------------------------------------------------
    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for inner in node.body:
                self.stmt(inner)
        elif isinstance(node, ast.VarDecl):
            sym = node.symbol
            assert isinstance(sym, VarSymbol)
            name = self.env.bind(sym)
            if node.init is not None:
                self.gen.emit(f"{name} = {self._expr(node.init)}")
                self._mark(name, self._is_columnar(node.init))
            else:
                self.gen.emit(f"{name} = {zero_value(sym.type)}")
                self._mark(name, False)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.ExprStmt):
            e = node.expr
            if _Analyzer._is_reduction_update(e):
                assert isinstance(e, ast.MethodCall)
                assert isinstance(e.obj, ast.Name)
                obj = self.env.lookup(e.obj.symbol)  # type: ignore[arg-type]
                args = ", ".join(self._expr(a) for a in e.args)
                self.gen.emit(f"{obj}.batch_{e.method}({args})")
            else:
                self.gen.emit(self._expr(e))
        elif isinstance(node, ast.If):
            self._if(node)
        else:  # pragma: no cover - rejected by analyze_group
            raise CodegenError(
                f"{type(node).__name__} not supported in vectorized loop"
            )

    def _assign(self, node: ast.Assign) -> None:
        assert isinstance(node.target, ast.Name)
        sym = node.target.symbol
        assert isinstance(sym, VarSymbol)
        name = self.env.lookup(sym)
        value = self._expr(node.value)
        if node.op:
            op = node.op
            if op == "/" and _is_int_type(node.target.type):
                op = "//"
            # rebind — never emit 'name op= value': the name may alias a
            # column view of the caller's packet/batch (column hoist) or
            # the pre-branch value (if/else save), and an in-place ufunc
            # would mutate those instead of this binding alone
            self.gen.emit(f"{name} = {name} {op} ({value})")
            if self._is_columnar(node.value):
                self.columnar.add(name)
        else:
            self.gen.emit(f"{name} = {value}")
            self._mark(name, self._is_columnar(node.value))

    # -- if/else as select --------------------------------------------------
    def _if(self, node: ast.If) -> None:
        k = self._serial
        self._serial += 1
        self.gen.emit(f"_c{k} = {self._expr(node.cond)}")
        assigned = _assigned_outer(node)
        saved = []
        for sym in assigned:
            cur = self.env.lookup(sym)
            saved.append((sym, cur, cur in self.columnar))

        branch_results: list[dict[int, tuple[str, bool]]] = []
        for prefix, branch in (("t", node.then), ("e", node.other)):
            results: dict[int, tuple[str, bool]] = {}
            if branch is None:
                for sym, cur, was_col in saved:
                    results[id(sym)] = (cur, was_col)
                branch_results.append(results)
                continue
            for sym, cur, was_col in saved:
                tmp = f"_{prefix}{k}_{_safe(sym.name)}"
                self.gen.emit(f"{tmp} = {cur}")
                self.env.bind(sym, tmp)
                self._mark(tmp, was_col)
            self.stmt(branch)
            for sym, cur, was_col in saved:
                tmp = self.env.lookup(sym)
                results[id(sym)] = (tmp, tmp in self.columnar)
                self.env.bind(sym, cur)
                self._mark(cur, was_col)
            branch_results.append(results)

        then_r, else_r = branch_results
        cond_col = self._is_columnar(node.cond)
        for sym, cur, was_col in saved:
            t_name, t_col = then_r[id(sym)]
            e_name, e_col = else_r[id(sym)]
            self.gen.emit(f"{cur} = _np.where(_c{k}, {t_name}, {e_name})")
            self._mark(cur, cond_col or t_col or e_col or was_col)
            self.env.bind(sym, cur)


def _assigned_outer(node: ast.If) -> list[VarSymbol]:
    """Symbols assigned in either branch but declared outside it — the
    values that must be merged with ``np.where`` after the branches."""
    out: list[VarSymbol] = []
    seen: set[int] = set()
    for branch in (node.then, node.other):
        if branch is None:
            continue
        declared: set[int] = set()
        assigned: list[VarSymbol] = []
        for stmt in ast.walk_stmts(branch):
            if isinstance(stmt, ast.VarDecl) and isinstance(
                stmt.symbol, VarSymbol
            ):
                declared.add(id(stmt.symbol))
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.target, ast.Name
            ):
                sym = stmt.target.symbol
                if isinstance(sym, VarSymbol):
                    assigned.append(sym)
        for sym in assigned:
            if id(sym) not in declared and id(sym) not in seen:
                seen.add(id(sym))
                out.append(sym)
    return out


def emit_vector_group(
    fg: Any,
    gen: PyGen,
    env: NameEnv,
    group: list[int],
    needed: set[str],
    out_layout: PacketLayout | None,
    source_mode: bool,
    in_layout: PacketLayout | None,
) -> None:
    """Columnar counterpart of ``FilterGenerator._gen_element_loop``.

    Emits straight-line code: hoist the needed columns, evaluate guards as
    compressing masks, translate statements with :class:`VectorPyGen`, and
    hand the output columns to ``BatchBuilder.extend`` in one chunk.

    The whole group runs under ``np.errstate(all='ignore')``: eager ``&``/
    ``|`` and both-branch ``np.where`` evaluation legally compute lanes the
    scalar backend short-circuits past (e.g. the divide in
    ``x != 0.0 && y / x > 1.0``), and those dead lanes must not surface as
    RuntimeWarnings — or FloatingPointErrors under a caller's
    ``np.seterr`` — that the scalar backend would never produce.  Selected
    values are unaffected: errstate changes error handling, not results."""
    chain = fg.chain
    if group:
        elem = chain.atom(group[0]).elem_var
        gen.emit(f"# vectorized element loop: atoms {group}")
    else:
        elem = chain.fissioned[0].elem_var if chain.fissioned else None
        gen.emit("# vectorized forwarding loop: no element atoms on this unit")
    assert elem is not None, "element loop without a foreach stream"

    gen.emit("with _np.errstate(all='ignore'):")
    with gen.block():
        _emit_vector_group_body(
            fg, gen, env, group, needed, out_layout, source_mode, in_layout, elem
        )


def _emit_vector_group_body(
    fg: Any,
    gen: PyGen,
    env: NameEnv,
    group: list[int],
    needed: set[str],
    out_layout: PacketLayout | None,
    source_mode: bool,
    in_layout: PacketLayout | None,
    elem: VarSymbol,
) -> None:
    chain = fg.chain
    columnar: set[str] = set()
    for source in sorted(needed):
        py = mangle(source)
        parts = source.split(".")
        if source_mode:
            if parts[0] == elem.name and len(parts) == 2:
                gen.emit(f"{py} = _pk.fields[{parts[1]!r}]")
                columnar.add(py)
            # per-element locals cannot come from the raw input
        else:
            assert in_layout is not None
            col = in_layout.column(source)
            if col is None:
                continue
            if col.ragged:
                gen.emit(f"{py} = _b.ragged[{source!r}]")
            else:
                gen.emit(f"{py} = _b.columns[{source!r}]")
            columnar.add(py)
        if "." not in source:
            sym = fg._symbol_by_name(source)
            if sym is not None:
                env.bind(sym, py)
    gen.emit(f"_n = {'_pk.count' if source_mode else '_b.count'}")

    em = _GroupEmitter(fg, gen, env, columnar)
    for i in group:
        atom = chain.atom(i)
        gen.emit(f"# atom f{i} ({atom.label})")
        if atom.guard is not None:
            em.guard(atom.guard)
        for stmt in atom.stmts:
            em.stmt(stmt)

    if out_layout is not None and out_layout.columns:
        items = []
        for col in out_layout.columns:
            value = fg._value_expr(env, col.source)
            if value not in columnar:
                # packet-uniform value: broadcast to the surviving records
                value = f"_np.full(_n, {value})"
            items.append(f"{col.name}={value}")
        gen.emit(f"_bb.extend({', '.join(items)})")
