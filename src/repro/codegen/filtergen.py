"""Filter code generation (paper §5).

Turns (filter chain, communication analysis, decomposition plan) into one
generated DataCutter filter per computing unit:

* consecutive atoms assigned to the same unit fuse — element stages of the
  same ``foreach`` become one per-record loop with inline guards
  (``continue`` drops filtered elements from the stream);
* each filter unpacks its input batch (§5's unpacking code), binds only the
  element fields it touches (*trimmed classes*), computes, then packs the
  next boundary's layout;
* reduction objects follow the scratch-state discipline: a per-packet
  accumulator is allocated in the filter holding its first update, crosses
  a cut only when already written, and pipeline-global accumulators are
  hosted by their updating filter, flushed at ``finalize`` as FINAL buffers
  that the last (viewing) filter merges via the reduction class's ``merge``.

The output of :meth:`FilterGenerator.generate` is a
:class:`CompiledPipeline` with real Python source per filter (inspectable,
test-asserted) and executable classes for the threaded runtime.

Restrictions (documented in DESIGN.md): per-element values may only cross a
cut within the foreach stream that produced them, so a ``PipelinedLoop``
body feeding one foreach's per-element outputs into a *second* foreach must
keep both on one unit; the paper's four applications all use a single
foreach per pipelined loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..analysis.boundaries import FilterChain
from ..analysis.reqcomm import CommAnalysis
from ..datacutter.buffers import Buffer
from ..datacutter.filters import Filter, FilterSpec, SourceFilter
from ..decompose.plan import DecompositionPlan
from ..lang import ast
from ..lang.types import ClassType, VarSymbol
from .buffers import BatchBuilder, pack, unpack
from .generated_registry import register_generated
from .layout import LayoutBuilder, PacketLayout, mangle
from .pygen import CodegenError, NameEnv, PyGen, generate_runtime_class
from .runtime_support import FINAL_PACKET, RawPacket, col_take, vec_mask
from .vectorize import analyze_group, emit_vector_group


@dataclass(slots=True)
class RuntimeConfig:
    """Everything the generated code needs beyond the program itself."""

    intrinsics: dict[str, Callable] = field(default_factory=dict)
    runtime_classes: dict[str, type] = field(default_factory=dict)
    size_hints: dict[str, object] = field(default_factory=dict)
    #: columnar intrinsic implementations (vector backend dispatch table)
    batch_intrinsics: dict[str, Callable] = field(default_factory=dict)
    #: concrete backend for element loops: "scalar" or "vector"
    backend: str = "scalar"


@dataclass(slots=True)
class GeneratedFilter:
    name: str
    unit: int  # 1-based
    source: str
    cls: type
    atoms: list[int]
    in_layout: PacketLayout | None
    out_layout: PacketLayout | None
    #: element loops emitted columnar / as scalar fallback in this filter
    vector_loops: int = 0
    scalar_loops: int = 0


@dataclass(slots=True)
class CompiledPipeline:
    """The §5 result: one filter per computing unit, ready to place."""

    chain: FilterChain
    plan: DecompositionPlan
    filters: list[GeneratedFilter]
    runtime_classes: dict[str, type]
    backend: str = "scalar"

    def specs(
        self,
        packets: Sequence[RawPacket],
        params: dict[str, Any] | None = None,
        widths: Sequence[int] | None = None,
    ) -> list[FilterSpec]:
        """Placed FilterSpecs for the threaded runtime."""
        params = dict(params or {})
        params["packets"] = list(packets)
        widths = list(widths) if widths is not None else [1] * len(self.filters)
        specs = []
        for gf, width in zip(self.filters, widths):
            specs.append(
                FilterSpec(
                    name=gf.name,
                    factory=gf.cls,
                    placement=gf.unit - 1,
                    width=width,
                    params=params,
                )
            )
        return specs

    def filter_source(self, unit: int) -> str:
        return self.filters[unit - 1].source


class FilterGenerator:
    def __init__(
        self,
        chain: FilterChain,
        analysis: CommAnalysis,
        plan: DecompositionPlan,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.chain = chain
        self.analysis = analysis
        self.plan = plan
        self.config = config or RuntimeConfig()
        self.checked = chain.checked
        self._loop_counts = [0, 0]
        self.layouts = LayoutBuilder(chain, analysis, self.config.size_hints)
        self._rt_classes = self._build_runtime_classes()
        self._reduction_decls = self._collect_reduction_decls()
        self._red_classes = self._reduction_class_table()

    # ------------------------------------------------------------------ api
    def generate(self) -> CompiledPipeline:
        m = self.plan.m
        filters: list[GeneratedFilter] = []
        in_layout: PacketLayout | None = None
        for j in range(1, m + 1):
            atoms = self.plan.filters_on_unit(j)
            out_layout = self._layout_after_unit(j) if j < m else None
            gf = self._generate_filter(
                j, atoms, in_layout, out_layout, is_last=(j == m)
            )
            filters.append(gf)
            in_layout = out_layout
        return CompiledPipeline(
            chain=self.chain,
            plan=self.plan,
            filters=filters,
            runtime_classes=self._rt_classes,
            backend=self.config.backend,
        )

    # ------------------------------------------------------------- tables
    def _build_runtime_classes(self) -> dict[str, type]:
        classes: dict[str, type] = dict(self.config.runtime_classes)
        namespace: dict[str, Any] = {
            "_np": np,
            "_intr": self.config.intrinsics,
            "_RT": classes,
        }
        for name, decl in self.checked.class_decls.items():
            if name in classes:
                continue
            # driver classes (those containing a PipelinedLoop) have no
            # runtime representation — their loop IS the pipeline
            if any(
                isinstance(stmt, ast.PipelinedLoop)
                for meth in decl.methods
                for stmt in ast.walk_stmts(meth.body)
            ):
                continue
            src = generate_runtime_class(self.checked, name)
            exec(compile(src, f"<runtime class {name}>", "exec"), namespace)
            # anchor for pickling: instances of these classes cross process
            # boundaries in the process engine's final-result buffers
            classes[name] = register_generated(namespace[name])
        return classes

    def _collect_reduction_decls(self) -> dict[int, ast.VarDecl]:
        decls: dict[int, ast.VarDecl] = {}
        for atom in self.chain.atoms:
            for stmt in atom.stmts:
                for inner in ast.walk_stmts(stmt):
                    if isinstance(inner, ast.VarDecl) and isinstance(
                        inner.symbol, VarSymbol
                    ):
                        if inner.symbol.is_reduction:
                            decls[id(inner.symbol)] = inner
        return decls

    def _reduction_class_table(self) -> dict[str, type]:
        """root name -> runtime class, for every reduction symbol the
        pipelined loop touches."""
        table: dict[str, type] = {}
        for sym in self._all_reduction_syms():
            if isinstance(sym.type, ClassType):
                table[sym.name] = self._rt_classes[sym.type.name]
        return table

    def _all_reduction_syms(self) -> list[VarSymbol]:
        seen: dict[int, VarSymbol] = {}
        for atom in self.chain.atoms:
            for stmt in atom.stmts:
                for expr in ast.walk_exprs(stmt):
                    if isinstance(expr, ast.Name) and isinstance(
                        expr.symbol, VarSymbol
                    ):
                        if expr.symbol.is_reduction:
                            seen.setdefault(id(expr.symbol), expr.symbol)
                for inner in ast.walk_stmts(stmt):
                    if isinstance(inner, ast.VarDecl) and isinstance(
                        inner.symbol, VarSymbol
                    ):
                        if inner.symbol.is_reduction:
                            seen.setdefault(id(inner.symbol), inner.symbol)
        return list(seen.values())

    # ------------------------------------------------------------- layouts
    def _layout_after_unit(self, j: int) -> PacketLayout:
        """Layout crossing link L_j: boundary after the last filter on
        units <= j (raw input when all of them are empty)."""
        cut = self.plan.last_filter_before_link(j)
        consumer_atoms = set(self.plan.filters_on_unit(j + 1))
        if cut == 0:
            return self._raw_input_layout(consumer_atoms)
        if cut == len(self.chain.atoms):
            return PacketLayout()  # only FINAL buffers flow past the end
        return self.layouts.layout_for_boundary(cut, consumer_atoms)

    def _raw_input_layout(self, consumer_atoms: set[int]) -> PacketLayout:
        """ReqComm(b_0): one more backward step of the §4.2 equation —
        what the whole chain consumes from the raw input."""
        facts = self.analysis.atom_facts[0]
        first = (
            self.analysis.reqcomm[0]
            if self.analysis.reqcomm
            else self.analysis.live_out
        )
        b0 = first.difference_must(facts.gen).union(facts.cons)
        saved = self.analysis.reqcomm
        try:
            self.analysis.reqcomm = [b0] + list(saved)
            return self.layouts.layout_for_boundary(
                1, consumer_atoms, written_before_index=0
            )
        finally:
            self.analysis.reqcomm = saved

    # ---------------------------------------------------------- scanning
    def _external_syms(self, atoms: list[int]) -> list[VarSymbol]:
        seen: dict[int, VarSymbol] = {}
        for i in atoms:
            for expr in self._atom_exprs(i):
                if isinstance(expr, ast.Name) and isinstance(
                    expr.symbol, VarSymbol
                ):
                    sym = expr.symbol
                    if sym.kind in ("param", "runtime"):
                        seen.setdefault(id(sym), sym)
        return list(seen.values())

    def _atom_exprs(self, i: int):
        atom = self.chain.atom(i)
        for stmt in atom.stmts:
            yield from ast.walk_exprs(stmt)
        if atom.guard is not None:
            yield from ast.walk_exprs(atom.guard)

    def _used_elem_sources(self, atoms: list[int]) -> set[str]:
        """Dotted sources (``c.minval``, ``tris``) read by these atoms."""
        used: set[str] = set()
        for i in atoms:
            for expr in self._atom_exprs(i):
                if isinstance(expr, ast.FieldAccess) and isinstance(
                    expr.obj, ast.Name
                ):
                    sym = expr.obj.symbol
                    if isinstance(sym, VarSymbol) and sym in self.chain.elem_vars:
                        used.add(f"{sym.name}.{expr.field_name}")
                elif isinstance(expr, ast.Name) and isinstance(
                    expr.symbol, VarSymbol
                ):
                    if expr.symbol in self.chain.per_element_roots:
                        used.add(expr.symbol.name)
        return used

    def _defined_sources(self, atoms: list[int]) -> set[str]:
        defined: set[str] = set()
        for i in atoms:
            for stmt in self.chain.atom(i).stmts:
                for inner in ast.walk_stmts(stmt):
                    if isinstance(inner, ast.VarDecl):
                        defined.add(inner.name)
        return defined

    def _hosted_reductions(
        self, atoms: list[int]
    ) -> dict[str, tuple[VarSymbol, bool]]:
        """Reduction roots first *updated* on this unit; value is
        (symbol, is_external) where external = declared outside the loop."""
        first_update: dict[int, tuple[VarSymbol, int]] = {}
        for i, atom in enumerate(self.chain.atoms, start=1):
            for stmt in atom.stmts:
                for expr in ast.walk_exprs(stmt):
                    if isinstance(expr, ast.MethodCall) and isinstance(
                        expr.obj, ast.Name
                    ):
                        sym = expr.obj.symbol
                        if isinstance(sym, VarSymbol) and sym.is_reduction:
                            first_update.setdefault(id(sym), (sym, i))
        hosted: dict[str, tuple[VarSymbol, bool]] = {}
        atom_set = set(atoms)
        for sym, atom_index in first_update.values():
            if atom_index in atom_set:
                external = id(sym) not in self._reduction_decls
                hosted[sym.name] = (sym, external)
        return hosted

    def _reduction_sym_by_name(self, name: str) -> VarSymbol | None:
        for sym in self._all_reduction_syms():
            if sym.name == name:
                return sym
        return None

    def _symbol_by_name(self, name: str) -> VarSymbol | None:
        for atom in self.chain.atoms:
            for stmt in atom.stmts:
                for inner in ast.walk_stmts(stmt):
                    if isinstance(inner, ast.VarDecl) and inner.name == name:
                        if isinstance(inner.symbol, VarSymbol):
                            return inner.symbol
                for expr in ast.walk_exprs(stmt):
                    if isinstance(expr, ast.Name) and isinstance(
                        expr.symbol, VarSymbol
                    ):
                        if expr.symbol.name == name:
                            return expr.symbol
        return None

    # ---------------------------------------------------------- generation
    def _generate_filter(
        self,
        j: int,
        atoms: list[int],
        in_layout: PacketLayout | None,
        out_layout: PacketLayout | None,
        is_last: bool,
    ) -> GeneratedFilter:
        is_source = j == 1
        name = f"gen_unit{j}"
        env = NameEnv(self.checked)
        for sym in self.chain.elem_vars:
            env.elem_vars.add(id(sym))
        self._loop_counts = [0, 0]  # [vector, scalar] element loops
        gen = PyGen(env)
        base = "_SourceFilter" if is_source else "_Filter"
        gen.emit(f"class {name}({base}):")
        with gen.block():
            gen.emit(f"'''Generated filter for unit C_{j}; atoms {atoms}.'''")
            self._gen_init(gen, atoms)
            if is_source:
                self._gen_source_body(gen, env, atoms, out_layout)
            else:
                self._gen_process_body(
                    gen, env, atoms, in_layout, out_layout, is_last
                )
            self._gen_finalize(gen, atoms, is_last)
        source = gen.source()
        namespace: dict[str, Any] = {
            "_np": np,
            "_intr": self.config.intrinsics,
            "_RT": self._rt_classes,
            "_RED_CLASSES": self._red_classes,
            "_Filter": Filter,
            "_SourceFilter": SourceFilter,
            "_Buffer": Buffer,
            "_BatchBuilder": BatchBuilder,
            "_pack": pack,
            "_unpack": unpack,
            "_IN_LAYOUT": in_layout,
            "_OUT_LAYOUT": out_layout,
            "_FINAL": FINAL_PACKET,
            "_intrb": self.config.batch_intrinsics,
            "_col_take": col_take,
            "_vec_mask": vec_mask,
        }
        try:
            exec(compile(source, f"<generated {name}>", "exec"), namespace)
        except SyntaxError as err:  # pragma: no cover - codegen bug guard
            raise CodegenError(
                f"generated source is invalid:\n{source}"
            ) from err
        return GeneratedFilter(
            name=name,
            unit=j,
            source=source,
            # anchor for pickling: resident process-engine workers receive
            # rebound FilterSpecs over their order channels, and the spec's
            # factory must resolve by reference in the already-forked child
            cls=register_generated(namespace[name]),
            atoms=atoms,
            in_layout=in_layout,
            out_layout=out_layout,
            vector_loops=self._loop_counts[0],
            scalar_loops=self._loop_counts[1],
        )

    def _gen_init(self, gen: PyGen, atoms: list[int]) -> None:
        hosted = self._hosted_reductions(atoms)
        gen.emit("def init(self, ctx):")
        with gen.block():
            gen.emit("self._params = ctx.params")
            gen.emit("self._finals = {}")
            gen.emit("self._data_seen = 0")
            for root, (sym, external) in hosted.items():
                if external:
                    assert isinstance(sym.type, ClassType)
                    gen.emit(f"self._red_{root} = _RT[{sym.type.name!r}]()")

    def _gen_finalize(self, gen: PyGen, atoms: list[int], is_last: bool) -> None:
        hosted = self._hosted_reductions(atoms)
        external = [root for root, (_s, ext) in hosted.items() if ext]
        gen.emit("def finalize(self, ctx):")
        with gen.block():
            if is_last:
                for root in external:
                    gen.emit(f"self._merge_final({root!r}, self._red_{root})")
                gen.emit("ctx.write(dict(self._finals))")
            elif external:
                gen.emit("payload = {}")
                for root in external:
                    gen.emit(f"payload[{root!r}] = self._red_{root}.pack()")
                gen.emit("ctx.write(payload, _FINAL)")
            else:
                gen.emit("pass")
        if is_last:
            gen.emit("def _merge_final(self, root, obj):")
            with gen.block():
                gen.emit("if root in self._finals:")
                with gen.block():
                    gen.emit("self._finals[root].merge(obj)")
                gen.emit("else:")
                with gen.block():
                    gen.emit("self._finals[root] = obj")

    def _gen_source_body(
        self,
        gen: PyGen,
        env: NameEnv,
        atoms: list[int],
        out_layout: PacketLayout | None,
    ) -> None:
        gen.emit("def generate(self, ctx):")
        with gen.block():
            for sym in self._external_syms(atoms):
                py = env.bind(sym)
                gen.emit(f"{py} = self._params[{sym.name!r}]")
            gen.emit("for _pkt, _pk in enumerate(self._params['packets']):")
            with gen.block():
                self._gen_unit_work(gen, env, atoms, out_layout, source_mode=True)
                if out_layout is not None:
                    gen.emit("yield _buf")
                else:
                    gen.emit("pass  # single-unit pipeline: results flush at finalize")
            if out_layout is None:
                # keep generate() a generator even when nothing streams
                gen.emit("if False:")
                with gen.block():
                    gen.emit("yield None")

    def _gen_process_body(
        self,
        gen: PyGen,
        env: NameEnv,
        atoms: list[int],
        in_layout: PacketLayout | None,
        out_layout: PacketLayout | None,
        is_last: bool,
    ) -> None:
        gen.emit("def process(self, buf, ctx):")
        with gen.block():
            gen.emit("if buf.packet == _FINAL:")
            with gen.block():
                if is_last:
                    gen.emit("for _root, _packed in buf.payload.items():")
                    with gen.block():
                        gen.emit(
                            "self._merge_final(_root, "
                            "_RED_CLASSES[_root].unpack(_packed))"
                        )
                else:
                    gen.emit("ctx.write_buffer(buf)")
                gen.emit("return")
            if not atoms:
                if is_last:
                    gen.emit("self._data_seen += 1")
                    gen.emit("return  # view unit: data reduced upstream")
                else:
                    # relay: same boundary contents, but the downstream
                    # layout may group columns differently -> re-pack
                    gen.emit("_b = _unpack(buf.payload, _IN_LAYOUT)")
                    gen.emit("ctx.write(_pack(_b, _OUT_LAYOUT), buf.packet)")
                return
            gen.emit("self._data_seen += 1")
            gen.emit("_pkt = buf.packet")
            gen.emit("_b = _unpack(buf.payload, _IN_LAYOUT)")
            for sym in self._external_syms(atoms):
                py = env.bind(sym)
                avail = (
                    {pf.source for pf in in_layout.packet_fields}
                    if in_layout
                    else set()
                )
                if sym.name in avail:
                    gen.emit(f"{py} = _b.packet_fields[{sym.name!r}]")
                else:
                    # not communicated: the analysis proved it dead here, or
                    # it is a shared run parameter
                    gen.emit(f"{py} = self._params.get({sym.name!r})")
            self._gen_unit_work(
                gen,
                env,
                atoms,
                out_layout,
                source_mode=False,
                in_layout=in_layout,
            )
            if out_layout is not None:
                gen.emit("ctx.write_buffer(_buf)")

    # -- the per-packet body ------------------------------------------------
    def _gen_unit_work(
        self,
        gen: PyGen,
        env: NameEnv,
        atoms: list[int],
        out_layout: PacketLayout | None,
        source_mode: bool,
        in_layout: PacketLayout | None = None,
    ) -> None:
        hosted = self._hosted_reductions(atoms)
        incoming_reductions = (
            set(in_layout.reduction_roots) if in_layout else set()
        )

        # reduction preamble
        for root, (sym, external) in hosted.items():
            py = env.bind(sym, root)
            if external:
                gen.emit(f"{py} = self._red_{root}")
            elif root in incoming_reductions:
                gen.emit(
                    f"{py} = _RED_CLASSES[{root!r}].unpack(_b.reductions[{root!r}])"
                )
            else:
                decl = self._reduction_decls.get(id(sym))
                if decl is not None and decl.init is not None:
                    gen.emit(f"{py} = {PyGen(env).expr(decl.init)}")
                else:
                    gen.emit(f"{py} = _RED_CLASSES[{root!r}]()")
        for root in incoming_reductions:
            if root in hosted:
                continue
            sym = self._reduction_sym_by_name(root)
            if sym is None:
                continue
            py = env.bind(sym, root)
            gen.emit(
                f"{py} = _RED_CLASSES[{root!r}].unpack(_b.reductions[{root!r}])"
            )

        if out_layout is not None:
            gen.emit("_bb = _BatchBuilder(_OUT_LAYOUT, packet=_pkt)")

        used = self._used_elem_sources(atoms)
        defined = self._defined_sources(atoms)
        out_sources = (
            {c.source for c in out_layout.columns} if out_layout else set()
        )
        needed = (used | out_sources) - defined

        emitted_element_loop = False
        for kind, group in self._group_atoms(atoms):
            if kind == "packet":
                for i in group:
                    self._gen_packet_atom(gen, i)
            else:
                self._gen_element_loop(
                    gen, env, group, needed, out_layout, source_mode, in_layout
                )
                emitted_element_loop = True

        if (
            out_layout is not None
            and out_layout.columns
            and not emitted_element_loop
        ):
            # no element atoms on this unit, yet per-record data must cross
            # (e.g. the Default plan's empty data unit): pure forwarding loop
            self._gen_element_loop(
                gen,
                env,
                [],
                {c.source for c in out_layout.columns},
                out_layout,
                source_mode,
                in_layout,
            )

        if out_layout is not None:
            for pf in out_layout.packet_fields:
                sym = self._symbol_by_name(pf.source)
                if sym is not None and id(sym) in env.bindings:
                    gen.emit(
                        f"_bb.packet_fields[{pf.source!r}] = {env.lookup(sym)}"
                    )
                elif source_mode:
                    gen.emit(
                        f"_bb.packet_fields[{pf.source!r}] = "
                        f"self._params[{pf.source!r}]"
                    )
                else:
                    gen.emit(
                        f"_bb.packet_fields[{pf.source!r}] = "
                        f"_b.packet_fields[{pf.source!r}]"
                    )
            for root in out_layout.reduction_roots:
                sym = self._reduction_sym_by_name(root)
                assert sym is not None, f"unknown reduction root {root}"
                gen.emit(f"_bb.reductions[{root!r}] = {env.lookup(sym)}.pack()")
            gen.emit("_payload = _pack(_bb.build(), _OUT_LAYOUT)")
            gen.emit("_buf = _Buffer(payload=_payload, packet=_pkt)")

    def _group_atoms(self, atoms: list[int]) -> list[tuple[str, list[int]]]:
        groups: list[tuple[str, list[int]]] = []
        for i in atoms:
            atom = self.chain.atom(i)
            if atom.kind == "element":
                if groups and groups[-1][0] == "element":
                    prev = self.chain.atom(groups[-1][1][-1])
                    if prev.foreach_id == atom.foreach_id:
                        groups[-1][1].append(i)
                        continue
                groups.append(("element", [i]))
            else:
                if groups and groups[-1][0] == "packet":
                    groups[-1][1].append(i)
                else:
                    groups.append(("packet", [i]))
        return groups

    def _gen_packet_atom(self, gen: PyGen, i: int) -> None:
        atom = self.chain.atom(i)
        gen.emit(f"# atom f{i} ({atom.label})")
        emitted = False
        for stmt in atom.stmts:
            if isinstance(stmt, ast.VarDecl) and isinstance(
                stmt.symbol, VarSymbol
            ):
                if stmt.symbol.is_reduction:
                    continue  # handled by the reduction preamble
            gen.stmt(stmt)
            emitted = True
        if not emitted:
            gen.emit("pass  # reduction allocation hoisted to preamble")

    def _gen_element_loop(
        self,
        gen: PyGen,
        env: NameEnv,
        group: list[int],
        needed: set[str],
        out_layout: PacketLayout | None,
        source_mode: bool,
        in_layout: PacketLayout | None,
    ) -> None:
        if self.config.backend == "vector":
            decision = analyze_group(
                self.chain, group, self._red_classes, self.config.batch_intrinsics
            )
            if decision.ok:
                self._loop_counts[0] += 1
                emit_vector_group(
                    self, gen, env, group, needed, out_layout,
                    source_mode, in_layout,
                )
                return
            gen.emit(f"# scalar fallback: {decision.reason}")
        self._loop_counts[1] += 1
        if group:
            elem = self.chain.atom(group[0]).elem_var
            gen.emit(f"# fused element loop: atoms {group}")
        else:
            # forwarding loop for a unit with no element atoms
            elem = (
                self.chain.fissioned[0].elem_var
                if self.chain.fissioned
                else None
            )
            gen.emit("# forwarding loop: no element atoms on this unit")
        assert elem is not None, "element loop without a foreach stream"

        # hoist column references out of the loop
        hoisted: dict[str, tuple[str, str]] = {}  # source -> (kind, py expr)
        for source in sorted(needed):
            py = mangle(source)
            parts = source.split(".")
            if source_mode:
                if parts[0] == elem.name and len(parts) == 2:
                    gen.emit(f"_h_{py} = _pk.fields[{parts[1]!r}]")
                    hoisted[source] = ("raw", f"_h_{py}")
                # per-element locals cannot come from the raw input
            else:
                assert in_layout is not None
                col = in_layout.column(source)
                if col is None:
                    continue
                if col.ragged:
                    gen.emit(f"_hv_{py}, _ho_{py} = _b.ragged[{source!r}]")
                    hoisted[source] = ("ragged", py)
                else:
                    gen.emit(f"_h_{py} = _b.columns[{source!r}]")
                    hoisted[source] = ("fixed", f"_h_{py}")

        count_src = "_pk.count" if source_mode else "_b.count"
        gen.emit(f"_n = {count_src}")
        gen.emit("for _r in range(_n):")
        with gen.block():
            for source, (kind, ref) in hoisted.items():
                py = mangle(source)
                if kind == "raw":
                    arr = ref
                    gen.emit(
                        f"{py} = {arr}[0][{arr}[1][_r]:{arr}[1][_r + 1]] "
                        f"if isinstance({arr}, tuple) else {arr}[_r]"
                    )
                elif kind == "ragged":
                    gen.emit(f"{py} = _hv_{py}[_ho_{py}[_r]:_ho_{py}[_r + 1]]")
                else:
                    gen.emit(f"{py} = {ref}[_r]")
                if "." not in source:
                    sym = self._symbol_by_name(source)
                    if sym is not None:
                        env.bind(sym, py)
            for i in group:
                atom = self.chain.atom(i)
                if atom.guard is not None:
                    guard_src = PyGen(env).expr(atom.guard)
                    gen.emit(f"if not ({guard_src}):")
                    with gen.block():
                        gen.emit("continue")
                for stmt in atom.stmts:
                    gen.stmt(stmt)
            if out_layout is not None and out_layout.columns:
                row_items = []
                for col in out_layout.columns:
                    row_items.append(
                        f"{col.name}={self._value_expr(env, col.source)}"
                    )
                gen.emit(f"_bb.append({', '.join(row_items)})")

    def _value_expr(self, env: NameEnv, source: str) -> str:
        if "." not in source:
            sym = self._symbol_by_name(source)
            if sym is not None:
                return env.lookup(sym)
        return mangle(source)
