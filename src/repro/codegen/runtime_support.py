"""Runtime support objects shared by generated filter code.

Generated filters receive their input either as :class:`RawPacket` (the
first filter, reading directly from the data host's packets) or as packed
:class:`~repro.codegen.buffers.RecordBatch` bytes (every later filter).

The second half of this module is the columnar runtime used by the
``vector`` codegen backend (:mod:`repro.codegen.vectorize`): a *column* is
either a fixed NumPy array of shape ``(n,)`` / ``(n, L)`` or a ragged
``(values, offsets)`` pair with ``len(offsets) == n + 1``.  The helpers
here compress, gather, and iterate columns in either representation so
generated vector code and batch intrinsic implementations stay agnostic
of which one a field happens to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass(slots=True)
class RawPacket:
    """One packet as stored on the data host.

    ``fields`` maps *element-class field names* (e.g. ``minval``,
    ``corners``) to either

    * a fixed array of shape ``(count,)`` or ``(count, L)``, or
    * a ragged pair ``(values, offsets)`` with ``len(offsets) == count + 1``.
    """

    count: int
    fields: dict[str, Any] = field(default_factory=dict)

    def row(self, name: str, r: int):
        """Value of field ``name`` for element ``r``."""
        data = self.fields[name]
        if isinstance(data, tuple):
            values, offsets = data
            return values[offsets[r] : offsets[r + 1]]
        return data[r]

    @property
    def nbytes(self) -> int:
        total = 0
        for data in self.fields.values():
            if isinstance(data, tuple):
                total += data[0].nbytes + data[1].nbytes
            else:
                total += data.nbytes
        return total


def ragged_from_rows(
    rows: list[np.ndarray], dtype=np.float64
) -> tuple[np.ndarray, np.ndarray]:
    """Build a (values, offsets) ragged pair from per-row arrays.

    The values buffer is sized once from the row lengths and filled by
    slice — repeated ``np.concatenate`` over a growing prefix would make
    batch construction quadratic in the row count."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for r, row in enumerate(rows):
        offsets[r + 1] = offsets[r] + len(row)
    values = np.empty(int(offsets[-1]), dtype=dtype)
    for r, row in enumerate(rows):
        if offsets[r + 1] > offsets[r]:
            values[offsets[r] : offsets[r + 1]] = row
    return values, offsets


# ---------------------------------------------------------------------------
# Columnar helpers (vector backend)
# ---------------------------------------------------------------------------


def col_count(col: Any) -> int:
    """Number of records a column covers."""
    if isinstance(col, tuple):
        return len(col[1]) - 1
    return len(col)


def col_row(col: Any, r: int) -> Any:
    """Record ``r`` of a column in either representation; scalars pass
    through (broadcast arguments of batch intrinsics)."""
    if isinstance(col, tuple):
        values, offsets = col
        return values[offsets[r] : offsets[r + 1]]
    if isinstance(col, np.ndarray) and col.ndim >= 1:
        return col[r]
    return col


def ragged_take(
    pair: tuple[np.ndarray, np.ndarray], selector: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Select rows of a ragged pair by boolean mask or index array."""
    values, offsets = pair
    selector = np.asarray(selector)
    idx = np.flatnonzero(selector) if selector.dtype == np.bool_ else selector
    lens = (offsets[1:] - offsets[:-1])[idx]
    new_offsets = np.zeros(len(idx) + 1, dtype=np.int64)
    np.cumsum(lens, out=new_offsets[1:])
    total = int(new_offsets[-1])
    if total == 0:
        return np.zeros(0, dtype=values.dtype), new_offsets
    # source index for output position t in row j: start_j + (t - out_off_j)
    src = np.repeat(offsets[:-1][idx] - new_offsets[:-1], lens)
    src = src + np.arange(total, dtype=np.int64)
    return values[src], new_offsets


def col_take(col: Any, selector: np.ndarray) -> Any:
    """Compress a column (fixed or ragged) by boolean mask or index."""
    if isinstance(col, tuple):
        return ragged_take(col, selector)
    return col[selector]


def vec_mask(mask: Any, n: int) -> np.ndarray:
    """Normalize a guard value to a boolean column of length ``n`` (a
    guard over packet scalars alone evaluates to one bool)."""
    mask = np.asarray(mask)
    if mask.ndim == 0:
        return np.full(n, bool(mask))
    return mask.astype(bool, copy=False)


def rowwise_batch(fn: Callable, dtype=np.float64) -> Callable:
    """Generic batch form for an array-returning scalar intrinsic: apply
    ``fn`` per record and collect the results as one ragged pair.

    Columnar arguments are arrays (first axis = records) or ragged pairs;
    anything else broadcasts.  Use for kernels whose per-record work is
    already vectorized internally (e.g. the virtual microscope's
    tile subsampler) — truly columnar kernels should implement a native
    batch form instead."""

    def batch(*args: Any) -> tuple[np.ndarray, np.ndarray]:
        n = None
        for a in args:
            if isinstance(a, tuple) or (
                isinstance(a, np.ndarray) and a.ndim >= 1
            ):
                n = col_count(a)
                break
        if n is None:
            raise TypeError(
                f"rowwise batch form of {fn.__name__} needs at least one "
                "columnar argument to infer the record count"
            )
        rows = [
            np.asarray(fn(*(col_row(a, r) for a in args)))
            for r in range(n)
        ]
        return ragged_from_rows(rows, dtype)

    return batch


#: packet index marking a FINAL buffer (reduction state flush at finalize)
FINAL_PACKET = -2
