"""Runtime support objects shared by generated filter code.

Generated filters receive their input either as :class:`RawPacket` (the
first filter, reading directly from the data host's packets) or as packed
:class:`~repro.codegen.buffers.RecordBatch` bytes (every later filter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(slots=True)
class RawPacket:
    """One packet as stored on the data host.

    ``fields`` maps *element-class field names* (e.g. ``minval``,
    ``corners``) to either

    * a fixed array of shape ``(count,)`` or ``(count, L)``, or
    * a ragged pair ``(values, offsets)`` with ``len(offsets) == count + 1``.
    """

    count: int
    fields: dict[str, Any] = field(default_factory=dict)

    def row(self, name: str, r: int):
        """Value of field ``name`` for element ``r``."""
        data = self.fields[name]
        if isinstance(data, tuple):
            values, offsets = data
            return values[offsets[r] : offsets[r + 1]]
        return data[r]

    @property
    def nbytes(self) -> int:
        total = 0
        for data in self.fields.values():
            if isinstance(data, tuple):
                total += data[0].nbytes + data[1].nbytes
            else:
                total += data.nbytes
        return total


def ragged_from_rows(rows: list[np.ndarray], dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Build a (values, offsets) ragged pair from per-row arrays."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for r, row in enumerate(rows):
        offsets[r + 1] = offsets[r] + len(row)
    if rows and offsets[-1] > 0:
        values = np.concatenate([np.asarray(r, dtype=dtype) for r in rows])
    else:
        values = np.zeros(0, dtype=dtype)
    return values, offsets


#: packet index marking a FINAL buffer (reduction state flush at finalize)
FINAL_PACKET = -2
