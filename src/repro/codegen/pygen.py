"""Dialect AST -> Python source translation.

Generated filters execute real Python: per-record element loops with
conditionals, exactly the code shape §6.5 describes for the prototype
("in the compiler generated version, a conditional is used ... whereas the
manual version simply uses a stride") — which is why Decomp-Comp trails
Decomp-Manual in the vmscope figures and we can measure that gap honestly.

Translation rules:

* element-variable field reads (``c.minval``) become loop-preamble bindings
  from the input batch's columns;
* per-element and packet locals become Python locals;
* intrinsic calls dispatch through the ``_intr`` table; ``new C()`` builds
  an instance of the runtime class from the ``_RT`` table; ``new T[n]``
  allocates a NumPy array;
* Java semantics are preserved where they differ from Python: integer
  division truncates toward zero, ``&&``/``||`` short-circuit to
  ``and``/``or``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lang import ast
from ..lang.typecheck import CheckedProgram, MethodSig, NativeSig
from ..lang.types import ArrayType, PrimType, VarSymbol
from .layout import _DTYPES, mangle

_PREC_PY = {
    "or": 1,
    "and": 2,
    "cmp": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "//": 5,
    "%": 5,
    "unary": 6,
    "postfix": 7,
}


class CodegenError(RuntimeError):
    pass


@dataclass(slots=True)
class NameEnv:
    """Maps dialect symbols to Python names within one generated filter."""

    checked: CheckedProgram
    #: symbol-id -> python name
    bindings: dict[int, str] = field(default_factory=dict)
    #: element variables of the active fused loop(s)
    elem_vars: set[int] = field(default_factory=set)
    #: class whose field symbols print as ``self.<name>`` (method bodies)
    self_class: str | None = None

    def bind(self, sym: VarSymbol, py_name: str | None = None) -> str:
        name = py_name or _safe(sym.name)
        self.bindings[id(sym)] = name
        return name

    def lookup(self, sym: VarSymbol) -> str:
        if sym.kind == "field" and sym.owner == self.self_class:
            return f"self.{sym.name}"
        name = self.bindings.get(id(sym))
        if name is None:
            name = self.bind(sym)
        return name

    def is_elem(self, sym: VarSymbol) -> bool:
        return id(sym) in self.elem_vars


def _safe(name: str) -> str:
    return name if not name.startswith("_") else "v" + name


def _is_int_type(t: object) -> bool:
    return isinstance(t, PrimType) and t.is_integral()


def zero_value(t: object) -> str:
    if isinstance(t, PrimType):
        if t.name == "boolean":
            return "False"
        if t.is_integral():
            return "0"
        return "0.0"
    return "None"


def np_dtype_literal(t: PrimType) -> str:
    return f"_np.{_DTYPES[t.name].name}"


class PyGen:
    """Stateless-per-call translator; one instance per generated filter."""

    def __init__(self, env: NameEnv) -> None:
        self.env = env
        self.lines: list[str] = []
        self._indent = 0

    # -- emission helpers ------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self._indent + text)

    def block(self) -> "_IndentCtx":
        return _IndentCtx(self)

    def source(self) -> str:
        return "\n".join(self.lines)

    # -- statements --------------------------------------------------------------
    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            if not node.body:
                self.emit("pass")
            for inner in node.body:
                self.stmt(inner)
        elif isinstance(node, ast.VarDecl):
            self._vardecl(node)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.ExprStmt):
            self.emit(self.expr(node.expr))
        elif isinstance(node, ast.If):
            self.emit(f"if {self.expr(node.cond)}:")
            with self.block():
                self.stmt(node.then)
            if node.other is not None:
                self.emit("else:")
                with self.block():
                    self.stmt(node.other)
        elif isinstance(node, ast.While):
            self.emit(f"while {self.expr(node.cond)}:")
            with self.block():
                self.stmt(node.body)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Foreach):
            raise CodegenError(
                "foreach must be fissioned into element stages before codegen"
            )
        elif isinstance(node, ast.Return):
            if node.value is None:
                self.emit("return")
            else:
                self.emit(f"return {self.expr(node.value)}")
        elif isinstance(node, ast.Break):
            self.emit("break")
        elif isinstance(node, ast.Continue):
            self.emit("continue")
        else:  # pragma: no cover
            raise CodegenError(f"unhandled statement {type(node).__name__}")

    def _vardecl(self, node: ast.VarDecl) -> None:
        sym = node.symbol
        assert isinstance(sym, VarSymbol)
        name = self.env.bind(sym)
        if node.init is not None:
            self.emit(f"{name} = {self.expr(node.init)}")
        else:
            self.emit(f"{name} = {zero_value(sym.type)}")

    def _assign(self, node: ast.Assign) -> None:
        target = self.lvalue(node.target)
        value = self.expr(node.value)
        if node.op:
            op = node.op
            if op == "/" and _is_int_type(node.target.type):
                op = "//"
            self.emit(f"{target} {op}= {value}")
        else:
            self.emit(f"{target} = {value}")

    def _for(self, node: ast.For) -> None:
        # fast path: counted loop -> range()
        init, cond, update = node.init, node.cond, node.update
        counted = (
            isinstance(init, ast.VarDecl)
            and init.init is not None
            and isinstance(cond, ast.Binary)
            and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Name)
            and isinstance(init.symbol, VarSymbol)
            and cond.left.symbol is init.symbol
            and _is_unit_update(update, init.symbol)
        )
        if counted:
            assert isinstance(init, ast.VarDecl) and isinstance(cond, ast.Binary)
            var = self.env.bind(init.symbol)  # type: ignore[arg-type]
            lo = self.expr(init.init)  # type: ignore[arg-type]
            hi = self.expr(cond.right)
            if cond.op == "<=":
                hi = f"({hi}) + 1"
            self.emit(f"for {var} in range({lo}, {hi}):")
            with self.block():
                self.stmt(node.body)
            return
        if init is not None:
            self.stmt(init)
        cond_src = self.expr(cond) if cond is not None else "True"
        self.emit(f"while {cond_src}:")
        with self.block():
            self.stmt(node.body)
            if update is not None:
                self.stmt(update)

    # -- lvalues ------------------------------------------------------------------
    def lvalue(self, node: ast.Expr) -> str:
        if isinstance(node, ast.Name):
            sym = node.symbol
            assert isinstance(sym, VarSymbol)
            if self.env.is_elem(sym):
                raise CodegenError(
                    f"cannot assign to foreach element '{sym.name}'"
                )
            return self.env.lookup(sym)
        if isinstance(node, ast.FieldAccess):
            if (
                isinstance(node.obj, ast.Name)
                and isinstance(node.obj.symbol, VarSymbol)
                and self.env.is_elem(node.obj.symbol)
            ):
                raise CodegenError(
                    "element fields are read-only in generated filters"
                )
            return f"{self.expr(node.obj, _PREC_PY['postfix'])}.{node.field_name}"
        if isinstance(node, ast.Index):
            return (
                f"{self.expr(node.obj, _PREC_PY['postfix'])}"
                f"[{self.expr(node.index)}]"
            )
        raise CodegenError(f"invalid assignment target {type(node).__name__}")

    # -- expressions -----------------------------------------------------------------
    def expr(self, node: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr(node)
        return f"({text})" if prec < parent_prec else text

    def _expr(self, node: ast.Expr) -> tuple[str, int]:
        P = _PREC_PY
        if isinstance(node, ast.IntLit):
            return str(node.value), P["postfix"]
        if isinstance(node, ast.FloatLit):
            return repr(node.value), P["postfix"]
        if isinstance(node, ast.BoolLit):
            return ("True" if node.value else "False"), P["postfix"]
        if isinstance(node, ast.NullLit):
            return "None", P["postfix"]
        if isinstance(node, ast.StringLit):
            return repr(node.value), P["postfix"]
        if isinstance(node, ast.Name):
            sym = node.symbol
            assert isinstance(sym, VarSymbol)
            if self.env.is_elem(sym):
                raise CodegenError(
                    f"whole-element value '{sym.name}' has no runtime "
                    "representation; access its fields instead"
                )
            return self.env.lookup(sym), P["postfix"]
        if isinstance(node, ast.FieldAccess):
            base = node.obj
            if (
                isinstance(base, ast.Name)
                and isinstance(base.symbol, VarSymbol)
                and self.env.is_elem(base.symbol)
            ):
                # element field -> the loop-preamble binding
                return mangle(f"{base.symbol.name}.{node.field_name}"), P["postfix"]
            if isinstance(base.type, ArrayType) and node.field_name == "length":
                return f"len({self.expr(base, P['postfix'])})", P["postfix"]
            return (
                f"{self.expr(base, P['postfix'])}.{node.field_name}",
                P["postfix"],
            )
        if isinstance(node, ast.Index):
            return (
                f"{self.expr(node.obj, P['postfix'])}[{self.expr(node.index)}]",
                P["postfix"],
            )
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            if node.target_kind == "intrinsic":
                assert isinstance(node.target, NativeSig)
                return f"_intr[{node.target.name!r}]({args})", P["postfix"]
            assert isinstance(node.target, MethodSig)
            return (
                f"_RT[{node.target.owner!r}].{node.target.name}({args})",
                P["postfix"],
            )
        if isinstance(node, ast.MethodCall):
            obj = self.expr(node.obj, P["postfix"])
            args = ", ".join(self.expr(a) for a in node.args)
            if node.target_kind == "domain_size":
                return f"len({obj})", P["postfix"]
            return f"{obj}.{node.method}({args})", P["postfix"]
        if isinstance(node, ast.New):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"_RT[{node.class_name!r}]({args})", P["postfix"]
        if isinstance(node, ast.NewArray):
            elem = node.elem_type
            if elem.name in _DTYPES and elem.array_depth == 0:
                dtype = f"_np.{_DTYPES[elem.name].name}"
                return (
                    f"_np.zeros({self.expr(node.length)}, dtype={dtype})",
                    P["postfix"],
                )
            return (
                f"[None] * ({self.expr(node.length)})",
                P["postfix"],
            )
        if isinstance(node, ast.Unary):
            if node.op == "!":
                return f"not {self.expr(node.operand, P['unary'])}", P["unary"]
            return f"-{self.expr(node.operand, P['unary'])}", P["unary"]
        if isinstance(node, ast.Binary):
            return self._binary(node)
        if isinstance(node, ast.Ternary):
            return (
                f"{self.expr(node.then, 1)} if {self.expr(node.cond, 1)} "
                f"else {self.expr(node.other, 1)}",
                0,
            )
        raise CodegenError(f"unhandled expression {type(node).__name__}")

    def _binary(self, node: ast.Binary) -> tuple[str, int]:
        P = _PREC_PY
        op = node.op
        if op == "&&":
            return (
                f"{self.expr(node.left, P['and'])} and "
                f"{self.expr(node.right, P['and'] + 1)}",
                P["and"],
            )
        if op == "||":
            return (
                f"{self.expr(node.left, P['or'])} or "
                f"{self.expr(node.right, P['or'] + 1)}",
                P["or"],
            )
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return (
                f"{self.expr(node.left, P['cmp'] + 1)} {op} "
                f"{self.expr(node.right, P['cmp'] + 1)}",
                P["cmp"],
            )
        if op == "/" and _is_int_type(node.type):
            # Java int division truncates toward zero; operands in our apps
            # are non-negative, where // matches
            op = "//"
        prec = P[op]
        return (
            f"{self.expr(node.left, prec)} {op} {self.expr(node.right, prec + 1)}",
            prec,
        )


def _is_unit_update(update: ast.Stmt | None, sym: VarSymbol) -> bool:
    if not isinstance(update, ast.Assign):
        return False
    if not (
        isinstance(update.target, ast.Name) and update.target.symbol is sym
    ):
        return False
    if update.op == "+" and isinstance(update.value, ast.IntLit):
        return update.value.value == 1
    if update.op == "" and isinstance(update.value, ast.Binary):
        v = update.value
        return (
            v.op == "+"
            and isinstance(v.left, ast.Name)
            and v.left.symbol is sym
            and isinstance(v.right, ast.IntLit)
            and v.right.value == 1
        )
    return False


class _IndentCtx:
    def __init__(self, gen: PyGen) -> None:
        self.gen = gen

    def __enter__(self) -> None:
        self.gen._indent += 1

    def __exit__(self, *exc: object) -> None:
        self.gen._indent -= 1


# ---------------------------------------------------------------------------
# Runtime classes generated from dialect class declarations
# ---------------------------------------------------------------------------


def generate_runtime_class(
    checked: CheckedProgram, class_name: str
) -> str:
    """Python source for a dialect class: fields become zero-initialized
    attributes, methods are translated bodies, and reduction classes get
    ``pack``/``unpack`` for stream crossings.  Apps may override these with
    hand-vectorized implementations via the runtime-class table."""
    decl = checked.class_decls[class_name]
    env = NameEnv(checked)
    gen = PyGen(env)
    gen.emit(f"class {class_name}:")
    with gen.block():
        field_names = [f.name for f in decl.fields]
        gen.emit("def __init__(self):")
        with gen.block():
            if not field_names:
                gen.emit("pass")
            for f in decl.fields:
                ftype = checked.field_type(class_name, f.name)
                if isinstance(ftype, ArrayType) and isinstance(ftype.elem, PrimType):
                    gen.emit(
                        f"self.{f.name} = _np.zeros(0, dtype={np_dtype_literal(ftype.elem)})"
                    )
                elif isinstance(ftype, PrimType):
                    gen.emit(f"self.{f.name} = {zero_value(ftype)}")
                else:
                    gen.emit(f"self.{f.name} = None")
        for meth in decl.methods:
            menv = NameEnv(checked, self_class=decl.name)
            mgen = PyGen(menv)
            params = ["self"]
            for p in meth.params:
                assert isinstance(p.symbol, VarSymbol)
                params.append(menv.bind(p.symbol))
            mgen.emit(f"def {meth.name}({', '.join(params)}):")
            with mgen.block():
                if meth.body.body:
                    mgen.stmt(meth.body)
                else:
                    mgen.emit("pass")
            for line in mgen.lines:
                gen.emit(line)
        if decl.is_reduction:
            gen.emit("def pack(self):")
            with gen.block():
                items = ", ".join(
                    f"{name!r}: _np.asarray(self.{name}).reshape(-1)"
                    for name in field_names
                ) or ""
                gen.emit(f"return {{{items}}}")
            gen.emit("@classmethod")
            gen.emit("def unpack(cls, packed):")
            with gen.block():
                gen.emit("obj = cls()")
                for name in field_names:
                    gen.emit(f"obj.{name} = packed[{name!r}].copy()")
                gen.emit("return obj")
    return gen.source()


