"""Pickle anchor for dynamically generated classes.

Classes produced with ``exec`` (the generated runtime classes of
:mod:`repro.codegen.filtergen`, query-dependent reduction classes such as
vmscope's ``VImage``) have no importable module, so pickling their
*instances* fails with ``attribute lookup ... failed``.  The process
execution engine (:mod:`repro.datacutter.mp`) moves final reduction
objects between worker processes and the supervisor by pickle, so every
dynamically created class is registered here: the class is re-homed into
this module under a unique attribute name, which makes pickle's
by-reference lookup succeed in any process forked after registration.
The process engine forks its workers after compilation, so the registry
is always populated identically on both sides of the pipe.
"""

from __future__ import annotations

import itertools
import sys

_counter = itertools.count()


def register_generated(cls: type) -> type:
    """Anchor ``cls`` in this module so its instances pickle by reference.

    The class keeps its ``__name__`` (used in generated source and error
    messages); only ``__module__``/``__qualname__`` are redirected.  Returns
    the class so the call composes with assignment.
    """
    module = sys.modules[__name__]
    anchor = cls.__name__
    if hasattr(module, anchor):
        anchor = f"{cls.__name__}__g{next(_counter)}"
    cls.__module__ = __name__
    cls.__qualname__ = anchor
    setattr(module, anchor, cls)
    return cls
