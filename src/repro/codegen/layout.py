"""Packet layouts: what crosses each selected boundary and how it is packed
(paper §5).

From a boundary's ``ReqComm`` set we derive a :class:`PacketLayout`:

* **columns** — per-record values (fields of the foreach element, and
  per-element temporaries created by earlier stages).  A whole-object path
  (``c``) expands to all fields of its class; a field path (``c.minval``)
  becomes one column — this is the paper's *trimmed class* ``T̄``: only the
  fields any downstream filter touches are materialized;
* **packet fields** — once-per-packet scalars and arrays;
* **reductions** — partial accumulator state crossing the cut.

Packing groups follow §5's rule: fields *first consumed by the receiving
filter* are packed **instance-wise** (interleaved records); fields first
consumed by a later filter are packed **field-wise** (one contiguous region
per field), ordered by the index of the filter that first reads them.
Ragged columns (variable-length per record, e.g. triangles per cube) are
always field-wise — interleaving them would require per-record headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.boundaries import FilterChain
from ..analysis.reqcomm import CommAnalysis
from ..analysis.values import AccessPath, ElemSel, FieldSel, PathSet
from ..lang.typecheck import CheckedProgram
from ..lang.types import ArrayType, ClassType, PrimType, RectdomainType, Type, VarSymbol

_DTYPES = {
    "boolean": np.dtype(np.bool_),
    "byte": np.dtype(np.int8),
    "int": np.dtype(np.int32),
    "long": np.dtype(np.int64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
}


def dtype_for(t: Type) -> np.dtype:
    if isinstance(t, PrimType) and t.name in _DTYPES:
        return _DTYPES[t.name]
    raise ValueError(f"no packed dtype for type {t}")


def mangle(path_name: str) -> str:
    """``c.minval`` -> ``c__minval`` (a valid Python identifier)."""
    return path_name.replace(".", "__")


@dataclass(slots=True)
class ColumnSpec:
    """One per-record column."""

    name: str  # mangled identifier
    source: str  # dotted path name, e.g. 'c.minval' or 'tris'
    dtype: np.dtype
    ragged: bool = False
    length: int = 1  # scalars: 1; fixed-length arrays: > 1
    group: str = "instance"  # 'instance' | 'fieldwise'
    first_consumer: int = 0  # unit index that first reads it

    @property
    def is_scalar(self) -> bool:
        return not self.ragged and self.length == 1


@dataclass(slots=True)
class PacketFieldSpec:
    """Once-per-packet value (broadcast scalar or whole array)."""

    name: str
    source: str
    dtype: np.dtype
    array: bool = False


@dataclass(slots=True)
class PacketLayout:
    """Everything that crosses one selected boundary, in packing order."""

    columns: list[ColumnSpec] = field(default_factory=list)
    packet_fields: list[PacketFieldSpec] = field(default_factory=list)
    reduction_roots: list[str] = field(default_factory=list)

    def column(self, source: str) -> ColumnSpec | None:
        for col in self.columns:
            if col.source == source:
                return col
        return None

    def instance_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.group == "instance"]

    def fieldwise_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.group == "fieldwise"]

    def sorted_for_packing(self) -> list[ColumnSpec]:
        """Instance group first, then field-wise by first-consumer order —
        the §5 packing order."""
        inst = sorted(self.instance_columns(), key=lambda c: c.name)
        fw = sorted(
            self.fieldwise_columns(), key=lambda c: (c.first_consumer, c.name)
        )
        return inst + fw


def _path_dotted(path: AccessPath) -> str:
    parts = [path.root.name]
    for sel in path.selectors:
        if isinstance(sel, FieldSel):
            parts.append(sel.name)
    return ".".join(parts)


def _elem_type_after(path: AccessPath, checked: CheckedProgram) -> Type | None:
    """Resolve the value type at the end of the selector chain."""
    t: Type | None = path.root.type
    for sel in path.selectors:
        if isinstance(sel, FieldSel):
            if isinstance(t, ClassType):
                try:
                    t = checked.field_type(t.name, sel.name)
                except KeyError:
                    return None
            else:
                return None
        elif isinstance(sel, ElemSel):
            if isinstance(t, ArrayType):
                t = t.elem
            elif isinstance(t, RectdomainType):
                t = t.elem
            else:
                return None
    return t


class LayoutBuilder:
    """Derives :class:`PacketLayout` objects for the cut boundaries of a
    decomposition plan."""

    def __init__(
        self,
        chain: FilterChain,
        analysis: CommAnalysis,
        size_hints: dict[str, object] | None = None,
    ) -> None:
        self.chain = chain
        self.analysis = analysis
        self.checked = chain.checked
        self.size_hints = size_hints or {}

    # -- classification -------------------------------------------------------
    def _is_per_element(self, root: VarSymbol) -> bool:
        if root in self.chain.elem_vars:
            return True
        return root in self.chain.per_element_roots

    def _first_consumer_atom(self, path: AccessPath, after_atom: int) -> int:
        """Index of the first atom past ``after_atom`` whose Cons may read
        ``path`` (drives the §5 instance/field-wise decision)."""
        for idx in range(after_atom, len(self.chain.atoms)):
            facts = self.analysis.atom_facts[idx]
            if facts.cons.may_contain(path):
                return idx + 1  # 1-based atom index
        return len(self.chain.atoms)

    def _fixed_length(
        self, source: str, t: Type, owner_class: str | None = None
    ) -> int | None:
        """Numeric size hints fix a column's length; otherwise arrays are
        ragged.  Hints may be keyed by the dotted path, by Class.field, or
        by the bare field name."""
        parts = source.split(".")
        keys = [source]
        if owner_class is not None and len(parts) >= 2:
            keys.append(f"{owner_class}.{parts[-1]}")
        if len(parts) >= 2:
            keys.append(parts[-1])
        for key in keys:
            hint = self.size_hints.get(key)
            if isinstance(hint, (int, float)):
                return int(hint)
        return None

    def _owning_class_name(self, path: AccessPath) -> str | None:
        """Class declaring the last field selector of ``path``."""
        t = path.root.type
        owner = None
        for sel in path.selectors:
            if isinstance(sel, FieldSel):
                if isinstance(t, ClassType):
                    owner = t.name
                    try:
                        t = self.checked.field_type(t.name, sel.name)
                    except KeyError:
                        return owner
            elif isinstance(sel, ElemSel):
                if isinstance(t, ArrayType):
                    t = t.elem
                elif isinstance(t, RectdomainType):
                    t = t.elem
        return owner

    # -- main entry -----------------------------------------------------------
    def layout_for_boundary(
        self,
        boundary_index: int,
        consumer_unit_atoms: set[int],
        written_before_index: int | None = None,
    ) -> PacketLayout:
        """Layout for cut boundary ``b_{boundary_index}`` (1-based).

        ``consumer_unit_atoms`` — 1-based indices of the atoms running on
        the unit that receives this stream (decides instance-wise packing).
        ``written_before_index`` — atoms considered upstream for the
        reduction scratch rule (defaults to the boundary position; the raw
        input layout passes 0, nothing runs before the source).
        """
        if written_before_index is None:
            written_before_index = boundary_index
        reqcomm: PathSet = self.analysis.reqcomm[boundary_index - 1]
        layout = PacketLayout()
        seen: set[str] = set()
        for path in reqcomm:
            root = path.root
            if root.is_reduction:
                if root.name not in layout.reduction_roots:
                    # only ship accumulators already written upstream;
                    # pristine ones are re-allocated by the consumer's init
                    from ..analysis.reqcomm import VolumeModel

                    written = VolumeModel(self.checked)._reductions_written_before(
                        self.chain, written_before_index
                    )
                    if root in written:
                        layout.reduction_roots.append(root.name)
                continue
            if self._is_per_element(root):
                self._add_element_path(
                    layout, path, boundary_index, consumer_unit_atoms, seen
                )
            else:
                self._add_packet_path(layout, path, seen)
        layout.columns = layout.sorted_for_packing()
        return layout

    # -- helpers ----------------------------------------------------------------
    def _add_element_path(
        self,
        layout: PacketLayout,
        path: AccessPath,
        boundary_index: int,
        consumer_unit_atoms: set[int],
        seen: set[str],
    ) -> None:
        t = _elem_type_after(path, self.checked)
        source = _path_dotted(path)
        if isinstance(t, ClassType):
            # whole-object path: trim to the fields used downstream when
            # they are individually named, else carry every field
            decl = self.checked.class_decls[t.name]
            for f in decl.fields:
                sub = path.field(f.name, self.checked.field_type(t.name, f.name))
                self._add_element_path(
                    layout, sub, boundary_index, consumer_unit_atoms, seen
                )
            return
        if source in seen:
            return
        seen.add(source)
        first_atom = self._first_consumer_atom(path, boundary_index)
        group = "instance" if first_atom in consumer_unit_atoms else "fieldwise"
        if isinstance(t, PrimType):
            layout.columns.append(
                ColumnSpec(
                    name=mangle(source),
                    source=source,
                    dtype=dtype_for(t),
                    ragged=False,
                    length=1,
                    group=group,
                    first_consumer=first_atom,
                )
            )
        elif isinstance(t, ArrayType) and isinstance(t.elem, PrimType):
            owner = self._owning_class_name(path)
            fixed = self._fixed_length(source, t, owner)
            layout.columns.append(
                ColumnSpec(
                    name=mangle(source),
                    source=source,
                    dtype=dtype_for(t.elem),
                    ragged=fixed is None,
                    length=fixed or 1,
                    group="fieldwise" if fixed is None else group,
                    first_consumer=first_atom,
                )
            )
        else:
            raise ValueError(
                f"cannot lay out per-element path {source} of type {t}"
            )

    def _add_packet_path(
        self, layout: PacketLayout, path: AccessPath, seen: set[str]
    ) -> None:
        t = _elem_type_after(path, self.checked)
        source = _path_dotted(path)
        if source in seen:
            return
        if isinstance(t, ClassType):
            for f in self.checked.class_decls[t.name].fields:
                sub = path.field(f.name, self.checked.field_type(t.name, f.name))
                self._add_packet_path(layout, sub, seen)
            return
        if isinstance(t, RectdomainType):
            # the raw collection: expand its element class as columns
            for f in self.checked.class_decls[t.elem.name].fields:
                ftype = self.checked.field_type(t.elem.name, f.name)
                source_f = f"{source}.{f.name}"
                if source_f in seen:
                    continue
                seen.add(source_f)
                if isinstance(ftype, PrimType):
                    layout.columns.append(
                        ColumnSpec(
                            name=mangle(source_f),
                            source=source_f,
                            dtype=dtype_for(ftype),
                            group="instance",
                        )
                    )
                elif isinstance(ftype, ArrayType) and isinstance(
                    ftype.elem, PrimType
                ):
                    fixed = self._fixed_length(source_f, ftype, t.elem.name)
                    layout.columns.append(
                        ColumnSpec(
                            name=mangle(source_f),
                            source=source_f,
                            dtype=dtype_for(ftype.elem),
                            ragged=fixed is None,
                            length=fixed or 1,
                            group="fieldwise" if fixed is None else "instance",
                        )
                    )
            return
        seen.add(source)
        if isinstance(t, PrimType):
            layout.packet_fields.append(
                PacketFieldSpec(
                    name=mangle(source), source=source, dtype=dtype_for(t)
                )
            )
        elif isinstance(t, ArrayType) and isinstance(t.elem, PrimType):
            layout.packet_fields.append(
                PacketFieldSpec(
                    name=mangle(source),
                    source=source,
                    dtype=dtype_for(t.elem),
                    array=True,
                )
            )
        elif t is None:
            # untyped external (e.g. synthesized): carry as double scalar
            layout.packet_fields.append(
                PacketFieldSpec(
                    name=mangle(source),
                    source=source,
                    dtype=np.dtype(np.float64),
                )
            )
        else:
            raise ValueError(f"cannot lay out packet path {source} of type {t}")
