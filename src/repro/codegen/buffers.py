"""Packet encoding/decoding — the concrete realization of Figure 4.

A :class:`RecordBatch` is the in-memory form of one packet crossing a
filter boundary: per-record columns (fixed-width or ragged), once-per-packet
fields, and packed reduction state.  :func:`pack` serializes a batch against
a :class:`~repro.codegen.layout.PacketLayout` into a single contiguous
``bytes`` buffer:

* the **instance-wise** group becomes one NumPy structured array — records
  interleaved, exactly the ``<count, t1.x, t1.y, ..., tcount.x, tcount.y>``
  arrangement of §5;
* each **field-wise** column is a contiguous region with its own offset —
  the ``<count, offset1, t1.x .. tcount.x, t1.y .. tcount.y>`` arrangement
  (ragged columns carry an offsets table, the generalization for
  variable-length values like triangle lists);
* packet fields and reduction state follow in layout order.

``unpack`` inverts ``pack`` bit-for-bit (property-tested).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .layout import ColumnSpec, PacketLayout
from .runtime_support import ragged_from_rows

_MAGIC = b"RB02"
_HDR = struct.Struct("<4sqq")  # magic, packet index, record count
_I64 = struct.Struct("<q")


@dataclass(slots=True)
class RecordBatch:
    """One packet's worth of records between two filters."""

    count: int = 0
    packet: int = -1
    #: fixed-width per-record data: shape (count,) or (count, L)
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: ragged per-record data: (values, offsets) with len(offsets)==count+1
    ragged: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: once-per-packet values (python scalars or arrays)
    packet_fields: dict[str, Any] = field(default_factory=dict)
    #: packed reduction state: root -> {field: ndarray}
    reductions: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def ragged_row(self, source: str, r: int) -> np.ndarray:
        values, offsets = self.ragged[source]
        return values[offsets[r] : offsets[r + 1]]

    @property
    def nbytes(self) -> int:
        total = 0
        for arr in self.columns.values():
            total += arr.nbytes
        for values, offsets in self.ragged.values():
            total += values.nbytes + offsets.nbytes
        for val in self.packet_fields.values():
            total += val.nbytes if isinstance(val, np.ndarray) else 8
        for packed in self.reductions.values():
            total += sum(a.nbytes for a in packed.values())
        return total


def _as_ragged_chunk(
    value: Any, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a columnar chunk to a ``(values, offsets)`` pair."""
    if isinstance(value, tuple):
        values, offsets = value
        return (
            np.asarray(values, dtype=dtype).reshape(-1),
            np.asarray(offsets, dtype=np.int64),
        )
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 2:
        n, length = arr.shape
        return arr.reshape(-1), np.arange(n + 1, dtype=np.int64) * length
    if arr.ndim == 1:
        return arr, np.arange(len(arr) + 1, dtype=np.int64)
    raise TypeError(f"cannot treat array of shape {arr.shape} as ragged chunk")


def _as_fixed_chunk(value: Any, dtype: np.dtype, length: int) -> np.ndarray:
    """Normalize a columnar chunk to a fixed ``(n, length)`` array,
    zero-padding short rows exactly like the row-wise builder."""
    if isinstance(value, tuple):
        values, offsets = value
        values = np.asarray(values, dtype=dtype).reshape(-1)
        offsets = np.asarray(offsets, dtype=np.int64)
        n = len(offsets) - 1
        lens = offsets[1:] - offsets[:-1]
        arr = np.zeros((n, length), dtype=dtype)
        if len(values):
            row_idx = np.repeat(np.arange(n, dtype=np.int64), lens)
            col_idx = np.arange(len(values), dtype=np.int64) - np.repeat(
                offsets[:-1], lens
            )
            arr[row_idx, col_idx] = values
        return arr
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 2 and arr.shape[1] == length:
        return arr
    if arr.ndim == 2 and arr.shape[1] < length:
        out = np.zeros((arr.shape[0], length), dtype=dtype)
        out[:, : arr.shape[1]] = arr
        return out
    raise TypeError(
        f"cannot treat array of shape {arr.shape} as fixed({length}) chunk"
    )


def _chunk_count(value: Any) -> int:
    if isinstance(value, tuple):
        return len(value[1]) - 1
    arr = np.asarray(value)
    if arr.ndim == 0:
        raise TypeError("columnar chunk must have a record axis")
    return arr.shape[0]


class BatchBuilder:
    """Output-batch builder used by generated filter code.

    Scalar-backend code calls :meth:`append` once per record; vector-backend
    code calls :meth:`extend` once per columnar chunk.  The two cannot be
    mixed on one builder."""

    def __init__(self, layout: PacketLayout, packet: int = -1) -> None:
        self.layout = layout
        self.packet = packet
        self._rows: dict[str, list] = {c.source: [] for c in layout.columns}
        self._chunks: dict[str, list] = {c.source: [] for c in layout.columns}
        self._mode: str | None = None
        self._count = 0
        self.packet_fields: dict[str, Any] = {}
        self.reductions: dict[str, dict[str, np.ndarray]] = {}

    def _set_mode(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise RuntimeError(
                "cannot mix append() and extend() on one BatchBuilder"
            )

    def append(self, **values: Any) -> None:
        """One output record; keyword names are *mangled* column names."""
        self._set_mode("rows")
        by_name = {c.name: c for c in self.layout.columns}
        for name, value in values.items():
            col = by_name[name]
            self._rows[col.source].append(value)
        self._count += 1

    def append_row(self, row: dict[str, Any]) -> None:
        self.append(**row)

    def extend(self, **values: Any) -> None:
        """A columnar chunk of output records.

        Keyword names are mangled column names (as for :meth:`append`); each
        value covers the whole chunk: a 1-D array for scalar columns, a
        ``(n, L)`` array or ragged pair for array columns.  All columns of
        the layout must be supplied with a consistent record count."""
        self._set_mode("chunks")
        by_name = {c.name: c for c in self.layout.columns}
        n = None
        for name, value in values.items():
            col = by_name[name]
            vn = _chunk_count(value)
            if n is None:
                n = vn
            elif vn != n:
                raise ValueError(
                    f"column {name}: chunk covers {vn} records, expected {n}"
                )
            if col.ragged:
                self._chunks[col.source].append(_as_ragged_chunk(value, col.dtype))
            elif col.length > 1:
                self._chunks[col.source].append(
                    _as_fixed_chunk(value, col.dtype, col.length)
                )
            else:
                arr = np.asarray(value, dtype=col.dtype)
                if arr.ndim != 1:
                    raise TypeError(
                        f"column {name}: scalar column chunk must be 1-D, "
                        f"got shape {arr.shape}"
                    )
                self._chunks[col.source].append(arr)
        if n is not None:
            self._count += n

    def build(self) -> RecordBatch:
        batch = RecordBatch(count=self._count, packet=self.packet)
        if self._mode == "chunks":
            self._build_from_chunks(batch)
        else:
            self._build_from_rows(batch)
        batch.packet_fields = dict(self.packet_fields)
        batch.reductions = dict(self.reductions)
        return batch

    def _build_from_rows(self, batch: RecordBatch) -> None:
        for col in self.layout.columns:
            rows = self._rows[col.source]
            if col.ragged:
                batch.ragged[col.source] = ragged_from_rows(rows, col.dtype)
            elif col.length > 1:
                arr = np.zeros((self._count, col.length), dtype=col.dtype)
                for r, v in enumerate(rows):
                    arr[r, : len(v)] = v
                batch.columns[col.source] = arr
            else:
                batch.columns[col.source] = np.asarray(rows, dtype=col.dtype)

    def _build_from_chunks(self, batch: RecordBatch) -> None:
        for col in self.layout.columns:
            chunks = self._chunks[col.source]
            if col.ragged:
                if not chunks:
                    batch.ragged[col.source] = (
                        np.zeros(0, dtype=col.dtype),
                        np.zeros(self._count + 1, dtype=np.int64),
                    )
                    continue
                values = np.concatenate([c[0] for c in chunks])
                offsets = np.zeros(self._count + 1, dtype=np.int64)
                pos, base = 1, np.int64(0)
                for _, off in chunks:
                    k = len(off) - 1
                    offsets[pos : pos + k] = off[1:] + base
                    base += off[-1]
                    pos += k
                batch.ragged[col.source] = (values, offsets)
            elif col.length > 1:
                batch.columns[col.source] = (
                    np.concatenate(chunks, axis=0)
                    if chunks
                    else np.zeros((0, col.length), dtype=col.dtype)
                )
            else:
                batch.columns[col.source] = (
                    np.concatenate(chunks)
                    if chunks
                    else np.zeros(0, dtype=col.dtype)
                )


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _put_array(parts: list[bytes], arr: np.ndarray) -> None:
    raw = np.ascontiguousarray(arr).tobytes()
    parts.append(_I64.pack(len(raw)))
    parts.append(raw)


def _take_array(
    buf: memoryview, pos: int, dtype: np.dtype, shape: tuple[int, ...]
) -> tuple[np.ndarray, int]:
    (nbytes,) = _I64.unpack_from(buf, pos)
    pos += _I64.size
    arr = np.frombuffer(buf[pos : pos + nbytes], dtype=dtype).reshape(shape).copy()
    return arr, pos + nbytes


def _structured_dtype(columns: list[ColumnSpec]) -> np.dtype:
    fields = []
    for col in columns:
        if col.length > 1:
            fields.append((col.name, col.dtype, (col.length,)))
        else:
            fields.append((col.name, col.dtype))
    return np.dtype(fields)


def pack(batch: RecordBatch, layout: PacketLayout) -> bytes:
    """Serialize ``batch`` per ``layout`` (see module docstring)."""
    parts: list[bytes] = [_HDR.pack(_MAGIC, batch.packet, batch.count)]

    instance = [c for c in layout.columns if c.group == "instance" and not c.ragged]
    fieldwise = [c for c in layout.columns if c.group != "instance" or c.ragged]

    if instance:
        sdt = _structured_dtype(instance)
        rec = np.zeros(batch.count, dtype=sdt)
        for col in instance:
            rec[col.name] = batch.columns[col.source]
        _put_array(parts, rec.view(np.uint8).reshape(-1))
    for col in fieldwise:
        if col.ragged:
            values, offsets = batch.ragged[col.source]
            _put_array(parts, offsets)
            _put_array(parts, values)
        else:
            _put_array(parts, batch.columns[col.source])

    for spec in layout.packet_fields:
        val = batch.packet_fields[spec.source]
        if spec.array:
            arr = np.asarray(val, dtype=spec.dtype)
            _put_array(parts, arr)
        else:
            parts.append(np.asarray([val], dtype=spec.dtype).tobytes())

    for root in layout.reduction_roots:
        packed = batch.reductions[root]
        parts.append(_I64.pack(len(packed)))
        for name in sorted(packed):
            arr = packed[name]
            name_b = name.encode()
            parts.append(_I64.pack(len(name_b)))
            parts.append(name_b)
            dt = str(arr.dtype).encode()
            parts.append(_I64.pack(len(dt)))
            parts.append(dt)
            _put_array(parts, arr.reshape(-1))
    return b"".join(parts)


def unpack(data: bytes, layout: PacketLayout) -> RecordBatch:
    """Inverse of :func:`pack`."""
    buf = memoryview(data)
    magic, packet, count = _HDR.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise ValueError("not a RecordBatch buffer")
    pos = _HDR.size
    batch = RecordBatch(count=count, packet=packet)

    instance = [c for c in layout.columns if c.group == "instance" and not c.ragged]
    fieldwise = [c for c in layout.columns if c.group != "instance" or c.ragged]

    if instance:
        sdt = _structured_dtype(instance)
        raw, pos = _take_array(buf, pos, np.dtype(np.uint8), (-1,))
        rec = raw.view(sdt)
        for col in instance:
            batch.columns[col.source] = np.ascontiguousarray(rec[col.name])
    for col in fieldwise:
        if col.ragged:
            offsets, pos = _take_array(buf, pos, np.dtype(np.int64), (count + 1,))
            values, pos = _take_array(buf, pos, col.dtype, (-1,))
            batch.ragged[col.source] = (values, offsets)
        else:
            shape = (count, col.length) if col.length > 1 else (count,)
            arr, pos = _take_array(buf, pos, col.dtype, shape)
            batch.columns[col.source] = arr

    for spec in layout.packet_fields:
        if spec.array:
            arr, pos = _take_array(buf, pos, spec.dtype, (-1,))
            batch.packet_fields[spec.source] = arr
        else:
            val = np.frombuffer(buf[pos : pos + spec.dtype.itemsize], dtype=spec.dtype)[0]
            batch.packet_fields[spec.source] = val.item()
            pos += spec.dtype.itemsize

    for root in layout.reduction_roots:
        (n_entries,) = _I64.unpack_from(buf, pos)
        pos += _I64.size
        packed: dict[str, np.ndarray] = {}
        for _ in range(n_entries):
            (nlen,) = _I64.unpack_from(buf, pos)
            pos += _I64.size
            name = bytes(buf[pos : pos + nlen]).decode()
            pos += nlen
            (dlen,) = _I64.unpack_from(buf, pos)
            pos += _I64.size
            dt = np.dtype(bytes(buf[pos : pos + dlen]).decode())
            pos += dlen
            arr, pos = _take_array(buf, pos, dt, (-1,))
            packed[name] = arr
        batch.reductions[root] = packed
    return batch
