"""DataCutter-style filter-stream runtime substrate (paper §2.2).

Built from scratch for this reproduction: filters with
``init``/``process``/``finalize``, streams moving fixed-size buffers,
transparent copies with round-robin distribution, two interchangeable
execution engines (a threaded local engine and a process engine with
shared-memory transport — see :mod:`repro.datacutter.engine`), and a
deterministic discrete-event simulator used by the experiment harness."""

from .buffers import Buffer, BufferKind, StreamStats, payload_nbytes
from .filters import (
    Filter,
    FilterContext,
    FilterSpec,
    FunctionFilter,
    SourceFilter,
)
from .engine import ENGINES, Engine, EngineOptions, make_engine, run_pipeline
from .mp import ProcessPipeline
from .obs import Trace, TraceCollector
from .placement import PlacedPipeline
from .recovery import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    RetryPolicy,
)
from .runtime import PipelineError, RunResult, ThreadedPipeline
from .simulation import (
    SimReport,
    SimStage,
    multi_server_fifo,
    simulate,
    simulate_pipeline,
    stages_for_pipeline,
)
from .streams import (
    Broadcast,
    ByPacket,
    CollectorStream,
    DistributionPolicy,
    LogicalStream,
    RoundRobin,
)

__all__ = [
    "Broadcast",
    "Buffer",
    "BufferKind",
    "ByPacket",
    "CollectorStream",
    "DistributionPolicy",
    "ENGINES",
    "Engine",
    "EngineOptions",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "Filter",
    "FilterContext",
    "FilterSpec",
    "FunctionFilter",
    "InjectedCrash",
    "LogicalStream",
    "PipelineError",
    "PlacedPipeline",
    "ProcessPipeline",
    "RetryPolicy",
    "RoundRobin",
    "RunResult",
    "SimReport",
    "SimStage",
    "SourceFilter",
    "StreamStats",
    "ThreadedPipeline",
    "Trace",
    "TraceCollector",
    "make_engine",
    "multi_server_fifo",
    "payload_nbytes",
    "run_pipeline",
    "simulate",
    "simulate_pipeline",
    "stages_for_pipeline",
]
