"""Threaded local execution engine for filter pipelines.

Runs a placed pipeline of :class:`~repro.datacutter.filters.FilterSpec` with
real queues, real buffer copies, and transparent copies as threads.  This is
the *functional* substrate: it executes the same generated code a DataCutter
deployment would and verifies outputs; wall-clock pipeline behaviour at
cluster scale is the job of :mod:`repro.datacutter.simulation`.

The pipeline shape is linear (the paper's model: each filter has one input
and one output stream), with the first filter a
:class:`~repro.datacutter.filters.SourceFilter` and the results collected
from the last filter's output stream.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Sequence

from .buffers import Buffer
from .filters import Filter, FilterContext, FilterSpec, SourceFilter
from .obs.trace import Span, TraceCollector
from .recovery.faults import FaultPlan, make_injector
from .recovery.policy import RetryPolicy
from .recovery.replay import LocalRecoverySink, run_recoverable_copy
from .streams import CollectorStream, LogicalStream, RoundRobin


@dataclass(slots=True)
class RunResult:
    """Outputs plus per-stream accounting of one pipeline run."""

    outputs: list[Buffer]
    stream_bytes: dict[str, int] = field(default_factory=dict)
    stream_buffers: dict[str, int] = field(default_factory=dict)
    #: stream name -> {packet index -> bytes} (drives per-packet link times)
    stream_by_packet: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def payloads(self) -> list[Any]:
        return [b.payload for b in self.outputs]

    def total_bytes(self) -> int:
        return sum(self.stream_bytes.values())


class PipelineError(RuntimeError):
    """A filter copy raised; carries the original traceback text."""


class ThreadedPipeline:
    """Executes one unit-of-work over a linear filter pipeline."""

    engine_name = "threaded"

    def __init__(
        self,
        specs: Sequence[FilterSpec],
        queue_capacity: int = 32,
        join_timeout: float = 60.0,
        trace: TraceCollector | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity} "
                "(capacity 0 would silently disable backpressure)"
            )
        self.specs = list(specs)
        self.queue_capacity = queue_capacity
        self.join_timeout = join_timeout
        self.trace = trace
        self.retry = retry
        self.faults = FaultPlan.coerce(faults)

    def rebind(self, specs: Sequence[FilterSpec]) -> None:
        """Point the engine at a new placed pipeline for the next run.

        ``run()`` builds streams and threads fresh each unit of work, so
        swapping the spec list is all a warm session
        (:class:`~repro.datacutter.engine.EngineSession`) needs to reuse
        the validated engine scaffolding across requests."""
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        self.specs = list(specs)

    def close(self) -> None:
        """Lifecycle no-op: threads are created and joined inside each
        ``run()``, so there is nothing resident to tear down.  Exists so
        session/pool teardown can treat every engine uniformly."""

    def run(self) -> RunResult:
        specs = self.specs
        trace = self.trace
        if trace is not None:
            trace.note(engine=self.engine_name)
        streams: list[LogicalStream] = []
        for k in range(len(specs) - 1):
            policy = specs[k].out_policy or RoundRobin()
            # spec-attached policies survive across runs; reset any routing
            # cursor so run N+1 routes identically to run N
            policy.reset()
            streams.append(
                LogicalStream(
                    name=f"{specs[k].name}->{specs[k + 1].name}",
                    n_producers=specs[k].width,
                    n_consumers=specs[k + 1].width,
                    capacity=self.queue_capacity,
                    policy=policy,
                    trace=trace,
                )
            )
        collector = CollectorStream(
            name=f"{specs[-1].name}->out",
            n_producers=specs[-1].width,
            trace=trace,
        )
        out_streams: list[LogicalStream] = streams + [collector]
        errors: list[str] = []
        threads: list[threading.Thread] = []

        for k, spec in enumerate(specs):
            in_stream = streams[k - 1] if k > 0 else None
            out_stream = out_streams[k]
            for copy_index in range(spec.width):
                thread = threading.Thread(
                    target=self._run_copy,
                    args=(spec, copy_index, in_stream, out_stream, errors, trace),
                    name=f"{spec.name}#{copy_index}",
                    daemon=True,
                )
                threads.append(thread)

        for thread in threads:
            thread.start()
        # Join *before* collecting: every copy closes its output stream in
        # a finally block, so once all threads have exited the collector is
        # guaranteed to hold EOS and results() cannot block — and stream
        # stats are never read mid-flight.  (Joining first is safe because
        # the collector queue is unbounded: the last stage never blocks on
        # the sink, so the pipeline drains without the caller consuming.)
        stuck: list[str] = []
        for thread in threads:
            thread.join(timeout=self.join_timeout)
            if thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            detail = "\n".join(errors) + "\n" if errors else ""
            raise PipelineError(
                f"{detail}filter copies still running after "
                f"{self.join_timeout:.0f}s join timeout (stuck): "
                f"{', '.join(stuck)}; their daemon threads were abandoned"
            )
        if errors:
            raise PipelineError("\n".join(errors))
        outputs = collector.results()

        result = RunResult(outputs=outputs)
        for stream in streams:
            result.stream_bytes[stream.name] = stream.stats.bytes
            result.stream_buffers[stream.name] = stream.stats.buffers
            result.stream_by_packet[stream.name] = dict(stream.stats.by_packet)
        result.stream_bytes[collector.name] = collector.stats.bytes
        result.stream_buffers[collector.name] = collector.stats.buffers
        result.stream_by_packet[collector.name] = dict(collector.stats.by_packet)
        return result

    def _run_copy(
        self,
        spec: FilterSpec,
        copy_index: int,
        in_stream: LogicalStream | None,
        out_stream: LogicalStream,
        errors: list[str],
        trace: TraceCollector | None = None,
    ) -> None:
        if self.retry is not None or self.faults is not None:
            self._run_copy_recoverable(
                spec, copy_index, in_stream, out_stream, errors, trace
            )
            return
        ctx = FilterContext(
            name=spec.name,
            copy_index=copy_index,
            n_copies=spec.width,
            emit=out_stream.put,
            params=spec.params,
        )
        filt: Filter = spec.make()
        try:
            run_filter_copy(
                filt, ctx, spec, copy_index, in_stream, out_stream, trace
            )
        except Exception:  # noqa: BLE001 - reported to the caller
            errors.append(
                f"filter {spec.name}#{copy_index} failed:\n{traceback.format_exc()}"
            )
        finally:
            out_stream.close_producer()

    def _run_copy_recoverable(
        self,
        spec: FilterSpec,
        copy_index: int,
        in_stream: LogicalStream | None,
        out_stream: LogicalStream,
        errors: list[str],
        trace: TraceCollector | None = None,
    ) -> None:
        """In-thread retry loop for one logical filter copy.

        Each attempt gets a fresh filter instance resumed from the
        :class:`~repro.datacutter.recovery.replay.LocalRecoverySink`'s
        bookkeeping — checkpointed state plus replay of unacknowledged
        packets — so a mid-packet failure never loses or duplicates
        packet effects downstream."""
        policy = self.retry or RetryPolicy(max_attempts=1)
        budget = policy.attempts_for(spec.name)
        sink = LocalRecoverySink()
        try:
            for attempt in range(budget):
                if attempt > 0:
                    restart_t0 = time.perf_counter()
                    time.sleep(policy.backoff_for(attempt))
                ctx = FilterContext(
                    name=spec.name,
                    copy_index=copy_index,
                    n_copies=spec.width,
                    emit=out_stream.put,
                    params=spec.params,
                )
                filt: Filter = spec.make()
                injector = make_injector(
                    self.faults, spec.name, copy_index, attempt
                )
                if attempt > 0 and trace is not None:
                    trace.record_span(
                        Span(
                            spec.name,
                            copy_index,
                            "restart",
                            None,
                            restart_t0,
                            time.perf_counter(),
                        )
                    )
                try:
                    run_recoverable_copy(
                        filt,
                        ctx,
                        spec,
                        copy_index,
                        in_stream,
                        out_stream,
                        progress=sink.progress(attempt),
                        sink=sink,
                        trace=trace,
                        injector=injector,
                    )
                    return
                except Exception:  # noqa: BLE001 - retried or reported
                    if attempt + 1 >= budget:
                        errors.append(
                            f"filter {spec.name}#{copy_index} failed after "
                            f"{attempt + 1} attempt(s) (retry budget {budget}):\n"
                            f"{traceback.format_exc()}"
                        )
                        return
        finally:
            out_stream.close_producer()


def run_filter_copy(
    filt: Filter,
    ctx: FilterContext,
    spec: FilterSpec,
    copy_index: int,
    in_stream: Any,
    out_stream: Any,
    trace: TraceCollector | None = None,
    heartbeat: Any = None,
) -> None:
    """The unit-of-work protocol of one filter copy, shared by both engines.

    ``init``, then either ``generate`` (source copies split packets
    round-robin) or a ``get``/``process`` loop until end-of-stream, then
    ``finalize``.  ``in_stream``/``out_stream`` are duck-typed
    (:class:`~repro.datacutter.streams.LogicalStream` on the threaded
    engine, :class:`~repro.datacutter.mp.channels.ProcessEdge` on the
    process engine).  With a ``trace`` collector, every callback becomes
    a :class:`~repro.datacutter.obs.trace.Span` carrying the packet id —
    the engine-native measurement the experiment harness consumes.
    ``heartbeat`` (process engine) is stamped once per packet so the
    supervisor's timeout diagnostics can name a stalled filter.
    """
    t0 = time.perf_counter()
    filt.init(ctx)
    if trace is not None:
        trace.record_span(
            Span(spec.name, copy_index, "init", None, t0, time.perf_counter())
        )
    if in_stream is None:
        if not isinstance(filt, SourceFilter):
            raise TypeError(f"first filter '{spec.name}' must be a SourceFilter")
        gen = filt.generate(ctx)
        packet = 0
        while True:
            if heartbeat is not None:
                heartbeat()
            t0 = time.perf_counter()
            try:
                payload = next(gen)
            except StopIteration:
                break
            if packet % spec.width == copy_index:
                # trace only packets this copy owns: every copy runs the
                # generator over the full packet sequence and discards the
                # other width-1 shares, so tracing unconditionally would
                # count each packet width times and skew source cost
                if trace is not None:
                    trace.record_span(
                        Span(
                            spec.name,
                            copy_index,
                            "generate",
                            packet,
                            t0,
                            time.perf_counter(),
                        )
                    )
                if isinstance(payload, Buffer):
                    out_stream.put(payload)
                else:
                    ctx.write(payload, packet)
            packet += 1
    else:
        while True:
            buf = in_stream.get(copy_index)
            if heartbeat is not None:
                heartbeat()
            if buf is None:
                break
            t0 = time.perf_counter()
            filt.process(buf, ctx)
            if trace is not None:
                trace.record_span(
                    Span(
                        spec.name,
                        copy_index,
                        "process",
                        buf.packet,
                        t0,
                        time.perf_counter(),
                    )
                )
    t0 = time.perf_counter()
    filt.finalize(ctx)
    if trace is not None:
        trace.record_span(
            Span(spec.name, copy_index, "finalize", None, t0, time.perf_counter())
        )


# run_pipeline moved to repro.datacutter.engine, where it dispatches over
# the engine registry (threaded / process); re-exported unchanged from the
# repro.datacutter package.
