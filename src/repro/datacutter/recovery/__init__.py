"""Packet-granularity fault tolerance for filter pipelines.

The paper's ``PipelinedLoop`` semantics (§3) make packets independent
except through reduction objects whose accumulation is associative and
commutative.  That property is exactly what makes two recovery moves
*provably safe* for the runtime to perform behind the program's back:

* **packet replay** — a packet delivered to a filter copy that died
  before acknowledging it can be re-delivered to a restarted copy; no
  other packet's result can observe the difference;
* **reduction checkpointing** — a filter holding reduction state can
  snapshot its accumulator at packet boundaries and a restarted copy can
  resume from the last checkpoint without double-counting, because the
  checkpoint records exactly which packets it folds in.

This package is the engine-independent half of that machinery, shared by
:class:`~repro.datacutter.runtime.ThreadedPipeline` (in-thread retry
loops) and the process engine's supervisor (worker respawn):

* :mod:`~repro.datacutter.recovery.policy` — :class:`RetryPolicy`
  (attempt budgets, exponential backoff with jitter, per-filter
  overrides);
* :mod:`~repro.datacutter.recovery.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`, the deterministic fault injection used by
  tests, CI, and the ``python -m repro chaos`` CLI;
* :mod:`~repro.datacutter.recovery.checkpoint` — accumulator
  snapshot/restore at packet boundaries;
* :mod:`~repro.datacutter.recovery.replay` — the recoverable
  unit-of-work runner (transactional per-packet emits, in-flight
  tracking, replay) plus :class:`CopyProgress`, the record of one
  logical copy's survivable progress that a restart resumes from.

Recovery is opt-in: with ``EngineOptions(retry=None, faults=None)`` —
the default — both engines run the legacy zero-overhead path.
"""

from .checkpoint import (
    CheckpointError,
    clone_state,
    freeze_state,
    restore_state,
    snapshot_state,
)
from .faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
)
from .policy import RetryPolicy
from .replay import (
    CopyProgress,
    LocalRecoverySink,
    RecoverySink,
    run_recoverable_copy,
)

__all__ = [
    "FAULT_KINDS",
    "CheckpointError",
    "CopyProgress",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "LocalRecoverySink",
    "RecoverySink",
    "RetryPolicy",
    "clone_state",
    "freeze_state",
    "restore_state",
    "run_recoverable_copy",
    "snapshot_state",
]
