"""Retry policy: how many times, and how long between attempts.

One :class:`RetryPolicy` rides on
:class:`~repro.datacutter.engine.EngineOptions` and is interpreted by
both engines identically: a filter copy gets ``attempts_for(name)``
total attempts (first run included), with exponential backoff and
jitter between them so restarted copies of a widened stage don't
stampede the survivor's queues in lockstep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Attempt budget and backoff schedule for filter-copy recovery.

    ``max_attempts`` counts *total* attempts per logical filter copy,
    first run included — ``max_attempts=3`` means up to two restarts.
    ``per_filter`` overrides the budget for individual logical filters
    by name (e.g. give a flaky data-host source more headroom than the
    viewing sink).
    """

    #: total attempts per filter copy (>= 1); 1 disables retry
    max_attempts: int = 3
    #: backoff before restart r (1-based): base * factor**(r-1), capped
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: uniform jitter fraction applied to the backoff (0 disables)
    jitter: float = 0.1
    #: logical filter name -> max_attempts override
    per_filter: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        for name, attempts in self.per_filter.items():
            if attempts < 1:
                raise ValueError(
                    f"per_filter[{name!r}] must be >= 1, got {attempts}"
                )

    def attempts_for(self, filter_name: str) -> int:
        """Total attempt budget for one logical filter."""
        return int(self.per_filter.get(filter_name, self.max_attempts))

    def backoff_for(
        self, restart: int, rng: random.Random | None = None
    ) -> float:
        """Seconds to wait before restart number ``restart`` (1-based)."""
        if restart < 1:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (restart - 1),
            self.backoff_max,
        )
        if self.jitter > 0.0:
            r = rng.random() if rng is not None else random.random()
            delay *= 1.0 + self.jitter * (2.0 * r - 1.0)
        return max(delay, 0.0)
