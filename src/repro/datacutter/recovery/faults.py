"""Deterministic fault injection for pipeline runs.

A :class:`FaultPlan` (carried on ``EngineOptions.faults``) describes
which filter copies misbehave, how, and on which packet.  The engines
build one :class:`FaultInjector` per copy *attempt*, so a fault that
fired on attempt 0 does not re-fire after the copy is restarted — which
is what lets the recovery tests assert full end-to-end healing.

Fault kinds (the failure modes the supervisor/retry machinery must
survive or diagnose):

* ``"exception"`` — raise :class:`FaultInjected` while handling packet
  k (a filter bug: traceback reaches the caller, copy is retried);
* ``"crash"`` — die abruptly on packet k: the process engine calls
  ``os._exit`` (no traceback, no goodbye — the supervisor's sentinel
  watch must notice), the threaded engine raises
  :class:`InjectedCrash`;
* ``"stall"`` — sleep ``stall_seconds`` on packet k (a wedged filter:
  heartbeat/timeout diagnostics must name it);
* ``"drop_heartbeat"`` — stop stamping the heartbeat from packet k on
  (a live-but-silent worker: the stalest-heartbeat diagnostic must
  still point at it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

FAULT_KINDS = frozenset({"exception", "crash", "stall", "drop_heartbeat"})


class FaultInjected(RuntimeError):
    """An injected filter failure (retryable, carries a traceback)."""


class InjectedCrash(FaultInjected):
    """An injected abrupt death (the threaded engine's stand-in for a
    process crash, where no real SIGKILL can target one thread)."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One injected fault, pinned to a filter copy and packet."""

    #: logical filter name the fault targets
    filter: str
    #: fault kind, one of :data:`FAULT_KINDS`
    kind: str = "exception"
    #: transparent-copy index the fault fires in
    copy: int = 0
    #: packet index that triggers the fault (source: owned packet index)
    packet: int = 0
    #: sleep length for ``kind="stall"``
    stall_seconds: float = 0.25
    #: number of *attempts* on which the fault fires; the default 1
    #: means the restarted copy runs clean, >= the retry budget means
    #: the copy can never succeed (budget-exhaustion tests)
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A run's worth of injected faults."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def coerce(cls, obj: "FaultPlan | Iterable[FaultSpec] | None") -> "FaultPlan | None":
        """Normalize ``EngineOptions.faults`` input (plan, iterable of
        specs, or None)."""
        if obj is None:
            return None
        if isinstance(obj, FaultPlan):
            return obj if obj.faults else None
        faults = tuple(obj)
        for f in faults:
            if not isinstance(f, FaultSpec):
                raise TypeError(f"faults must be FaultSpec instances, got {f!r}")
        return cls(faults) if faults else None

    def for_copy(self, filter_name: str, copy_index: int) -> tuple[FaultSpec, ...]:
        return tuple(
            f
            for f in self.faults
            if f.filter == filter_name and f.copy == copy_index
        )

    def __bool__(self) -> bool:
        return bool(self.faults)


class FaultInjector:
    """Applies one copy-attempt's faults at packet boundaries.

    Built per attempt: ``attempt`` gates firing (``attempt < times``),
    so restarted copies are only re-faulted when the plan says so.
    ``crash`` is the engine's abrupt-death action — ``os._exit`` in a
    worker process, None (raise :class:`InjectedCrash`) on a thread.
    """

    def __init__(
        self,
        faults: Sequence[FaultSpec],
        attempt: int = 0,
        crash: Callable[[FaultSpec], None] | None = None,
    ) -> None:
        self._faults = tuple(faults)
        self._attempt = attempt
        self._crash = crash
        self._heartbeat_dropped = False

    def __bool__(self) -> bool:
        return bool(self._faults)

    def wrap_heartbeat(self, heartbeat):
        """Heartbeat passthrough that ``drop_heartbeat`` can switch off."""
        if heartbeat is None or not any(
            f.kind == "drop_heartbeat" for f in self._faults
        ):
            return heartbeat

        def beat() -> None:
            if not self._heartbeat_dropped:
                heartbeat()

        return beat

    def on_packet(self, packet: int) -> None:
        """Fire any fault pinned to this packet (called by the runner
        once per owned/delivered packet, before its effects flush)."""
        for f in self._faults:
            if f.packet != packet or self._attempt >= f.times:
                continue
            if f.kind == "stall":
                time.sleep(f.stall_seconds)
            elif f.kind == "drop_heartbeat":
                self._heartbeat_dropped = True
            elif f.kind == "crash":
                if self._crash is not None:
                    self._crash(f)  # process engine: os._exit, no return
                raise InjectedCrash(
                    f"injected crash on packet {packet} "
                    f"(attempt {self._attempt})"
                )
            else:
                raise FaultInjected(
                    f"injected exception on packet {packet} "
                    f"(attempt {self._attempt})"
                )


def make_injector(
    faults: "FaultPlan | None",
    filter_name: str,
    copy_index: int,
    attempt: int,
    crash: Callable[[FaultSpec], None] | None = None,
) -> FaultInjector | None:
    """Injector for one copy attempt, or None when no fault targets it."""
    if not faults:
        return None
    copy_faults = faults.for_copy(filter_name, copy_index)
    if not copy_faults:
        return None
    return FaultInjector(copy_faults, attempt, crash)
