"""The recoverable unit-of-work runner: transactional emits + replay.

This is the fault-tolerant twin of
:func:`repro.datacutter.runtime.run_filter_copy`, sharing its protocol
(``init``, then ``generate`` or a ``get``/``process`` loop, then
``finalize``) but making every packet a transaction:

1. a delivered packet is reported **in flight** before processing;
2. emissions during ``process``/``generate`` are *staged*, not sent;
3. on success the staged buffers flush downstream, the accumulator is
   snapshotted, and the packet is **acknowledged** (the ack carries the
   snapshot, so "packet retired" and "state includes packet" commit
   atomically from the recovery manager's point of view);
4. a copy that dies mid-packet therefore leaves nothing downstream for
   that packet — the restarted copy replays exactly the unacknowledged
   packets on top of the last checkpoint.

Delivery is at-least-once: the engines guarantee a packet is never lost,
and the staging discipline turns replays into exactly-once *effects* for
every failure point at or before step 3.  (A crash landing in the
microscopic window between flush and acknowledgement — unreachable by
the packet-pinned :class:`~repro.datacutter.recovery.faults.FaultPlan`
kinds — would duplicate one packet's output; closing that window needs
consumer-side dedup, which the paper's stateless-filter model does not
require.)

Source copies are recovered by **regeneration** instead of
checkpointing: ``generate`` is deterministic over the declustered
input (the paper's data-host model), so a restarted source re-runs its
generator, skips the owned packets it already flushed, and rebuilds any
internal reduction state as a side effect — double-counting is
structurally impossible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Protocol

from ..buffers import Buffer
from ..filters import Filter, FilterContext, FilterSpec, SourceFilter
from ..obs.trace import Span, TraceCollector
from .checkpoint import clone_state, restore_state, snapshot_state
from .faults import FaultInjector


@dataclass(slots=True)
class CopyProgress:
    """One logical filter copy's survivable progress.

    Built by the recovery manager (the retry loop on the threaded
    engine, the supervisor on the process engine) from everything the
    previous attempts acknowledged; a restarted copy resumes from it."""

    #: 0 for the first run, incremented per restart
    attempt: int = 0
    #: last acknowledged accumulator snapshot (state dict or pickled
    #: bytes), None when the copy was stateless at last ack
    checkpoint: Any = None
    #: delivered-but-unacknowledged packets to reprocess, oldest first
    replay: list[tuple[int, Buffer]] = field(default_factory=list)
    #: next delivery sequence number (continues the dead copy's count)
    seq_start: int = 0
    #: end-of-stream sentinels the dead copy had already consumed
    #: (process engine: sentinels are gone from the queue for good)
    eos_preset: int = 0
    #: source mode: owned packet indices already flushed downstream
    emitted: set[int] = field(default_factory=set)
    #: threaded engine: the input stream's single EOS was consumed
    eos_seen: bool = False


class RecoverySink(Protocol):
    """Where the runner reports per-packet progress.

    The threaded engine records in memory (:class:`LocalRecoverySink`);
    the process engine ships control-queue messages to the supervisor."""

    def on_inflight(self, seq: int, buf: Buffer) -> None: ...  # pragma: no cover

    def on_ack(self, seq: int, state: dict | None) -> None: ...  # pragma: no cover

    def on_gen_ack(self, packet: int) -> None: ...  # pragma: no cover

    def on_eos(self) -> None: ...  # pragma: no cover


class LocalRecoverySink:
    """In-memory recovery bookkeeping for same-process (threaded) retry."""

    def __init__(self) -> None:
        self.inflight: dict[int, Buffer] = {}
        self.state: Any = None
        self.next_seq: int = 0
        self.emitted: set[int] = set()
        self.eos_seen: bool = False

    def on_inflight(self, seq: int, buf: Buffer) -> None:
        self.inflight[seq] = buf
        self.next_seq = max(self.next_seq, seq + 1)

    def on_ack(self, seq: int, state: dict | None) -> None:
        # clone before the next packet mutates the live accumulator
        self.state = clone_state(state)
        self.inflight.pop(seq, None)
        self.next_seq = max(self.next_seq, seq + 1)

    def on_gen_ack(self, packet: int) -> None:
        self.emitted.add(packet)

    def on_eos(self) -> None:
        self.eos_seen = True

    def progress(self, attempt: int) -> CopyProgress:
        """The resume point for the next attempt."""
        # clone again on the way out: the restored filter mutates its
        # accumulators in place, and a failure before the next ack must
        # not leak those partial effects back into the stored checkpoint
        return CopyProgress(
            attempt=attempt,
            checkpoint=clone_state(self.state),
            replay=sorted(self.inflight.items()),
            seq_start=self.next_seq,
            emitted=set(self.emitted),
            eos_seen=self.eos_seen,
        )


def run_recoverable_copy(
    filt: Filter,
    ctx: FilterContext,
    spec: FilterSpec,
    copy_index: int,
    in_stream: Any,
    out_stream: Any,
    *,
    progress: CopyProgress,
    sink: RecoverySink,
    trace: TraceCollector | None = None,
    heartbeat: Any = None,
    injector: FaultInjector | None = None,
) -> None:
    """One attempt of one filter copy under the recovery protocol.

    Raising (a filter bug or an injected fault) leaves the streams
    consistent: nothing for the failing packet was emitted, and the
    sink knows exactly which packets are unacknowledged.  The caller
    (retry loop / respawned worker) decides whether another attempt
    follows; ``out_stream.close_producer()`` is the caller's job and
    must happen exactly once per *logical* copy, after the final
    attempt's outcome is known.
    """
    if injector is not None:
        heartbeat = injector.wrap_heartbeat(heartbeat)

    staged: list[Buffer] = []
    ctx._emit = staged.append

    def flush() -> None:
        for buf in staged:
            out_stream.put(buf)
        staged.clear()

    t0 = time.perf_counter()
    filt.init(ctx)
    if progress.checkpoint is not None:
        restore_state(filt, progress.checkpoint, ctx)
    if trace is not None:
        trace.record_span(
            Span(spec.name, copy_index, "init", None, t0, time.perf_counter())
        )

    if in_stream is None:
        _run_source(
            filt, ctx, spec, copy_index, progress, sink,
            staged, flush, trace, heartbeat, injector,
        )
    else:
        _run_consumer(
            filt, ctx, spec, copy_index, in_stream, progress, sink,
            flush, trace, heartbeat, injector,
        )

    t0 = time.perf_counter()
    filt.finalize(ctx)
    flush()
    if trace is not None:
        trace.record_span(
            Span(spec.name, copy_index, "finalize", None, t0, time.perf_counter())
        )


def _run_source(
    filt, ctx, spec, copy_index, progress, sink,
    staged, flush, trace, heartbeat, injector,
) -> None:
    if not isinstance(filt, SourceFilter):
        raise TypeError(f"first filter '{spec.name}' must be a SourceFilter")
    gen = filt.generate(ctx)
    packet = 0
    while True:
        if heartbeat is not None:
            heartbeat()
        t0 = time.perf_counter()
        try:
            payload = next(gen)
        except StopIteration:
            break
        if packet % spec.width == copy_index:
            # only owned packets are traced: the other width-1 copies
            # generate-and-discard this packet too, and counting it
            # width times would inflate measured source cost
            if trace is not None:
                trace.record_span(
                    Span(
                        spec.name,
                        copy_index,
                        "generate",
                        packet,
                        t0,
                        time.perf_counter(),
                    )
                )
            if injector is not None:
                injector.on_packet(packet)
            if packet not in progress.emitted:
                if isinstance(payload, Buffer):
                    staged.append(payload)
                else:
                    ctx.write(payload, packet)
                flush()
                progress.emitted.add(packet)
                sink.on_gen_ack(packet)
        packet += 1


def _run_consumer(
    filt, ctx, spec, copy_index, in_stream, progress, sink,
    flush, trace, heartbeat, injector,
) -> None:
    def handle(seq: int, buf: Buffer, report: bool) -> None:
        if report:
            sink.on_inflight(seq, buf)
        if heartbeat is not None:
            heartbeat()
        if injector is not None:
            injector.on_packet(buf.packet)
        t0 = time.perf_counter()
        filt.process(buf, ctx)
        if trace is not None:
            trace.record_span(
                Span(
                    spec.name,
                    copy_index,
                    "process",
                    buf.packet,
                    t0,
                    time.perf_counter(),
                )
            )
        flush()
        # ack carries the post-packet snapshot: the packet is either in
        # the checkpoint or in the replay set, never both
        sink.on_ack(seq, snapshot_state(filt, ctx))

    replay, progress.replay = list(progress.replay), []
    for seq, buf in replay:
        handle(seq, buf, report=False)

    if progress.eos_seen:
        return
    seq = progress.seq_start
    while True:
        buf = in_stream.get(copy_index)
        if buf is None:
            progress.eos_seen = True
            sink.on_eos()
            break
        handle(seq, buf, report=True)
        seq += 1
