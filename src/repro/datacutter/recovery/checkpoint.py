"""Reduction-state checkpointing at packet boundaries.

A filter that accumulates across packets (the generated filters'
``self._red_*`` reduction objects, a hand-written sink's running total)
cannot simply be restarted: the replacement copy would lose everything
folded in so far.  Because reduction accumulation is associative and
commutative (§3), snapshotting the accumulator *between* packets and
restoring it in the restarted copy is safe — the checkpoint plus replay
of unacknowledged packets reproduces exactly the fault-free
accumulation, with no double-counting (a packet is either inside the
checkpoint or in the replay set, never both: the acknowledgement that
retires a packet carries the snapshot that includes it).

Protocol: a filter may implement ``snapshot() -> state`` and
``restore(state)`` for explicit control; otherwise the default
checkpoints the instance ``__dict__`` (skipping the shared run-params
mapping, which ``init`` reconstitutes).  Generated filter classes are
anchored for pickling by :mod:`repro.codegen.generated_registry`, so the
default covers compiled pipelines on both engines.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any

#: key marking a custom filter.snapshot() payload inside a state dict
_CUSTOM = "__filter_snapshot__"


class CheckpointError(RuntimeError):
    """A copy's state cannot cross the restart boundary (not picklable
    on the process engine); the copy is not restartable."""


def snapshot_state(filt: Any, ctx: Any = None) -> dict[str, Any] | None:
    """Capture a filter copy's accumulator state at a packet boundary.

    Returns None for stateless filters (nothing to checkpoint, restart
    is free).  The caller must copy/pickle the result *immediately* —
    the dict references live accumulator objects that the next packet
    will mutate (see :func:`clone_state` / :func:`freeze_state`)."""
    snap = getattr(filt, "snapshot", None)
    if callable(snap):
        return {_CUSTOM: snap()}
    attrs = getattr(filt, "__dict__", None)
    if not attrs:
        return None
    params = getattr(ctx, "params", None) if ctx is not None else None
    state = {
        key: value
        for key, value in attrs.items()
        if params is None or value is not params
    }
    return state or None


def clone_state(state: dict[str, Any] | None) -> dict[str, Any] | None:
    """Detach a snapshot from the live accumulator (same-process retry:
    pickle round-trip when possible, deepcopy otherwise)."""
    if state is None:
        return None
    try:
        return pickle.loads(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return copy.deepcopy(state)


def freeze_state(state: dict[str, Any] | None) -> bytes | None:
    """Serialize a snapshot for the trip to the supervising process.

    Raises :class:`CheckpointError` when the state cannot be pickled —
    the caller marks the copy non-restartable so a later failure fails
    fast with a clear diagnosis instead of resuming from nothing."""
    if state is None:
        return None
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as err:
        raise CheckpointError(
            f"filter state is not picklable ({err}); the copy cannot be "
            "restarted from a checkpoint"
        ) from err


def restore_state(filt: Any, state: Any, ctx: Any = None) -> None:
    """Resume a fresh (post-``init``) filter copy from a checkpoint.

    Accepts either a state dict (threaded retry) or pickled bytes (a
    supervisor-held checkpoint crossing the fork)."""
    if state is None:
        return
    if isinstance(state, (bytes, bytearray)):
        state = pickle.loads(bytes(state))
    if _CUSTOM in state:
        restore = getattr(filt, "restore", None)
        if not callable(restore):
            raise CheckpointError(
                f"{type(filt).__name__} produced a snapshot() checkpoint "
                "but has no restore() method"
            )
        restore(state[_CUSTOM])
        return
    attrs = getattr(filt, "__dict__", None)
    if attrs is None:  # pragma: no cover - slots-only stateful filter
        raise CheckpointError(
            f"{type(filt).__name__} has checkpoint state but no __dict__ "
            "to restore it into; implement snapshot()/restore()"
        )
    attrs.update(state)
