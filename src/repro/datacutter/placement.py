"""Placement of logical filters onto pipeline stages.

Couples a compiled/authored list of :class:`~repro.datacutter.filters.FilterSpec`
with a :class:`~repro.cost.environment.PipelineEnv`: every filter names the
stage that hosts it, widths default to the stage width (transparent
copies), and validation enforces the paper's model — placements are
non-decreasing along the chain (data flows forward only) and the first/last
stages host the source/view filters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost.environment import PipelineEnv
from .filters import FilterSpec


@dataclass(slots=True)
class PlacedPipeline:
    """A validated (specs, environment) pair ready to run or simulate."""

    specs: list[FilterSpec]
    env: PipelineEnv

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("empty pipeline")
        prev = 0
        for spec in self.specs:
            if spec.placement < 0 or spec.placement >= self.env.m:
                raise ValueError(
                    f"filter '{spec.name}' placed on stage {spec.placement}, "
                    f"but the environment has {self.env.m} stages"
                )
            if spec.placement < prev:
                raise ValueError(
                    f"filter '{spec.name}' flows backwards "
                    f"(stage {spec.placement} after {prev})"
                )
            prev = spec.placement

    def with_widths_from_env(self) -> "PlacedPipeline":
        """Set every filter's width to its hosting stage's width."""
        specs = []
        for spec in self.specs:
            width = self.env.units[spec.placement].width
            specs.append(
                FilterSpec(
                    name=spec.name,
                    factory=spec.factory,
                    placement=spec.placement,
                    width=width,
                    out_policy=spec.out_policy,
                    params=spec.params,
                )
            )
        return PlacedPipeline(specs, self.env)

    def filters_on_stage(self, stage: int) -> list[FilterSpec]:
        return [s for s in self.specs if s.placement == stage]

    def crossing_pairs(self) -> list[tuple[FilterSpec, FilterSpec, int]]:
        """(producer, consumer, link index) for every stream that crosses a
        link — the streams whose volume the decomposition tried to shrink."""
        out = []
        for a, b in zip(self.specs, self.specs[1:]):
            if b.placement > a.placement:
                out.append((a, b, a.placement))
        return out
