"""Buffer abstraction of the filter-stream model (paper §2.2).

    "All transfers to and from streams are through a provided buffer
    abstraction.  A buffer represents a contiguous memory region containing
    useful data.  Streams transfer data in fixed size buffers."

A :class:`Buffer` carries a payload (either raw ``bytes`` — what compiled
filters exchange — or an arbitrary Python object for hand-written filters),
the packet index it belongs to, and control flags.  ``nbytes`` is what the
simulator and the volume accounting charge to the link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np


class BufferKind(enum.Enum):
    DATA = "data"
    END_OF_WORK = "end_of_work"  # end of one unit-of-work (one query)


@dataclass(slots=True)
class Buffer:
    """One stream transfer unit."""

    payload: Any = None
    packet: int = -1
    kind: BufferKind = BufferKind.DATA
    #: producer copy that emitted this buffer (for debugging/accounting)
    origin: str = ""

    @property
    def is_data(self) -> bool:
        return self.kind is BufferKind.DATA

    @property
    def nbytes(self) -> int:
        return payload_nbytes(self.payload)

    @staticmethod
    def end_of_work() -> "Buffer":
        return Buffer(kind=BufferKind.END_OF_WORK)


def payload_nbytes(payload: Any) -> int:
    """Size accounting for the payload types filters exchange."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(v) for v in payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    # objects expose nbytes or are charged a pointer
    return int(getattr(payload, "nbytes", 8))


@dataclass(slots=True)
class StreamStats:
    """Per-logical-stream accounting (buffers and bytes moved)."""

    buffers: int = 0
    bytes: int = 0
    by_packet: dict[int, int] = field(default_factory=dict)

    def record(self, buf: Buffer) -> None:
        if not buf.is_data:
            return
        self.buffers += 1
        size = buf.nbytes
        self.bytes += size
        self.by_packet[buf.packet] = self.by_packet.get(buf.packet, 0) + size
