"""The filter interface (paper §2.2).

    "The interface for filters consists of an initialization function
    (init), a processing function (process), and a finalization function
    (finalize). ... A work cycle starts when the filtering service calls
    the filter init function, which is where any required resources such as
    memory or disk scratch space are pre-allocated.  Next the process
    function is called to continually read data arriving on the input
    streams ... The finalize function is called after all processing is
    finished for the current unit-of-work."

Concrete filters subclass :class:`Filter`:

* ``init(ctx)`` — allocate scratch (e.g. a local z-buffer);
* ``process(buf, ctx)`` — handle one arriving buffer, emit via
  ``ctx.write(payload, packet)``;
* ``finalize(ctx)`` — flush accumulated state (e.g. the merged reduction
  object) before the stream closes.

:class:`FilterSpec` describes a logical filter: a factory, a placement
(which pipeline stage hosts it) and a width (transparent copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .buffers import Buffer
from .streams import DistributionPolicy


class FilterContext:
    """Per-copy runtime handle given to every filter callback."""

    def __init__(
        self,
        name: str,
        copy_index: int,
        n_copies: int,
        emit: Callable[[Buffer], None],
        params: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.copy_index = copy_index
        self.n_copies = n_copies
        self._emit = emit
        #: run parameters (isovalue, query window, ...) shared by all copies
        self.params: dict[str, Any] = params or {}

    def write(self, payload: Any, packet: int = -1) -> None:
        """Send one buffer downstream."""
        self._emit(
            Buffer(payload=payload, packet=packet, origin=f"{self.name}#{self.copy_index}")
        )

    def write_buffer(self, buf: Buffer) -> None:
        self._emit(buf)


class Filter:
    """Base class; the default callbacks make pass-through trivial."""

    def init(self, ctx: FilterContext) -> None:  # noqa: B027 - optional hook
        pass

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        ctx.write_buffer(buf)

    def finalize(self, ctx: FilterContext) -> None:  # noqa: B027 - optional hook
        pass


class SourceFilter(Filter):
    """A filter with no input stream: ``generate`` yields payloads.

    The runtime calls :meth:`generate` once per copy; packets are split
    round-robin across source copies (copy k produces packets k, k+c, ...),
    matching a declustered dataset across the data nodes."""

    def generate(self, ctx: FilterContext):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # noqa: W0101


class FunctionFilter(Filter):
    """Adapts a plain callable ``fn(payload, ctx) -> payload | None``."""

    def __init__(self, fn: Callable[[Any, FilterContext], Any]) -> None:
        self.fn = fn

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        out = self.fn(buf.payload, ctx)
        if out is not None:
            ctx.write(out, buf.packet)


@dataclass(slots=True)
class FilterSpec:
    """Description of one logical filter in a placed pipeline."""

    name: str
    factory: Callable[[], Filter]
    placement: int = 0  # pipeline stage index (0 = data host)
    width: int = 1  # transparent copies
    out_policy: Optional[DistributionPolicy] = None
    params: dict[str, Any] = field(default_factory=dict)

    def make(self) -> Filter:
        return self.factory()
