"""Engine-native tracing: per-filter-copy spans and queue gauges.

The paper's evaluation hinges on comparing the §4.3 cost model's
*predicted* per-filter costs against *measured* pipeline behaviour.  This
module makes that measurement first-class in the runtime instead of a
wrapper hack: both execution engines feed a :class:`TraceCollector`
directly with

* **spans** — one :class:`Span` per filter-copy callback invocation
  (``init`` / ``generate`` / ``process`` / ``finalize``), carrying the
  packet id and wall-clock interval on the shared monotonic clock
  (``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, so spans from
  forked worker processes land on the same timeline as the parent's);
* **queue gauges** — a :class:`QueueSample` depth reading at every stream
  ``put``/``get``, plus a :class:`BlockedSpan` whenever a producer stalls
  on a full queue or a consumer waits on an empty one longer than
  :data:`BLOCKED_MIN_SECONDS` (the backpressure picture: *where* the
  pipeline pushes back is exactly what the decomposition tries to
  balance).

:class:`Trace` is the in-memory collector plus the query API the harness
builds on: per-packet seconds per filter (the measured side of
``validate_cost_model``), per-copy busy/wall utilization, and per-stream
blocked time.  Exporters (JSON lines, Chrome ``trace_event``) live in
:mod:`repro.datacutter.obs.export`.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

#: packet key that collects once-per-run init/finalize overhead when spans
#: are folded into per-packet seconds; equals the codegen FINAL_PACKET so
#: reduction-flush buffers (packet -2) land in the same overhead bucket
OVERHEAD_PACKET = -2

#: the four phases of the filter unit-of-work protocol, in order, plus
#: "restart" — a recovery event marking the backoff-and-respawn of a
#: failed filter copy (its duration covers backoff through respawn) —
#: and the serving-layer phases: "request" spans cover one client request
#: from admission to response, "execute" spans one micro-batched pipeline
#: execution, and the per-request *stage* spans break a request's life
#: down ("admission" = submit to admitted, "queue" = admitted to
#: dispatched, "assemble" = dispatch to execution start including
#: grouping/fusion, "extract" = per-lane demux, "write" = the wire
#: response write; see repro.serve.metrics)
PHASES = (
    "init",
    "generate",
    "process",
    "finalize",
    "restart",
    "request",
    "execute",
    "admission",
    "queue",
    "assemble",
    "extract",
    "write",
)

#: the serving-layer stage phases, in request-lifecycle order
STAGE_PHASES = ("admission", "queue", "assemble", "execute", "extract", "write")

#: a stream put()/get() slower than this is recorded as blocked time
BLOCKED_MIN_SECONDS = 1e-3


def current_worker_label() -> str:
    """Name of the filter copy executing the caller.

    Both engines name their workers ``filter#copy`` (thread name on the
    threaded engine, process name on the process engine), so the label
    identifies the copy regardless of substrate."""
    proc = multiprocessing.current_process()
    if proc.name != "MainProcess":
        return proc.name
    return threading.current_thread().name


@dataclass(slots=True)
class Span:
    """One filter-copy callback execution.

    The two optional tail fields are the serving layer's distributed-trace
    links, absent (``None``) on ordinary engine spans from a one-shot run:
    ``trace`` carries the request's end-to-end trace id (minted client
    side and shipped in the wire header), and ``execution`` the serving
    execution sequence number that joins a request's stage spans to the
    engine-level filter spans of the pipeline run that answered it."""

    filter: str
    copy: int
    phase: str  # one of PHASES
    packet: int | None  # None for init/finalize/restart
    t0: float
    t1: float
    #: serving request trace id this span belongs to (distributed tracing)
    trace: str | None = None
    #: serving execution sequence number linking request and engine spans
    execution: int | None = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def who(self) -> str:
        return f"{self.filter}#{self.copy}"


@dataclass(slots=True)
class QueueSample:
    """Queue-depth gauge reading taken at one stream operation."""

    stream: str
    ts: float
    depth: int
    side: str  # "put" | "get"


@dataclass(slots=True)
class BlockedSpan:
    """Time one filter copy spent blocked on a stream queue."""

    stream: str
    side: str  # "put" (queue full) | "get" (queue empty)
    who: str  # "filter#copy" that blocked
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@runtime_checkable
class TraceCollector(Protocol):
    """What an engine needs from a trace sink.

    Implementations must be safe to call from multiple filter-copy
    threads; on the process engine, workers buffer events in a local
    :class:`Trace` and the supervisor replays them into the caller's
    collector, so only the parent process ever calls these methods on the
    user-supplied object."""

    def record_span(self, span: Span) -> None: ...  # pragma: no cover

    def record_queue(self, sample: QueueSample) -> None: ...  # pragma: no cover

    def record_blocked(self, blocked: BlockedSpan) -> None: ...  # pragma: no cover

    def note(self, **meta: Any) -> None: ...  # pragma: no cover


@dataclass(slots=True)
class Utilization:
    """Busy-vs-wall summary of one filter copy."""

    who: str
    busy: float  # sum of span durations
    wall: float  # last span end - first span start

    @property
    def ratio(self) -> float:
        return self.busy / self.wall if self.wall > 0 else 0.0


class Trace:
    """In-memory :class:`TraceCollector` with the query API (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.queue_samples: list[QueueSample] = []
        self.blocked: list[BlockedSpan] = []
        self.meta: dict[str, Any] = {}

    # -- collector protocol --------------------------------------------------
    def record_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def record_queue(self, sample: QueueSample) -> None:
        with self._lock:
            self.queue_samples.append(sample)

    def record_blocked(self, blocked: BlockedSpan) -> None:
        with self._lock:
            self.blocked.append(blocked)

    def note(self, **meta: Any) -> None:
        with self._lock:
            self.meta.update(meta)

    def merge(
        self,
        spans: Iterable[Span] = (),
        queue_samples: Iterable[QueueSample] = (),
        blocked: Iterable[BlockedSpan] = (),
    ) -> None:
        """Bulk-absorb events (used to fold worker-side buffers in)."""
        with self._lock:
            self.spans.extend(spans)
            self.queue_samples.extend(queue_samples)
            self.blocked.extend(blocked)

    def copy_events(
        self,
    ) -> tuple[list[Span], list[QueueSample], list[BlockedSpan], dict[str, Any]]:
        """Consistent shallow copies of (spans, queue samples, blocked,
        meta), taken under the lock — the safe way to export or inspect a
        trace that other threads are still feeding."""
        with self._lock:
            return (
                list(self.spans),
                list(self.queue_samples),
                list(self.blocked),
                dict(self.meta),
            )

    # -- queries -------------------------------------------------------------
    @property
    def engine(self) -> str | None:
        return self.meta.get("engine")

    def copies(self) -> list[str]:
        """All ``filter#copy`` labels that produced spans, stable order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.who, None)
        return list(seen)

    def spans_for(
        self,
        filter: str | None = None,
        copy: int | None = None,
        phase: str | None = None,
    ) -> list[Span]:
        return [
            s
            for s in self.spans
            if (filter is None or s.filter == filter)
            and (copy is None or s.copy == copy)
            and (phase is None or s.phase == phase)
        ]

    def phases_of(self, who: str) -> set[str]:
        return {s.phase for s in self.spans if s.who == who}

    def restarts(self, filter: str | None = None) -> list[Span]:
        """Recovery restarts recorded this run (optionally one filter's)."""
        return self.spans_for(filter=filter, phase="restart")

    def seconds_by_packet(self, filter: str) -> dict[int, float]:
        """Per-packet busy seconds of one logical filter (all copies).

        ``generate``/``process`` spans are keyed by their packet index;
        ``init``/``finalize`` (and spans on negative control packets, the
        reduction flush) accumulate under :data:`OVERHEAD_PACKET` — the
        same table :class:`~repro.experiments.harness.TimeAccumulator`
        used to build, now engine-native."""
        out: dict[int, float] = {}
        for s in self.spans:
            if s.filter != filter:
                continue
            if s.phase in ("generate", "process") and s.packet is not None and s.packet >= 0:
                key = s.packet
            else:
                key = OVERHEAD_PACKET
            out[key] = out.get(key, 0.0) + s.duration
        return out

    def busy_seconds(self, filter: str, copy: int | None = None) -> float:
        return sum(s.duration for s in self.spans_for(filter, copy))

    def duration_percentiles(
        self,
        filter: str | None = None,
        phase: str | None = None,
        qs: Sequence[float] = (50.0, 95.0, 99.0),
    ) -> dict[str, float]:
        """Span-duration percentiles, e.g. ``{"p50": ..., "p95": ...}``.

        The serving layer records one ``request`` span per client request
        (admission to response), making latency percentiles a trace query
        rather than bespoke bookkeeping.  Nearest-rank percentiles; empty
        selections yield 0.0."""
        durations = sorted(s.duration for s in self.spans_for(filter, None, phase))
        out: dict[str, float] = {}
        for q in qs:
            label = f"p{q:g}"
            if not durations:
                out[label] = 0.0
                continue
            rank = max(0, min(len(durations) - 1, math.ceil(q / 100.0 * len(durations)) - 1))
            out[label] = durations[rank]
        return out

    def utilization(self) -> dict[str, Utilization]:
        """Per-copy busy/wall; wall spans first init start to last
        finalize end, so idle time waiting on streams shows as ratio < 1."""
        bounds: dict[str, list[float]] = {}
        busy: dict[str, float] = {}
        for s in self.spans:
            b = bounds.setdefault(s.who, [s.t0, s.t1])
            b[0] = min(b[0], s.t0)
            b[1] = max(b[1], s.t1)
            busy[s.who] = busy.get(s.who, 0.0) + s.duration
        return {
            who: Utilization(who=who, busy=busy[who], wall=b[1] - b[0])
            for who, b in bounds.items()
        }

    def streams(self) -> list[str]:
        seen: dict[str, None] = {}
        for q in self.queue_samples:
            seen.setdefault(q.stream, None)
        for b in self.blocked:
            seen.setdefault(b.stream, None)
        return list(seen)

    def max_depth(self, stream: str) -> int:
        depths = [q.depth for q in self.queue_samples if q.stream == stream]
        return max(depths, default=0)

    def blocked_seconds(
        self, stream: str | None = None, side: str | None = None
    ) -> float:
        return sum(
            b.duration
            for b in self.blocked
            if (stream is None or b.stream == stream)
            and (side is None or b.side == side)
        )

    def t_origin(self) -> float:
        """Earliest timestamp in the trace (export zero point)."""
        t = [s.t0 for s in self.spans]
        t += [q.ts for q in self.queue_samples]
        t += [b.t0 for b in self.blocked]
        return min(t, default=0.0)

    def summary(self) -> str:
        """Human-readable per-copy utilization + per-stream queue report."""
        lines = [f"trace: engine={self.engine or '?'}  spans={len(self.spans)}"]
        util = self.utilization()
        for who in self.copies():
            u = util[who]
            lines.append(
                f"  {who:<28} busy {u.busy:8.4f}s / wall {u.wall:8.4f}s "
                f"({100 * u.ratio:5.1f}% busy)"
            )
        for stream in self.streams():
            put_s = self.blocked_seconds(stream, "put")
            get_s = self.blocked_seconds(stream, "get")
            lines.append(
                f"  queue {stream:<34} max depth {self.max_depth(stream):>3}  "
                f"blocked put {put_s:7.4f}s  get {get_s:7.4f}s"
            )
        return "\n".join(lines)


class BoundedTrace(Trace):
    """A :class:`Trace` whose event retention is capped with rotation.

    A long-running server feeding one trace forever would grow without
    bound; this collector keeps only the most recent events of each class
    and counts what rotation dropped (``dropped_spans`` /
    ``dropped_queue_samples`` / ``dropped_blocked``).  Trimming is
    amortized: events are dropped a chunk at a time once the list exceeds
    its cap by 25%, so steady-state retention floats between ``cap`` and
    ``1.25 * cap`` while appends stay O(1).  A cap of ``None`` disables
    the bound for that event class (plain ``Trace`` behaviour)."""

    def __init__(
        self,
        max_spans: int | None = 4096,
        max_queue_samples: int | None = 4096,
        max_blocked: int | None = 1024,
    ) -> None:
        super().__init__()
        for name, cap in (
            ("max_spans", max_spans),
            ("max_queue_samples", max_queue_samples),
            ("max_blocked", max_blocked),
        ):
            if cap is not None and cap < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {cap}")
        self.max_spans = max_spans
        self.max_queue_samples = max_queue_samples
        self.max_blocked = max_blocked
        self.dropped_spans = 0
        self.dropped_queue_samples = 0
        self.dropped_blocked = 0

    def _trim(self, events: list, cap: int | None) -> int:
        """Drop the oldest events once 25% over cap; returns the count."""
        if cap is None or len(events) <= cap + max(cap // 4, 1):
            return 0
        excess = len(events) - cap
        del events[:excess]
        return excess

    def record_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
            self.dropped_spans += self._trim(self.spans, self.max_spans)

    def record_queue(self, sample: QueueSample) -> None:
        with self._lock:
            self.queue_samples.append(sample)
            self.dropped_queue_samples += self._trim(
                self.queue_samples, self.max_queue_samples
            )

    def record_blocked(self, blocked: BlockedSpan) -> None:
        with self._lock:
            self.blocked.append(blocked)
            self.dropped_blocked += self._trim(self.blocked, self.max_blocked)

    def merge(
        self,
        spans: Iterable[Span] = (),
        queue_samples: Iterable[QueueSample] = (),
        blocked: Iterable[BlockedSpan] = (),
    ) -> None:
        with self._lock:
            self.spans.extend(spans)
            self.queue_samples.extend(queue_samples)
            self.blocked.extend(blocked)
            self.dropped_spans += self._trim(self.spans, self.max_spans)
            self.dropped_queue_samples += self._trim(
                self.queue_samples, self.max_queue_samples
            )
            self.dropped_blocked += self._trim(self.blocked, self.max_blocked)

    @property
    def dropped_events(self) -> int:
        """Total events lost to rotation, all classes."""
        return (
            self.dropped_spans
            + self.dropped_queue_samples
            + self.dropped_blocked
        )


def record_queue_op(
    trace: TraceCollector,
    stream: str,
    side: str,
    t0: float,
    t1: float,
    depth: int,
) -> None:
    """Shared gauge hook used by both engines' stream implementations."""
    if t1 - t0 >= BLOCKED_MIN_SECONDS:
        trace.record_blocked(
            BlockedSpan(stream, side, current_worker_label(), t0, t1)
        )
    if depth >= 0:  # negative = qsize unsupported on this platform
        trace.record_queue(QueueSample(stream, t1, depth, side))
