"""Pipeline observability: engine-native tracing, queue gauges, exporters.

Both execution engines (threaded and process) feed a
:class:`TraceCollector` directly — per-filter-copy spans with packet ids,
queue-depth and blocked-on-put/get gauges, per-copy utilization — so
process-engine traces are as complete as threaded ones.  See
:mod:`repro.datacutter.obs.trace` for the data model and
:mod:`repro.datacutter.obs.export` for the JSON lines and Chrome
``trace_event`` exporters.
"""

from .trace import (
    BLOCKED_MIN_SECONDS,
    OVERHEAD_PACKET,
    PHASES,
    STAGE_PHASES,
    BlockedSpan,
    BoundedTrace,
    QueueSample,
    Span,
    Trace,
    TraceCollector,
    Utilization,
    current_worker_label,
    record_queue_op,
)
from .export import (
    jsonl_lines,
    read_jsonl,
    to_chrome,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "BLOCKED_MIN_SECONDS",
    "OVERHEAD_PACKET",
    "PHASES",
    "STAGE_PHASES",
    "BlockedSpan",
    "BoundedTrace",
    "QueueSample",
    "Span",
    "Trace",
    "TraceCollector",
    "Utilization",
    "current_worker_label",
    "jsonl_lines",
    "read_jsonl",
    "record_queue_op",
    "to_chrome",
    "validate_chrome_trace",
    "write_chrome",
    "write_jsonl",
]
