"""Trace exporters: JSON lines and Chrome ``trace_event`` format.

Two on-disk forms of one :class:`~repro.datacutter.obs.trace.Trace`:

* **JSON lines** — one event per line (``{"type": "span" | "queue" |
  "blocked" | "meta", ...}``), lossless and trivially greppable;
  :func:`read_jsonl` round-trips it back into a :class:`Trace`.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON consumed by
  ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
  (``"X"``) events per span on one named track per filter copy, counter
  (``"C"``) events for queue depth, and ``"X"`` events in the ``blocked``
  category for put/get stalls.  :func:`validate_chrome_trace` checks a
  document against the subset of the spec we emit (the conformance tests
  and the ``python -m repro trace`` CLI both run it).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from .trace import BlockedSpan, QueueSample, Span, Trace

#: single-process view: every filter copy is a named thread track
CHROME_PID = 1

#: metadata record names we emit (trace_event spec, "Metadata Events")
_CHROME_META_NAMES = {"process_name", "thread_name", "thread_sort_index"}

#: event phases we emit; validation rejects anything else ("s"/"t"/"f"
#: are flow events binding a serving request's stage spans to the engine
#: filter spans of the execution that answered it)
_CHROME_PHASES = {"X", "C", "M", "s", "t", "f"}


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def to_chrome(trace: Trace) -> dict[str, Any]:
    """Render a trace as a Chrome ``trace_event`` JSON object."""
    t_zero = trace.t_origin()

    def us(t: float) -> float:
        return round((t - t_zero) * 1e6, 3)

    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": CHROME_PID,
            "tid": 0,
            "args": {"name": f"repro pipeline ({trace.engine or 'unknown'} engine)"},
        }
    ]
    tids: dict[str, int] = {}

    def tid_for(who: str) -> int:
        if who not in tids:
            tids[who] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": CHROME_PID,
                    "tid": tids[who],
                    "args": {"name": who},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": CHROME_PID,
                    "tid": tids[who],
                    "args": {"sort_index": tids[who]},
                }
            )
        return tids[who]

    for who in trace.copies():  # pipeline order before ad-hoc labels
        tid_for(who)
    # spans carrying a serving execution id become flow-event chains:
    # one flow per execution, threading the request's stage spans and the
    # engine-level filter spans of the run that answered it, so Perfetto
    # draws the request crossing from its track into the pipeline's
    flows: dict[int, list[tuple[float, int]]] = {}
    for s in trace.spans:
        name = (
            s.phase
            if s.packet is None or s.packet < 0
            else f"{s.phase} p{s.packet}"
        )
        args: dict[str, Any] = {
            "filter": s.filter,
            "copy": s.copy,
            "phase": s.phase,
            "packet": s.packet,
        }
        if s.trace is not None:
            args["trace_id"] = s.trace
        if s.execution is not None:
            args["execution"] = s.execution
        tid = tid_for(s.who)
        events.append(
            {
                "ph": "X",
                "cat": "filter",
                "name": name,
                "pid": CHROME_PID,
                "tid": tid,
                "ts": us(s.t0),
                "dur": max(round(s.duration * 1e6, 3), 0.0),
                "args": args,
            }
        )
        if s.execution is not None:
            flows.setdefault(s.execution, []).append((us(s.t0), tid))
    for execution, points in flows.items():
        if len(points) < 2:
            continue
        points.sort()
        for i, (ts, tid) in enumerate(points):
            ev: dict[str, Any] = {
                "ph": "s" if i == 0 else ("f" if i == len(points) - 1 else "t"),
                "cat": "link",
                "name": f"execution {execution}",
                "id": execution,
                "pid": CHROME_PID,
                "tid": tid,
                "ts": ts,
            }
            if ev["ph"] == "f":
                ev["bp"] = "e"  # bind to the enclosing slice, not the next
            events.append(ev)
    for b in trace.blocked:
        events.append(
            {
                "ph": "X",
                "cat": "blocked",
                "name": f"blocked {b.side} {b.stream}",
                "pid": CHROME_PID,
                "tid": tid_for(b.who),
                "ts": us(b.t0),
                "dur": max(round(b.duration * 1e6, 3), 0.0),
                "args": {"stream": b.stream, "side": b.side},
            }
        )
    for q in trace.queue_samples:
        events.append(
            {
                "ph": "C",
                "name": f"depth {q.stream}",
                "pid": CHROME_PID,
                "tid": 0,
                "ts": us(q.ts),
                "args": {"depth": q.depth},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(trace.meta),
    }


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check a document against the ``trace_event`` subset we emit.

    Returns a list of problems (empty = valid).  Intentionally strict:
    the point is to guarantee the file opens in ``chrome://tracing`` and
    Perfetto, not to accept every legal trace."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing string name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph in ("X", "C", "s", "t", "f"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if ph in ("s", "t", "f"):
            if not isinstance(ev.get("id"), (int, str)):
                problems.append(f"{where}: flow event needs an id")
            if not isinstance(ev.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
            if not isinstance(ev.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numbers")
        if ph == "M" and ev.get("name") not in _CHROME_META_NAMES:
            problems.append(f"{where}: unknown metadata record {ev.get('name')!r}")
    return problems


def write_chrome(trace: Trace, path: str) -> None:
    doc = to_chrome(trace)
    with open(path, "w") as fh:
        json.dump(doc, fh)


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def jsonl_lines(trace: Trace) -> Iterator[str]:
    yield json.dumps({"type": "meta", **trace.meta})
    for s in trace.spans:
        rec: dict[str, Any] = {
            "type": "span",
            "filter": s.filter,
            "copy": s.copy,
            "phase": s.phase,
            "packet": s.packet,
            "t0": s.t0,
            "t1": s.t1,
        }
        # link fields only when present, so pre-serving traces stay
        # byte-identical and Span(**rec) round-trips either way
        if s.trace is not None:
            rec["trace"] = s.trace
        if s.execution is not None:
            rec["execution"] = s.execution
        yield json.dumps(rec)
    for q in trace.queue_samples:
        yield json.dumps(
            {
                "type": "queue",
                "stream": q.stream,
                "ts": q.ts,
                "depth": q.depth,
                "side": q.side,
            }
        )
    for b in trace.blocked:
        yield json.dumps(
            {
                "type": "blocked",
                "stream": b.stream,
                "side": b.side,
                "who": b.who,
                "t0": b.t0,
                "t1": b.t1,
            }
        )


def write_jsonl(trace: Trace, path: str) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(trace):
            fh.write(line + "\n")


def read_jsonl(path: str) -> Trace:
    """Round-trip loader for :func:`write_jsonl` output."""
    trace = Trace()
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("type", None)
            if kind == "meta":
                trace.note(**rec)
            elif kind == "span":
                trace.record_span(Span(**rec))
            elif kind == "queue":
                trace.record_queue(QueueSample(**rec))
            elif kind == "blocked":
                trace.record_blocked(BlockedSpan(**rec))
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return trace
