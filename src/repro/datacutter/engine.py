"""Engine selection and the consolidated run API.

Every execution engine runs the same placed :class:`FilterSpec` pipelines
and returns the same :class:`RunResult`; they differ only in *where* the
filter copies run:

* ``"threaded"`` — :class:`~repro.datacutter.runtime.ThreadedPipeline`:
  one thread per copy.  Cheap to start, shares memory freely, but
  CPU-bound filters serialize behind the GIL — use it for correctness
  runs and I/O-bound filters.
* ``"process"`` — :class:`~repro.datacutter.mp.ProcessPipeline`: one
  process per copy with shared-memory buffer transport.  True parallelism
  for CPU-bound pipelines at the cost of process startup and one
  copy-in/copy-out per large buffer.

:class:`EngineOptions` is the single way to configure a run::

    run_pipeline(specs, EngineOptions(engine="process", trace=Trace()))

It replaces the scattered ``queue_capacity=``/``engine=``/``timeout=``
keyword arguments previously threaded through ``run_pipeline``,
``make_engine``, ``CompilationResult.execute``, and the experiment
harness.  The legacy keywords still work for one release through a
deprecation shim (:func:`coerce_engine_options`) that emits
``DeprecationWarning``.

The :data:`ENGINES` registry is open so later substrates (multi-host
transport, work stealing) plug in without touching call sites; a factory
takes ``(specs, options)`` and returns an :class:`Engine`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from .filters import FilterSpec
from .mp.transport import DEFAULT_SHM_MIN_BYTES
from .obs.trace import TraceCollector
from .recovery.faults import FaultPlan, FaultSpec
from .recovery.policy import RetryPolicy
from .runtime import RunResult, ThreadedPipeline


@runtime_checkable
class Engine(Protocol):
    """An execution substrate for placed filter pipelines."""

    specs: list[FilterSpec]

    def run(self) -> RunResult:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True, slots=True)
class EngineOptions:
    """Everything that configures one pipeline run, in one place.

    Engine-specific knobs are simply ignored by the other engine
    (``join_timeout`` is threaded-only; ``timeout``, ``shm_min_bytes``
    and ``death_grace`` belong to the process supervisor), so one options
    object can drive the same pipeline on either engine — which is what
    lets tracing and measurement work identically on both.
    """

    #: execution substrate: a key of :data:`ENGINES`
    engine: str = "threaded"
    #: per-consumer stream queue bound (the backpressure window)
    queue_capacity: int = 32
    #: threaded engine: seconds to wait for filter threads before
    #: declaring the pipeline stuck; process engine: post-end-of-stream
    #: completion deadline (how long workers may take to hand in 'done'
    #: after the last output arrived)
    join_timeout: float = 60.0
    #: process engine: optional wall-clock cap enforced by the supervisor
    timeout: float | None = None
    #: process engine: payload leaves at or above this ride shared memory
    shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES
    #: process engine: grace seconds between a worker dying silently and
    #: the run being failed
    death_grace: float = 2.0
    #: observability sink fed by the engine (see repro.datacutter.obs);
    #: None disables tracing
    trace: TraceCollector | None = None
    #: packet-granularity fault tolerance (repro.datacutter.recovery);
    #: None — the default — keeps the legacy no-recovery fast path
    retry: RetryPolicy | None = None
    #: deterministic fault injection for chaos testing; a FaultPlan or a
    #: plain iterable of FaultSpec (normalized here); None disables
    faults: FaultPlan | Sequence[FaultSpec] | None = None
    #: process engine: keep the forked worker pool resident across runs.
    #: ``None`` (the default) is *auto*: an :class:`EngineSession` retains
    #: the pool, one-shot :func:`run_pipeline` calls fork per run.
    #: ``True`` forces residency even standalone (caller must ``close()``);
    #: ``False`` forces fork-per-run even under a session — the knob the
    #: serving latency benchmark uses for its comparison baseline.
    resident: bool | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) or not self.engine:
            raise ValueError("engine must be a non-empty engine name")
        if self.queue_capacity < 1:
            # queue.Queue(0) would silently mean *unbounded*, removing all
            # backpressure — reject it loudly instead
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity} "
                "(capacity 0 would silently disable backpressure)"
            )
        if self.join_timeout <= 0:
            # a non-positive join timeout declares every pipeline stuck on
            # arrival (threaded) or fails the post-EOS handshake instantly
            # (process) — never what the caller meant
            raise ValueError(
                f"join_timeout must be > 0, got {self.join_timeout}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be > 0 or None (no wall-clock cap), "
                f"got {self.timeout}"
            )
        if self.death_grace < 0:
            raise ValueError(
                f"death_grace must be >= 0, got {self.death_grace}"
            )
        if self.shm_min_bytes < 0:
            raise ValueError(
                f"shm_min_bytes must be >= 0, got {self.shm_min_bytes}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy or None, got {self.retry!r}"
            )
        if self.resident is not None and not isinstance(self.resident, bool):
            raise TypeError(
                f"resident must be True, False, or None (auto), "
                f"got {self.resident!r}"
            )
        object.__setattr__(self, "faults", FaultPlan.coerce(self.faults))

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


_OPTION_FIELDS = frozenset(f.name for f in dataclasses.fields(EngineOptions))


def coerce_engine_options(
    options: EngineOptions | str | int | None,
    legacy: dict[str, Any],
    stacklevel: int = 3,
) -> EngineOptions:
    """Deprecation shim: fold legacy keyword arguments into EngineOptions.

    Accepts the pre-redesign calling conventions — ``engine="process"`` /
    ``queue_capacity=16`` keywords, a bare engine name where ``options``
    goes (``make_engine(specs, "process")``), or a bare capacity int
    (``run_pipeline(specs, 16)``) — emitting ``DeprecationWarning`` for
    each.  Passing both an :class:`EngineOptions` and legacy keywords is
    an error rather than a guess."""
    if isinstance(options, str):
        legacy = {"engine": options, **legacy}
        options = None
    elif isinstance(options, int):
        legacy = {"queue_capacity": options, **legacy}
        options = None
    if options is not None:
        if legacy:
            raise TypeError(
                "pass either options=EngineOptions(...) or legacy keyword "
                f"arguments, not both (got {sorted(legacy)})"
            )
        return options
    if not legacy:
        return EngineOptions()
    unknown = set(legacy) - _OPTION_FIELDS
    if unknown:
        raise TypeError(f"unknown engine option(s): {sorted(unknown)}")
    warnings.warn(
        f"engine keyword arguments {sorted(legacy)} are deprecated; pass "
        "options=EngineOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return EngineOptions(**legacy)


def _make_threaded(specs: Sequence[FilterSpec], opts: EngineOptions) -> Engine:
    return ThreadedPipeline(
        specs,
        queue_capacity=opts.queue_capacity,
        join_timeout=opts.join_timeout,
        trace=opts.trace,
        retry=opts.retry,
        faults=opts.faults,
    )


def _make_process(specs: Sequence[FilterSpec], opts: EngineOptions) -> Engine:
    from .mp.engine import ProcessPipeline  # deferred: keeps import light

    return ProcessPipeline(
        specs,
        queue_capacity=opts.queue_capacity,
        shm_min_bytes=opts.shm_min_bytes,
        timeout=opts.timeout,
        death_grace=opts.death_grace,
        trace=opts.trace,
        retry=opts.retry,
        faults=opts.faults,
        post_eos_timeout=opts.join_timeout,
        resident=opts.resident is True,
    )


#: engine name -> factory(specs, options) -> Engine
ENGINES: dict[str, Callable[[Sequence[FilterSpec], EngineOptions], Engine]] = {
    "threaded": _make_threaded,
    "process": _make_process,
}


def make_engine(
    specs: Sequence[FilterSpec],
    options: EngineOptions | None = None,
    **legacy: Any,
) -> Engine:
    """Instantiate the configured engine over ``specs``."""
    opts = coerce_engine_options(options, legacy, stacklevel=3)
    try:
        factory = ENGINES[opts.engine]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        # `from None`: the KeyError is an implementation detail of the
        # registry lookup, not context the caller can use
        raise ValueError(
            f"unknown engine {opts.engine!r}; known engines: {known}"
        ) from None
    return factory(specs, opts)


def run_pipeline(
    specs: Sequence[FilterSpec],
    options: EngineOptions | None = None,
    **legacy: Any,
) -> RunResult:
    """Build and run a pipeline on the configured engine (the main entry
    point; the default ``EngineOptions()`` preserves the historical
    threaded behaviour)."""
    return make_engine(
        specs, coerce_engine_options(options, legacy, stacklevel=3)
    ).run()


class EngineSession:
    """A warm engine reused across many units of work.

    One-shot callers build an engine, run it, and drop it —
    :func:`run_pipeline`.  A serving process instead runs thousands of
    units of work under identical :class:`EngineOptions`, where per-run
    option coercion and engine construction are pure overhead.  The
    session constructs the engine once on first use and *rebinds* it to
    each new spec list (``Engine.rebind``), keeping the engine-level
    scaffolding — validated options, retry/fault plumbing, transport
    configuration — warm across runs.  Engines that predate ``rebind``
    (external registrations) are transparently rebuilt per run.

    On the process engine the session goes further: unless
    ``options.resident is False`` it *retains* the engine's worker pool
    (``Engine.retain``), so the filter processes are forked once on the
    first run and then serve every subsequent unit of work as a fresh
    *work epoch* over per-worker control channels — no fork, no
    re-import, warm shared-memory pool.  That residency is why
    :meth:`close` is now a real lifecycle event, not just a reference
    drop: it delivers the poison pill to the resident workers, joins
    them, and tears down the shared-memory pool.  A ``close()`` racing an
    in-flight ``run()`` does not hang or leak workers — the engine fails
    that run with a structured :class:`~repro.datacutter.runtime.PipelineError`
    and then tears down; once closed, further ``run()`` calls raise.

    Not thread-safe beyond that close race: the serving dispatcher owns
    one session and feeds it batches sequentially (pipeline-internal
    parallelism is the engine's job, not the session's).
    """

    def __init__(self, options: EngineOptions | None = None) -> None:
        self.options = options if options is not None else EngineOptions()
        self._engine: Engine | None = None
        self._closed = False
        #: units of work executed through this session
        self.runs = 0

    def run(self, specs: Sequence[FilterSpec]) -> RunResult:
        """Execute one unit of work over ``specs`` on the warm engine."""
        if self._closed:
            raise RuntimeError(
                "EngineSession is closed; it cannot run another unit of work"
            )
        engine = self._engine
        if engine is None:
            engine = make_engine(specs, self.options)
            if self.options.resident is not False:
                retain = getattr(engine, "retain", None)
                if retain is not None:
                    retain()
            self._engine = engine
        else:
            rebind = getattr(engine, "rebind", None)
            if rebind is not None:
                rebind(specs)
            else:  # pragma: no cover - external engines without rebind
                engine = make_engine(specs, self.options)
                self._engine = engine
        self.runs += 1
        return engine.run()

    def close(self) -> None:
        """Tear down the warm engine.

        For a resident process pool this is the single real teardown:
        poison-pill the worker control channels, join the workers, and
        release the shared-memory pool.  Safe to call concurrently with
        an in-flight :meth:`run` — that run fails with a structured error
        instead of hanging — and idempotent thereafter."""
        self._closed = True
        engine, self._engine = self._engine, None
        if engine is not None:
            close = getattr(engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
