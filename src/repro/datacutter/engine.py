"""Engine protocol and selection: one switch between execution substrates.

Every execution engine runs the same placed :class:`FilterSpec` pipelines
and returns the same :class:`RunResult`; they differ only in *where* the
filter copies run:

* ``"threaded"`` — :class:`~repro.datacutter.runtime.ThreadedPipeline`:
  one thread per copy.  Cheap to start, shares memory freely, but
  CPU-bound filters serialize behind the GIL — use it for correctness
  runs, measurement (per-filter timing), and I/O-bound filters.
* ``"process"`` — :class:`~repro.datacutter.mp.ProcessPipeline`: one
  process per copy with shared-memory buffer transport.  True parallelism
  for CPU-bound pipelines at the cost of process startup and one
  copy-in/copy-out per large buffer.

``run_pipeline(specs, engine="process")`` is the one-line switch; the
:data:`ENGINES` registry is open so later substrates (multi-host
transport, work stealing) plug in without touching call sites.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from .filters import FilterSpec
from .runtime import RunResult, ThreadedPipeline


@runtime_checkable
class Engine(Protocol):
    """An execution substrate for placed filter pipelines."""

    specs: list[FilterSpec]

    def run(self) -> RunResult:  # pragma: no cover - protocol
        ...


def _make_process(specs: Sequence[FilterSpec], **opts: Any) -> Engine:
    from .mp.engine import ProcessPipeline  # deferred: keeps import light

    return ProcessPipeline(specs, **opts)


#: engine name -> factory(specs, **options) -> Engine
ENGINES: dict[str, Callable[..., Engine]] = {
    "threaded": ThreadedPipeline,
    "process": _make_process,
}


def make_engine(
    specs: Sequence[FilterSpec],
    engine: str = "threaded",
    queue_capacity: int = 32,
    **options: Any,
) -> Engine:
    """Instantiate the named engine over ``specs``."""
    try:
        factory = ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ValueError(f"unknown engine {engine!r}; known engines: {known}")
    return factory(specs, queue_capacity=queue_capacity, **options)


def run_pipeline(
    specs: Sequence[FilterSpec],
    queue_capacity: int = 32,
    engine: str = "threaded",
    **options: Any,
) -> RunResult:
    """Build and run a pipeline on the selected engine (the main entry
    point; ``engine="threaded"`` preserves the historical behaviour)."""
    return make_engine(
        specs, engine=engine, queue_capacity=queue_capacity, **options
    ).run()
