"""Streams with transparent-copy routing (paper §2.2).

    "The filter runtime system maintains the illusion of a single logical
    point-to-point stream for communication between a logical producer
    filter and a logical consumer filter.  When the logical producer or
    logical consumer is transparently copied, the system decides for each
    producer which copy to send a stream buffer to.  Schemes like
    round-robin allocation are used to achieve load balancing."

A :class:`LogicalStream` connects ``p`` producer copies to ``c`` consumer
copies through bounded per-copy queues.  Producers call :meth:`put`; the
distribution policy picks the consumer copy.  End-of-work propagates once
*all* producer copies have signalled completion.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

from .buffers import Buffer, StreamStats
from .obs.trace import TraceCollector, record_queue_op

#: sentinel delivered to each consumer copy when the stream drains
_EOS = object()


class DistributionPolicy:
    """Chooses the consumer copy for each buffer.

    A policy instance attached to a :class:`~repro.datacutter.filters.FilterSpec`
    outlives any single run, so stateful policies must implement
    :meth:`reset`; the engines call it when wiring streams so routing is
    identical on every run of the same specs."""

    def choose(self, buf: Buffer, n_consumers: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def reset(self) -> None:  # noqa: B027 - stateless policies need nothing
        """Forget any routing state carried over from a previous run."""


class RoundRobin(DistributionPolicy):
    """The DataCutter default."""

    def __init__(self) -> None:
        self._next = 0
        self._lock = threading.Lock()

    def choose(self, buf: Buffer, n_consumers: int) -> int:
        with self._lock:
            idx = self._next
            self._next = (self._next + 1) % n_consumers
            return idx

    def reset(self) -> None:
        with self._lock:
            self._next = 0


class ByPacket(DistributionPolicy):
    """Deterministic: packet k goes to copy k mod c.  Used by tests that
    need reproducible routing and by the reduction-merge pattern."""

    def choose(self, buf: Buffer, n_consumers: int) -> int:
        return buf.packet % n_consumers if buf.packet >= 0 else 0


class Broadcast(DistributionPolicy):
    """Every buffer goes to every consumer copy (control traffic)."""

    def choose(self, buf: Buffer, n_consumers: int) -> int:
        return -1  # special-cased in LogicalStream.put


class LogicalStream:
    """One logical producer->consumer connection."""

    def __init__(
        self,
        name: str,
        n_producers: int = 1,
        n_consumers: int = 1,
        capacity: int | None = 16,
        policy: Optional[DistributionPolicy] = None,
        trace: Optional[TraceCollector] = None,
    ) -> None:
        if n_producers < 1 or n_consumers < 1:
            raise ValueError("streams need at least one copy on each side")
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"stream {name}: capacity must be >= 1 or None for unbounded, "
                f"got {capacity} (queue.Queue would silently treat it as "
                "unbounded, disabling backpressure)"
            )
        self.name = name
        self.n_producers = n_producers
        self.n_consumers = n_consumers
        self.policy = policy or RoundRobin()
        self.trace = trace
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=0 if capacity is None else capacity)
            for _ in range(n_consumers)
        ]
        self._open_producers = n_producers
        self._lock = threading.Lock()
        self.stats = StreamStats()

    # -- producer side -------------------------------------------------------
    def put(self, buf: Buffer) -> None:
        self.stats.record(buf)
        target = self.policy.choose(buf, self.n_consumers)
        trace = self.trace
        if trace is None:
            if target == -1:
                for q in self._queues:
                    q.put(buf)
            else:
                self._queues[target].put(buf)
            return
        # broadcast (-1) fans out to every consumer queue; each put is its
        # own queue op so blocked-put time on any full copy is accounted
        targets = range(self.n_consumers) if target == -1 else (target,)
        for idx in targets:
            q = self._queues[idx]
            t0 = time.perf_counter()
            q.put(buf)
            record_queue_op(
                trace, self.name, "put", t0, time.perf_counter(), q.qsize()
            )

    def close_producer(self) -> None:
        """Called by each producer copy when it finishes its unit-of-work;
        the last close broadcasts end-of-stream to all consumer copies."""
        with self._lock:
            self._open_producers -= 1
            if self._open_producers < 0:
                raise RuntimeError(f"stream {self.name}: too many closes")
            if self._open_producers == 0:
                for q in self._queues:
                    q.put(_EOS)

    # -- consumer side ----------------------------------------------------------
    def get(self, consumer_index: int, timeout: float | None = None) -> Buffer | None:
        """Next buffer for a consumer copy; ``None`` means end-of-stream."""
        trace = self.trace
        q = self._queues[consumer_index]
        if trace is None:
            item = q.get(timeout=timeout)
        else:
            t0 = time.perf_counter()
            item = q.get(timeout=timeout)
            record_queue_op(
                trace, self.name, "get", t0, time.perf_counter(), q.qsize()
            )
        if item is _EOS:
            return None
        return item

    def drain(self, consumer_index: int) -> list[Buffer]:
        """Collect everything until end-of-stream (used by sinks/tests)."""
        out: list[Buffer] = []
        while True:
            buf = self.get(consumer_index)
            if buf is None:
                return out
            out.append(buf)


class CollectorStream(LogicalStream):
    """Single-consumer stream whose contents can be fetched after the run —
    the 'final results on the user's desktop' endpoint."""

    def __init__(
        self,
        name: str = "collector",
        n_producers: int = 1,
        trace: Optional[TraceCollector] = None,
    ) -> None:
        # unbounded (capacity=None) so the sink never blocks the pipeline
        super().__init__(
            name, n_producers=n_producers, n_consumers=1, capacity=None, trace=trace
        )

    def results(self) -> list[Buffer]:
        return self.drain(0)
