"""Discrete-event simulation of a placed pipeline on a grid environment.

The paper ran on a Myrinet cluster; we reproduce the *timing shape* of
those experiments with a deterministic tandem queueing network:

* stage ``j`` has ``width_j`` identical servers (transparent copies), FIFO;
* the link between stages ``j`` and ``j+1`` has ``min(width_j, width_{j+1})``
  parallel channels (the w-w-1 configurations pair data and compute nodes);
* per-packet service times come from the cost model (weighted ops / power,
  bytes / bandwidth) or from *measured* kernel times, and may vary per
  packet (vmscope's load imbalance on small queries, §6.5).

The simulator is exact for this network class and is property-tested
against the §4.3 closed form: with constant service times the makespan is
``(N-1)·bottleneck + fill`` (to per-packet rounding effects of multi-width
stages).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

TimeFn = Union[float, Callable[[int], float]]


def _resolve(fn: TimeFn, packet: int) -> float:
    return fn(packet) if callable(fn) else float(fn)


@dataclass(slots=True)
class SimStage:
    """One service center: a pipeline stage or a link."""

    name: str
    servers: int
    service: TimeFn

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"stage {self.name}: needs >= 1 server")


@dataclass(slots=True)
class SimReport:
    """Timing of one simulated run."""

    makespan: float
    completion: list[float]  # per packet, at the last stage
    stage_busy: dict[str, float] = field(default_factory=dict)
    stage_wait: dict[str, float] = field(default_factory=dict)

    def utilization(self, name: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stage_busy.get(name, 0.0) / self.makespan


def multi_server_fifo(
    arrivals: Sequence[float],
    service: TimeFn,
    servers: int,
) -> tuple[list[float], float, float]:
    """Completion times of a FIFO multi-server station.

    Packets are served in arrival order.  Returns (completion times aligned
    to the input index, total busy time, total waiting time).
    """
    n = len(arrivals)
    order = sorted(range(n), key=lambda k: (arrivals[k], k))
    free: list[float] = [0.0] * servers
    heapq.heapify(free)
    completion = [0.0] * n
    busy = 0.0
    wait = 0.0
    for k in order:
        t_arrive = arrivals[k]
        t_server = heapq.heappop(free)
        start = max(t_arrive, t_server)
        dur = _resolve(service, k)
        if dur < 0:
            raise ValueError("negative service time")
        end = start + dur
        completion[k] = end
        busy += dur
        wait += start - t_arrive
        heapq.heappush(free, end)
    return completion, busy, wait


def simulate(stages: Sequence[SimStage], num_packets: int) -> SimReport:
    """Run ``num_packets`` packets through the tandem of ``stages``.

    All packets are available at time zero at the first stage (the data is
    resident on the data host); every subsequent arrival time is the
    completion at the previous stage.
    """
    if num_packets < 0:
        raise ValueError("num_packets must be >= 0")
    if num_packets == 0:
        return SimReport(makespan=0.0, completion=[])
    arrivals = [0.0] * num_packets
    report = SimReport(makespan=0.0, completion=[])
    for stage in stages:
        completion, busy, wait = multi_server_fifo(
            arrivals, stage.service, stage.servers
        )
        report.stage_busy[stage.name] = busy
        report.stage_wait[stage.name] = wait
        arrivals = completion
    report.completion = list(arrivals)
    report.makespan = max(arrivals)
    return report


def stages_for_pipeline(
    comp_times: Sequence[TimeFn],
    link_times: Sequence[TimeFn],
    widths: Sequence[int],
    names: Sequence[str] | None = None,
) -> list[SimStage]:
    """Interleave compute stages and links into the tandem order
    C_1, L_1, C_2, L_2, ..., C_m with the §6.2 width/channel rules."""
    m = len(comp_times)
    if len(link_times) != m - 1 or len(widths) != m:
        raise ValueError("need m comp times, m-1 link times, m widths")
    names = list(names) if names is not None else [f"C{j + 1}" for j in range(m)]
    stages: list[SimStage] = []
    for j in range(m):
        stages.append(SimStage(names[j], int(widths[j]), comp_times[j]))
        if j < m - 1:
            channels = min(int(widths[j]), int(widths[j + 1]))
            stages.append(SimStage(f"L{j + 1}", channels, link_times[j]))
    return stages


def simulate_pipeline(
    comp_times: Sequence[TimeFn],
    link_times: Sequence[TimeFn],
    widths: Sequence[int],
    num_packets: int,
) -> SimReport:
    """One-call wrapper used by the experiment harness."""
    return simulate(
        stages_for_pipeline(comp_times, link_times, widths), num_packets
    )
