"""Shared-memory buffer transport for the process engine.

Stream buffers crossing a process boundary are pickled through a
``multiprocessing.Queue``.  Pickling a multi-megabyte NumPy payload copies
it twice (serialize + deserialize) through a pipe with a small kernel
buffer; for those payloads we instead park the bytes in a
:class:`multiprocessing.shared_memory.SharedMemory` segment and send only
a small :class:`ShmRef` descriptor.  The consumer attaches, copies the
data out, closes, and unlinks the segment, so every segment lives exactly
as long as one buffer is in flight.

Small or irregular payloads (scalars, strings, objects, arrays below
``DEFAULT_SHM_MIN_BYTES``) take the plain pickle path — for them the
descriptor bookkeeping would cost more than it saves.

The encoder walks the payload tree (dict / list / tuple containers) and
replaces eligible leaves — contiguous ``ndarray`` without object dtype,
``bytes``/``bytearray``/``memoryview`` — with descriptors; the decoder
inverts the walk.  Teardown after a failed run uses
:func:`collect_shm_refs` / :func:`unlink_ref` to reclaim segments whose
consumer died before draining them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

#: payload leaves at or above this size ride shared memory (configurable
#: per pipeline via ``ProcessPipeline(shm_min_bytes=...)``)
DEFAULT_SHM_MIN_BYTES = 64 * 1024


class EndOfStream:
    """Queue sentinel: every producer copy of the stream has closed."""

    __slots__ = ()


@dataclass(slots=True)
class ShmRef:
    """Descriptor of one payload leaf parked in a shared-memory segment."""

    name: str
    nbytes: int
    kind: str  # "ndarray" | "bytes"
    #: np.lib.format descr (handles structured dtypes); None for bytes
    dtype_descr: Any = None
    shape: tuple = field(default_factory=tuple)


def _park(raw_nbytes: int) -> shared_memory.SharedMemory:
    # zero-size segments are rejected by the OS; never parked anyway
    return shared_memory.SharedMemory(create=True, size=max(raw_nbytes, 1))


def _handoff(seg: shared_memory.SharedMemory) -> None:
    """Close the producer's mapping and drop its resource-tracker claim.

    CPython registers a segment with the resource tracker on *attach* as
    well as on create (bpo-39959).  Ownership of an in-flight segment
    transfers producer -> consumer, so exactly one claim — the consumer's,
    made when it attaches — should survive; without this unregister the
    tracker warns about (already-unlinked) leaked segments at shutdown."""
    seg.close()
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker gone at shutdown
        pass


def encode_payload(
    payload: Any, min_bytes: int = DEFAULT_SHM_MIN_BYTES
) -> tuple[Any, list[str]]:
    """Replace large leaves with :class:`ShmRef`; returns (tree, segment
    names created) so a failed ``put`` can reclaim the segments."""
    names: list[str] = []

    def walk(obj: Any) -> Any:
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= min_bytes
            and not obj.dtype.hasobject
        ):
            arr = np.ascontiguousarray(obj)
            seg = _park(arr.nbytes)
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            dst[...] = arr
            ref = ShmRef(
                name=seg.name,
                nbytes=arr.nbytes,
                kind="ndarray",
                dtype_descr=np.lib.format.dtype_to_descr(arr.dtype),
                shape=tuple(arr.shape),
            )
            _handoff(seg)  # the segment persists until the consumer unlinks
            names.append(ref.name)
            return ref
        if isinstance(obj, (bytes, bytearray, memoryview)) and len(obj) >= min_bytes:
            raw = bytes(obj)
            seg = _park(len(raw))
            seg.buf[: len(raw)] = raw
            ref = ShmRef(name=seg.name, nbytes=len(raw), kind="bytes")
            _handoff(seg)
            names.append(ref.name)
            return ref
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        if isinstance(obj, tuple):
            return tuple(walk(v) for v in obj)
        return obj

    return walk(payload), names


def decode_payload(payload: Any) -> Any:
    """Inverse of :func:`encode_payload`; unlinks each segment after the
    copy-out, so decoding consumes the in-flight buffer."""

    def walk(obj: Any) -> Any:
        if isinstance(obj, ShmRef):
            seg = shared_memory.SharedMemory(name=obj.name)
            try:
                if obj.kind == "ndarray":
                    dtype = np.lib.format.descr_to_dtype(obj.dtype_descr)
                    src = np.ndarray(obj.shape, dtype=dtype, buffer=seg.buf)
                    value: Any = src.copy()
                else:
                    value = bytes(seg.buf[: obj.nbytes])
            finally:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            return value
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        if isinstance(obj, tuple):
            return tuple(walk(v) for v in obj)
        return obj

    return walk(payload)


def collect_shm_refs(payload: Any) -> list[ShmRef]:
    """All descriptors inside a still-encoded payload (teardown sweep)."""
    refs: list[ShmRef] = []

    def walk(obj: Any) -> None:
        if isinstance(obj, ShmRef):
            refs.append(obj)
        elif isinstance(obj, dict):
            for v in obj.values():
                walk(v)
        elif isinstance(obj, (list, tuple)):
            for v in obj:
                walk(v)

    walk(payload)
    return refs


def unlink_ref(ref: ShmRef) -> None:
    """Best-effort reclamation of one segment (failed-run cleanup)."""
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass
