"""Shared-memory buffer transport for the process engine.

Stream buffers crossing a process boundary are pickled through a
``multiprocessing.Queue``.  Pickling a multi-megabyte NumPy payload copies
it twice (serialize + deserialize) through a pipe with a small kernel
buffer; for those payloads we instead park the bytes in a
:class:`multiprocessing.shared_memory.SharedMemory` segment and send only
a small :class:`ShmRef` descriptor.  The consumer attaches, copies the
data out, closes, and unlinks the segment, so every segment lives exactly
as long as one buffer is in flight.

Small or irregular payloads (scalars, strings, objects, arrays below
``DEFAULT_SHM_MIN_BYTES``) take the plain pickle path — for them the
descriptor bookkeeping would cost more than it saves.

The encoder walks the payload tree (dict / list / tuple containers) and
replaces eligible leaves — contiguous ``ndarray`` without object dtype,
``bytes``/``bytearray``/``memoryview`` — with descriptors; the decoder
inverts the walk.  Teardown after a failed run uses
:func:`collect_shm_refs` / :func:`unlink_ref` to reclaim segments whose
consumer died before draining them.

Segments are recycled through a per-process :class:`ShmPool`: creating a
segment is a syscall pair (``shm_open`` + ``ftruncate`` + ``mmap``) paid
per packet per link, so instead of unlinking after the copy-out the
consumer parks the attached segment on a bounded free list keyed by
power-of-two size class, and the next ``encode_payload`` in that process
pops it instead of creating a fresh one.  Segments migrate with the data:
a middle-stage worker consumes from upstream and reuses the very segments
it just drained for its own output.  The pool is torn down (close +
unlink) when a worker exits or the engine finishes; hit/miss counts ride
the control queue and land in the run trace under ``shm_pool``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

#: payload leaves at or above this size ride shared memory (configurable
#: per pipeline via ``ProcessPipeline(shm_min_bytes=...)``)
DEFAULT_SHM_MIN_BYTES = 64 * 1024


class EndOfStream:
    """Queue sentinel: every producer copy of the stream has closed.

    Carries the *work epoch* it was sent in: with a resident worker pool
    (see :mod:`repro.datacutter.mp.engine`) the same queues host many
    units of work back to back, and a consumer must never let a straggler
    sentinel from epoch N satisfy the end-of-stream count of epoch N+1.
    """

    __slots__ = ("epoch",)

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EndOfStream(epoch={self.epoch})"


@dataclass(slots=True)
class ShmRef:
    """Descriptor of one payload leaf parked in a shared-memory segment."""

    name: str
    nbytes: int
    kind: str  # "ndarray" | "bytes"
    #: np.lib.format descr (handles structured dtypes); None for bytes
    dtype_descr: Any = None
    shape: tuple = field(default_factory=tuple)


class ShmPool:
    """Bounded per-process free list of shared-memory segments.

    Keyed by power-of-two size class (min :data:`MIN_CLASS` bytes): an
    ``acquire`` pops any pooled segment of the right class (hit) or
    creates one sized to the class (miss); a ``release`` parks a
    still-attached segment for reuse, or refuses when the class list or
    the total byte budget is full (the caller then unlinks as before).
    Pooled segments stay open and resource-tracker-registered, so one
    ownership claim survives exactly as for an in-flight buffer; a
    :meth:`teardown` closes and unlinks everything.

    Thread safety: acquire/release/stats/teardown hold an internal
    ``threading.Lock`` — negligible next to the shm syscalls it protects —
    so encode/decode on two threads of one process, or a teardown on the
    engine's interrupt path racing a concurrent release, cannot pop from
    an emptied free list, misaccount the byte budget, or leak a segment.

    Fork safety: workers are forked mid-run, so a child may inherit its
    parent's pool dict.  Every operation checks the pid and drops
    inherited entries (closing only this process's mappings — the parent
    still owns the segments and will unlink them at its own teardown).
    """

    MIN_CLASS = 4096

    def __init__(
        self,
        max_per_class: int = 8,
        max_total_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        self._classes: dict[int, list[shared_memory.SharedMemory]] = {}
        self._total = 0
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self.max_per_class = max_per_class
        self.max_total_bytes = max_total_bytes
        self.hits = 0
        self.misses = 0
        self.released = 0
        self.evicted = 0

    @staticmethod
    def size_class(nbytes: int) -> int:
        cls = ShmPool.MIN_CLASS
        while cls < nbytes:
            cls <<= 1
        return cls

    def _locked(self) -> threading.Lock:
        # a forked child inherits the parent's lock in whatever state it
        # held at fork time; the child is single-threaded here, so swap
        # in a fresh lock before acquiring (the pid-keyed cleanup of the
        # inherited entries happens under it, in _fork_guard)
        if os.getpid() != self._pid:
            self._lock = threading.Lock()
        return self._lock

    def _fork_guard(self) -> None:
        if os.getpid() == self._pid:
            return
        # forked child: the parent owns these segments; unmap our
        # inherited views, never unlink, and start with a clean pool
        for segs in self._classes.values():
            for seg in segs:
                try:
                    seg.close()
                except Exception:  # pragma: no cover - stale mapping
                    pass
        self._classes = {}
        self._total = 0
        self._pid = os.getpid()
        self.hits = self.misses = self.released = self.evicted = 0

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        cls = self.size_class(max(nbytes, 1))
        with self._locked():
            self._fork_guard()
            segs = self._classes.get(cls)
            if segs:
                self.hits += 1
                self._total -= cls
                return segs.pop()
            self.misses += 1
        # create outside the lock: the syscall pair is the slow path
        return shared_memory.SharedMemory(create=True, size=cls)

    def release(self, seg: shared_memory.SharedMemory) -> bool:
        """Park an attached segment for reuse; False = caller unlinks."""
        with self._locked():
            self._fork_guard()
            cls = seg.size
            if cls < self.MIN_CLASS or cls & (cls - 1):
                return False  # pre-pool segment of arbitrary size: don't keep
            segs = self._classes.setdefault(cls, [])
            if (
                len(segs) >= self.max_per_class
                or self._total + cls > self.max_total_bytes
            ):
                self.evicted += 1
                return False
            segs.append(seg)
            self._total += cls
            self.released += 1
            return True

    def _stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "released": self.released,
            "evicted": self.evicted,
            "pooled_bytes": self._total,
        }

    def stats(self) -> dict[str, int]:
        with self._locked():
            return self._stats()

    def teardown(self) -> dict[str, int]:
        """Unlink every pooled segment; returns the final stats."""
        with self._locked():
            self._fork_guard()
            stats = self._stats()
            classes = self._classes
            self._classes = {}
            self._total = 0
        # the segments are now owned by this call alone; unlink them
        # outside the lock so a concurrent acquire is not held up
        for segs in classes.values():
            for seg in segs:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - racing cleanup
                    pass
        return stats


#: the process-wide pool (one per OS process; fork-guarded internally)
_POOL = ShmPool()


def pool_stats() -> dict[str, int]:
    return _POOL.stats()


def pool_teardown() -> dict[str, int]:
    return _POOL.teardown()


def _park(raw_nbytes: int) -> shared_memory.SharedMemory:
    # zero-size segments are rejected by the OS; never parked anyway
    return _POOL.acquire(max(raw_nbytes, 1))


def _handoff(seg: shared_memory.SharedMemory) -> None:
    """Close the producer's mapping and drop its resource-tracker claim.

    CPython registers a segment with the resource tracker on *attach* as
    well as on create (bpo-39959).  Ownership of an in-flight segment
    transfers producer -> consumer, so exactly one claim — the consumer's,
    made when it attaches — should survive; without this unregister the
    tracker warns about (already-unlinked) leaked segments at shutdown."""
    seg.close()
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker gone at shutdown
        pass


def encode_payload(
    payload: Any, min_bytes: int = DEFAULT_SHM_MIN_BYTES
) -> tuple[Any, list[str]]:
    """Replace large leaves with :class:`ShmRef`; returns (tree, segment
    names created) so a failed ``put`` can reclaim the segments."""
    names: list[str] = []

    def walk(obj: Any) -> Any:
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= min_bytes
            and not obj.dtype.hasobject
        ):
            arr = np.ascontiguousarray(obj)
            seg = _park(arr.nbytes)
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            dst[...] = arr
            ref = ShmRef(
                name=seg.name,
                nbytes=arr.nbytes,
                kind="ndarray",
                dtype_descr=np.lib.format.dtype_to_descr(arr.dtype),
                shape=tuple(arr.shape),
            )
            _handoff(seg)  # the segment persists until the consumer unlinks
            names.append(ref.name)
            return ref
        if isinstance(obj, (bytes, bytearray, memoryview)) and len(obj) >= min_bytes:
            raw = bytes(obj)
            seg = _park(len(raw))
            seg.buf[: len(raw)] = raw
            ref = ShmRef(name=seg.name, nbytes=len(raw), kind="bytes")
            _handoff(seg)
            names.append(ref.name)
            return ref
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        if isinstance(obj, tuple):
            return tuple(walk(v) for v in obj)
        return obj

    return walk(payload), names


def decode_payload(payload: Any) -> Any:
    """Inverse of :func:`encode_payload`; consumes the in-flight buffer.
    After the copy-out the segment is parked on this process's
    :class:`ShmPool` for the next encode to reuse (unlinked only when the
    pool is full)."""

    def walk(obj: Any) -> Any:
        if isinstance(obj, ShmRef):
            seg = shared_memory.SharedMemory(name=obj.name)
            pooled = False
            try:
                if obj.kind == "ndarray":
                    dtype = np.lib.format.descr_to_dtype(obj.dtype_descr)
                    src = np.ndarray(obj.shape, dtype=dtype, buffer=seg.buf)
                    value: Any = src.copy()
                else:
                    value = bytes(seg.buf[: obj.nbytes])
                pooled = _POOL.release(seg)
            finally:
                if not pooled:
                    seg.close()
                    try:
                        seg.unlink()
                    except FileNotFoundError:  # pragma: no cover - gone
                        pass
            return value
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        if isinstance(obj, tuple):
            return tuple(walk(v) for v in obj)
        return obj

    return walk(payload)


def collect_shm_refs(payload: Any) -> list[ShmRef]:
    """All descriptors inside a still-encoded payload (teardown sweep)."""
    refs: list[ShmRef] = []

    def walk(obj: Any) -> None:
        if isinstance(obj, ShmRef):
            refs.append(obj)
        elif isinstance(obj, dict):
            for v in obj.values():
                walk(v)
        elif isinstance(obj, (list, tuple)):
            for v in obj:
                walk(v)

    walk(payload)
    return refs


def unlink_ref(ref: ShmRef) -> None:
    """Best-effort reclamation of one segment (failed-run cleanup)."""
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass
