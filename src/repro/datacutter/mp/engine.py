"""Process-based execution engine: true parallelism for filter pipelines.

Runs the same :class:`~repro.datacutter.filters.FilterSpec` pipelines as
:class:`~repro.datacutter.runtime.ThreadedPipeline`, but with one worker
*process* per filter copy, so CPU-bound filters genuinely overlap instead
of serializing behind the GIL.  The moving parts:

* :mod:`~repro.datacutter.mp.transport` — shared-memory transport for
  large NumPy/bytes payloads, pickle for the rest;
* :mod:`~repro.datacutter.mp.channels` — bounded inter-stage queues with
  backpressure and the end-of-stream protocol;
* :mod:`~repro.datacutter.mp.worker` — the per-copy unit-of-work loop;
* :mod:`~repro.datacutter.mp.supervisor` — sentinel/heartbeat liveness
  watching and clean teardown.

Workers are started with the ``fork`` start method.  That is a design
choice, not an accident: the compiler's generated filter classes are
created with ``exec`` and filter specs may carry closures, none of which
survive pickling — ``fork`` inherits them by memory image, exactly like
threads do, so *any* pipeline the threaded engine can run, this engine
can run.  On platforms without ``fork`` construction raises a
``PipelineError`` telling the caller to use the threaded engine.

Results, stream statistics, error semantics, and observability mirror the
threaded engine: ``run()`` returns the same :class:`RunResult` shape, a
failing filter copy raises :class:`PipelineError` carrying the original
traceback, and with a trace collector configured every worker buffers its
spans and queue gauges locally and ships them over the control queue for
the supervisor to merge — so process-engine traces are as complete as
threaded ones (see :mod:`repro.datacutter.obs`).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Sequence

from ..filters import FilterSpec
from ..obs.trace import TraceCollector
from ..recovery.faults import FaultPlan
from ..recovery.policy import RetryPolicy
from ..recovery.replay import CopyProgress
from ..runtime import PipelineError, RunResult
from ..streams import RoundRobin
from .channels import ProcessEdge
from .supervisor import Supervisor, WorkerHandle
from .transport import DEFAULT_SHM_MIN_BYTES, pool_teardown
from .worker import worker_main


class ProcessPipeline:
    """Executes one unit-of-work with one OS process per filter copy."""

    engine_name = "process"

    def __init__(
        self,
        specs: Sequence[FilterSpec],
        queue_capacity: int = 32,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        timeout: float | None = None,
        death_grace: float = 2.0,
        trace: TraceCollector | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        post_eos_timeout: float | None = 60.0,
    ) -> None:
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity} "
                "(capacity 0 would silently disable backpressure)"
            )
        self.specs = list(specs)
        self.queue_capacity = queue_capacity
        self.shm_min_bytes = shm_min_bytes
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace = trace
        self.retry = retry
        self.faults = FaultPlan.coerce(faults)
        self.post_eos_timeout = post_eos_timeout

    def rebind(self, specs: Sequence[FilterSpec]) -> None:
        """Point the engine at a new placed pipeline for the next run.

        Each ``run()`` forks fresh workers and edges, so a warm session
        (:class:`~repro.datacutter.engine.EngineSession`) only needs the
        spec list swapped to reuse the engine's validated configuration
        across requests (worker persistence across units of work is a
        ROADMAP item)."""
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        self.specs = list(specs)

    def run(self) -> RunResult:
        try:
            mpctx = multiprocessing.get_context("fork")
        except ValueError as err:  # pragma: no cover - non-POSIX platforms
            raise PipelineError(
                "the process engine requires the 'fork' start method "
                "(generated filter classes are not picklable); "
                "use engine='threaded' on this platform"
            ) from err
        if self.trace is not None:
            self.trace.note(engine=self.engine_name)

        specs = self.specs
        edges: list[ProcessEdge] = []
        for k in range(len(specs) - 1):
            policy = specs[k].out_policy or RoundRobin()
            # spec-attached policies survive across runs; reset any routing
            # cursor so run N+1 routes identically to run N
            policy.reset()
            edges.append(
                ProcessEdge(
                    mpctx,
                    name=f"{specs[k].name}->{specs[k + 1].name}",
                    n_producers=specs[k].width,
                    n_consumers=specs[k + 1].width,
                    capacity=self.queue_capacity,
                    policy=policy,
                    shm_min_bytes=self.shm_min_bytes,
                )
            )
        collector = ProcessEdge(
            mpctx,
            name=f"{specs[-1].name}->out",
            n_producers=specs[-1].width,
            n_consumers=1,
            capacity=None,  # unbounded: the sink must never block the pipeline
            shm_min_bytes=self.shm_min_bytes,
        )
        all_edges = edges + [collector]

        n_workers = sum(spec.width for spec in specs)
        heartbeats = mpctx.Array("d", n_workers, lock=False)
        control = mpctx.Queue()
        recovering = self.retry is not None or self.faults is not None

        # per-worker wiring, kept so the supervisor can respawn any copy
        spawn_args: dict[int, tuple[FilterSpec, int, ProcessEdge | None, ProcessEdge]] = {}
        workers: list[WorkerHandle] = []
        worker_id = 0
        for k, spec in enumerate(specs):
            in_edge = edges[k - 1] if k > 0 else None
            out_edge = all_edges[k]
            for copy_index in range(spec.width):
                spawn_args[worker_id] = (spec, copy_index, in_edge, out_edge)
                workers.append(
                    WorkerHandle(
                        process=None,
                        worker_id=worker_id,
                        label=f"{spec.name}#{copy_index}",
                    )
                )
                worker_id += 1

        def spawn(wid: int, progress: CopyProgress | None) -> Any:
            spec, copy_index, in_edge, out_edge = spawn_args[wid]
            # fork start method: args (including the unpicklable generated
            # specs and any replay buffers) are inherited, never pickled
            process = mpctx.Process(
                target=worker_main,
                args=(
                    wid,
                    spec,
                    copy_index,
                    in_edge,
                    out_edge,
                    control,
                    heartbeats,
                    self.trace is not None,
                    self.faults,
                    progress,
                ),
                name=f"{spec.name}#{copy_index}",
                daemon=True,
            )
            process.start()
            return process

        supervisor = Supervisor(
            workers,
            control,
            collector,
            all_edges,
            heartbeats,
            timeout=self.timeout,
            death_grace=self.death_grace,
            trace=self.trace,
            retry=self.retry,
            faults=self.faults,
            respawn=spawn if recovering else None,
            post_eos_timeout=self.post_eos_timeout,
        )
        for w in workers:
            w.process = spawn(
                w.worker_id, CopyProgress() if recovering else None
            )
        try:
            outputs = supervisor.supervise()
        except BaseException:
            # supervise() tears down on PipelineError; this guard covers
            # KeyboardInterrupt and friends arriving in the parent
            supervisor._teardown()
            pool_teardown()
            raise

        # the parent decodes collector buffers, so it pools segments too:
        # fold its counters in with the workers' and release everything
        parent_stats = pool_teardown()
        shm_pool = dict(supervisor.shm_pool)
        for key, value in parent_stats.items():
            shm_pool[key] = shm_pool.get(key, 0) + value
        if self.trace is not None and any(shm_pool.values()):
            self.trace.note(shm_pool=shm_pool)

        result = RunResult(outputs=outputs)
        for edge in all_edges:
            agg = supervisor.stats.get(edge.name)
            result.stream_bytes[edge.name] = agg.bytes if agg else 0
            result.stream_buffers[edge.name] = agg.buffers if agg else 0
            result.stream_by_packet[edge.name] = dict(agg.by_packet) if agg else {}
        return result
