"""Process-based execution engine: true parallelism for filter pipelines.

Runs the same :class:`~repro.datacutter.filters.FilterSpec` pipelines as
:class:`~repro.datacutter.runtime.ThreadedPipeline`, but with one worker
*process* per filter copy, so CPU-bound filters genuinely overlap instead
of serializing behind the GIL.  The moving parts:

* :mod:`~repro.datacutter.mp.transport` — shared-memory transport for
  large NumPy/bytes payloads, pickle for the rest;
* :mod:`~repro.datacutter.mp.channels` — bounded inter-stage queues with
  backpressure and the epoch-tagged end-of-stream protocol;
* :mod:`~repro.datacutter.mp.worker` — the resident per-copy worker loop;
* :mod:`~repro.datacutter.mp.supervisor` — sentinel/heartbeat liveness
  watching, crash recovery, and clean teardown.

Workers are started with the ``fork`` start method.  That is a design
choice, not an accident: the compiler's generated filter classes are
created with ``exec`` and filter specs may carry closures, none of which
survive pickling — ``fork`` inherits them by memory image, exactly like
threads do, so *any* pipeline the threaded engine can run, this engine
can run.  On platforms without ``fork`` construction raises a
``PipelineError`` telling the caller to use the threaded engine.

**Resident worker pool.**  Forking one process per filter copy per run
is exactly the startup cost the paper's long-lived filtering services
avoid, so the pool is reusable across runs: workers are forked once and
then loop on a per-worker order channel receiving *work epochs*.  A warm
:class:`~repro.datacutter.engine.EngineSession` marks the engine resident
(:meth:`ProcessPipeline.retain`); each subsequent ``run()`` then ships
the freshly bound :class:`FilterSpec` values (packets, params, widths,
routing policy — the generated filter classes are already in the fork
image, anchored by :mod:`repro.codegen.generated_registry`) over the
order channels instead of forking, and the epoch id correlates every
end-of-stream sentinel and ``done`` handshake so a straggler from epoch
N cannot pollute epoch N+1.  The supervisor stays up across epochs —
heartbeats, crash respawn, and checkpoint replay all work mid-epoch on a
resident worker — and each worker's :class:`ShmPool` segments persist
and are reused across epochs, with per-epoch reuse counters reported
into the trace.  The pool *reforks* transparently whenever an epoch
cannot be shipped by value: a different pipeline shape, a filter class
generated after the pool was forked, or unpicklable spec contents.
Without ``retain()`` each ``run()`` forks and joins its own pool —
byte-identical behaviour to the historical fork-per-run engine — and
:meth:`close` performs the single real teardown of a resident pool
(poison-pill orders, join, shared-memory teardown).

Results, stream statistics, error semantics, and observability mirror the
threaded engine: ``run()`` returns the same :class:`RunResult` shape, a
failing filter copy raises :class:`PipelineError` carrying the original
traceback, and with a trace collector configured every worker buffers its
spans and queue gauges locally and ships them over the control queue for
the supervisor to merge — so process-engine traces are as complete as
threaded ones (see :mod:`repro.datacutter.obs`).
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Sequence

from ..filters import FilterSpec
from ..obs.trace import TraceCollector
from ..recovery.faults import FaultPlan
from ..recovery.policy import RetryPolicy
from ..recovery.replay import CopyProgress
from ..runtime import PipelineError, RunResult
from .channels import ProcessEdge
from .supervisor import Supervisor, WorkerHandle
from .transport import DEFAULT_SHM_MIN_BYTES, pool_stats, pool_teardown
from .worker import worker_main

#: the poison pill shipped to resident workers at teardown
_EXIT_ORDER = pickle.dumps(("exit",))

#: shm-pool counters reported as per-run deltas from the parent process
_SHM_COUNTERS = ("hits", "misses", "released", "evicted")


def _generated_registry() -> Any:
    """The pickle-anchor module for exec-generated classes.

    Imported lazily: ``repro.codegen`` pulls in the compiler stack, which
    itself imports :mod:`repro.datacutter` — a module-level import here
    would close that cycle during package initialization."""
    from ...codegen import generated_registry

    return generated_registry


@dataclass
class _WorkerPool:
    """One forked generation of resident workers and their wiring."""

    mpctx: Any
    #: pipeline shape the pool was forked for: ((name, width), ...) — the
    #: edges and worker count are bound to it, so a different shape reforks
    layout: tuple[tuple[str, int], ...]
    resident: bool
    recovering: bool
    workers: list[WorkerHandle]
    #: wid -> [spec, copy_index, in_edge, out_edge, order_recv] — the spec
    #: slot is refreshed every epoch so a respawn forks the current one
    spawn_args: dict[int, list[Any]]
    all_edges: list[ProcessEdge]
    collector: ProcessEdge
    heartbeats: Any
    control: Any
    #: wid -> parent (send) end of the worker's order channel
    orders: dict[int, Any]
    #: wid -> parent copy of the worker-side (recv) end, closed at teardown
    order_recv: dict[int, Any]
    supervisor: Supervisor
    #: generated-registry attribute names present at fork time: a spec
    #: whose factory was registered later cannot unpickle in the children
    registry_names: frozenset[str] = field(default_factory=frozenset)
    forked_at: float = field(default_factory=time.monotonic)


class ProcessPipeline:
    """Executes units of work with one OS process per filter copy."""

    engine_name = "process"

    def __init__(
        self,
        specs: Sequence[FilterSpec],
        queue_capacity: int = 32,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        timeout: float | None = None,
        death_grace: float = 2.0,
        trace: TraceCollector | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        post_eos_timeout: float | None = 60.0,
        resident: bool = False,
    ) -> None:
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity} "
                "(capacity 0 would silently disable backpressure)"
            )
        self.specs = list(specs)
        self.queue_capacity = queue_capacity
        self.shm_min_bytes = shm_min_bytes
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace = trace
        self.retry = retry
        self.faults = FaultPlan.coerce(faults)
        self.post_eos_timeout = post_eos_timeout
        self._resident = resident
        self._pool: _WorkerPool | None = None
        self._epoch = 0
        self._forks = 0
        self._reforks = 0
        self._closed = False
        self._close_evt = threading.Event()
        self._run_lock = threading.Lock()
        #: parent-process shm-pool counters at the end of the last run
        #: (the parent decodes collector buffers, so it pools segments too)
        self._parent_shm_base = dict.fromkeys(_SHM_COUNTERS, 0)

    # ------------------------------------------------------------ lifecycle
    def retain(self) -> None:
        """Keep the worker pool resident across runs.

        Called by :class:`~repro.datacutter.engine.EngineSession`; after
        this, the caller owns the teardown via :meth:`close`."""
        self._resident = True

    def rebind(self, specs: Sequence[FilterSpec]) -> None:
        """Point the engine at a new placed pipeline for the next run.

        On a resident pool the next ``run()`` ships these specs to the
        already-forked workers as a new work epoch (values only); a pool
        with a different shape — or specs that cannot cross the order
        channel — is reforked transparently."""
        if not specs:
            raise ValueError("pipeline needs at least one filter")
        self.specs = list(specs)

    def close(self) -> None:
        """The single real teardown of a (possibly resident) pool.

        Idempotent.  A close racing an in-flight ``run()`` does not hang
        or leak workers: the in-flight run is failed promptly with a
        structured :class:`PipelineError` (via the supervisor's abort
        hook), its pool is torn down, and only then does close return."""
        self._close_evt.set()
        with self._run_lock:
            self._closed = True
            try:
                self._shutdown_pool()
            finally:
                pool_teardown()

    def __enter__(self) -> "ProcessPipeline":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ run
    def run(self) -> RunResult:
        with self._run_lock:
            return self._run_locked()

    def _run_locked(self) -> RunResult:
        if self._closed or self._close_evt.is_set():
            raise PipelineError(
                "process engine is closed; it cannot run another unit of work"
            )
        try:
            mpctx = multiprocessing.get_context("fork")
        except ValueError as err:  # pragma: no cover - non-POSIX platforms
            raise PipelineError(
                "the process engine requires the 'fork' start method "
                "(generated filter classes are not picklable); "
                "use engine='threaded' on this platform"
            ) from err
        if self.trace is not None:
            self.trace.note(engine=self.engine_name)

        specs = self.specs
        self._epoch += 1
        epoch = self._epoch

        pool = self._pool
        if pool is not None:
            order_blobs = self._pack_orders(pool, specs, epoch)
            if order_blobs is None:
                # the resident pool cannot serve this epoch by value:
                # different shape, post-fork generated classes, or
                # unpicklable spec contents — refork with specs inherited
                # through the fork image instead
                self._shutdown_pool()
                pool = None
                self._reforks += 1
        if pool is None:
            pool = self._fork_pool(mpctx, specs, epoch)
            self._pool = pool
        else:
            self._begin_epoch(pool, specs, epoch, order_blobs)

        supervisor = pool.supervisor
        try:
            outputs = supervisor.supervise()
        except BaseException as err:
            # supervise() tears the workers down on PipelineError; this
            # guard covers KeyboardInterrupt and friends in the parent
            if not isinstance(err, PipelineError):
                supervisor._teardown()
            self._dispose_failed_pool(pool)
            raise

        result = RunResult(outputs=outputs)
        for edge in pool.all_edges:
            agg = supervisor.stats.get(edge.name)
            result.stream_bytes[edge.name] = agg.bytes if agg else 0
            result.stream_buffers[edge.name] = agg.buffers if agg else 0
            result.stream_by_packet[edge.name] = dict(agg.by_packet) if agg else {}

        shm_pool = dict(supervisor.shm_pool)
        if self._resident:
            # the pool survives: report the parent's reuse as a delta so
            # per-run numbers stay additive across epochs
            parent_now = pool_stats()
            parent_stats = {
                k: parent_now[k] - self._parent_shm_base[k]
                for k in _SHM_COUNTERS
            }
            parent_stats["pooled_bytes"] = parent_now["pooled_bytes"]
            self._parent_shm_base = {k: parent_now[k] for k in _SHM_COUNTERS}
        else:
            self._shutdown_pool()
            parent_stats = pool_teardown()
        for key, value in parent_stats.items():
            shm_pool[key] = shm_pool.get(key, 0) + value
        if self.trace is not None:
            if any(shm_pool.values()):
                self.trace.note(shm_pool=shm_pool)
            self.trace.note(
                worker_pool={
                    "resident": self._resident,
                    "epoch": epoch,
                    "forks": self._forks,
                    "reforks": self._reforks,
                }
            )
        return result

    # ------------------------------------------------------- pool plumbing
    def _fork_pool(
        self, mpctx: Any, specs: list[FilterSpec], epoch: int
    ) -> _WorkerPool:
        """Fork a fresh worker generation with ``specs`` in its image."""
        edges: list[ProcessEdge] = []
        for k in range(len(specs) - 1):
            edges.append(
                ProcessEdge(
                    mpctx,
                    name=f"{specs[k].name}->{specs[k + 1].name}",
                    n_producers=specs[k].width,
                    n_consumers=specs[k + 1].width,
                    capacity=self.queue_capacity,
                    shm_min_bytes=self.shm_min_bytes,
                )
            )
        collector = ProcessEdge(
            mpctx,
            name=f"{specs[-1].name}->out",
            n_producers=specs[-1].width,
            n_consumers=1,
            capacity=None,  # unbounded: the sink must never block the pipeline
            shm_min_bytes=self.shm_min_bytes,
        )
        all_edges = edges + [collector]
        for edge in all_edges:
            edge.begin_epoch(epoch, reopen=True)

        n_workers = sum(spec.width for spec in specs)
        heartbeats = mpctx.Array("d", n_workers, lock=False)
        control = mpctx.Queue()
        recovering = self.retry is not None or self.faults is not None

        spawn_args: dict[int, list[Any]] = {}
        orders: dict[int, Any] = {}
        order_recv: dict[int, Any] = {}
        workers: list[WorkerHandle] = []
        worker_id = 0
        for k, spec in enumerate(specs):
            in_edge = edges[k - 1] if k > 0 else None
            out_edge = all_edges[k]
            for copy_index in range(spec.width):
                recv_end, send_end = mpctx.Pipe(duplex=False)
                orders[worker_id] = send_end
                order_recv[worker_id] = recv_end
                spawn_args[worker_id] = [spec, copy_index, in_edge, out_edge, recv_end]
                workers.append(
                    WorkerHandle(
                        process=None,
                        worker_id=worker_id,
                        label=f"{spec.name}#{copy_index}",
                    )
                )
                worker_id += 1

        supervisor = Supervisor(
            workers,
            control,
            collector,
            all_edges,
            heartbeats,
            timeout=self.timeout,
            death_grace=self.death_grace,
            trace=self.trace,
            retry=self.retry,
            faults=self.faults,
            respawn=None,  # wired below (the closure needs the pool)
            post_eos_timeout=self.post_eos_timeout,
        )
        supervisor.abort = self._abort_reason
        # resident workers park on their order channels after a clean
        # epoch instead of exiting, so supervise() must not join them
        supervisor.resident = self._resident

        pool = _WorkerPool(
            mpctx=mpctx,
            layout=tuple((s.name, s.width) for s in specs),
            resident=self._resident,
            recovering=recovering,
            workers=workers,
            spawn_args=spawn_args,
            all_edges=all_edges,
            collector=collector,
            heartbeats=heartbeats,
            control=control,
            orders=orders,
            order_recv=order_recv,
            supervisor=supervisor,
            registry_names=frozenset(vars(_generated_registry())),
        )

        def spawn(wid: int, progress: CopyProgress | None) -> Any:
            spec, copy_index, in_edge, out_edge, recv_end = pool.spawn_args[wid]
            # fork start method: args (including the unpicklable generated
            # specs and any replay buffers) are inherited, never pickled.
            # Respawns bake the *current* epoch and spec into the fresh
            # image, so a worker restarted mid-epoch N heals epoch N and
            # then serves epoch N+1 like any resident peer.
            process = mpctx.Process(
                target=worker_main,
                args=(
                    wid,
                    spec,
                    copy_index,
                    in_edge,
                    out_edge,
                    control,
                    heartbeats,
                    self.trace is not None,
                    self.faults,
                    progress,
                    recv_end,
                    supervisor.epoch,
                    pool.resident,
                ),
                name=f"{spec.name}#{copy_index}",
                daemon=True,
            )
            process.start()
            return process

        if recovering:
            # the respawn hook closes over the pool, which did not exist
            # when the Supervisor was constructed; begin_epoch() below
            # builds the recovery bookkeeping this flag enables
            supervisor.respawn = spawn
            supervisor._recovering = True

        supervisor.begin_epoch(epoch)
        for w in workers:
            w.process = spawn(
                w.worker_id, CopyProgress() if recovering else None
            )
        self._forks += 1
        return pool

    def _pack_orders(
        self, pool: _WorkerPool, specs: list[FilterSpec], epoch: int
    ) -> dict[int, bytes] | None:
        """Pre-pickle one epoch order per worker; None means refork.

        All orders are encoded *before any is sent*, so an unpicklable
        spec can never leave the pool half-dispatched into an epoch.  A
        factory anchored in the generated registry after the pool was
        forked pickles fine here but would fail lookup in the children —
        the fork-time registry snapshot catches that proactively."""
        if not pool.resident or self._resident != pool.resident:
            return None
        if pool.layout != tuple((s.name, s.width) for s in specs):
            return None
        if any(
            w.process is None or not w.process.is_alive() for w in pool.workers
        ):
            return None  # a worker died while idle (OOM kill, signal)
        registry_name = _generated_registry().__name__
        for spec in specs:
            factory = spec.factory
            if (
                getattr(factory, "__module__", None) == registry_name
                and getattr(factory, "__qualname__", "") not in pool.registry_names
            ):
                return None
        blobs: dict[int, bytes] = {}
        worker_id = 0
        try:
            for spec in specs:
                for _copy in range(spec.width):
                    progress = CopyProgress() if pool.recovering else None
                    # the fault plan rides along so chaos config tracks the
                    # engine's current value each epoch instead of freezing
                    # at whatever the pool was forked with
                    blobs[worker_id] = pickle.dumps(
                        ("epoch", epoch, spec, progress, self.faults),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    worker_id += 1
        except Exception:  # noqa: BLE001 - closures, lambdas, open handles
            return None
        return blobs

    def _begin_epoch(
        self,
        pool: _WorkerPool,
        specs: list[FilterSpec],
        epoch: int,
        order_blobs: dict[int, bytes],
    ) -> None:
        """Ship one epoch to an idle resident pool."""
        # refresh the spec slots so a mid-epoch respawn forks the current
        # bindings, not the ones the pool was originally forked with
        worker_id = 0
        for spec in specs:
            for _copy in range(spec.width):
                pool.spawn_args[worker_id][0] = spec
                worker_id += 1
        # reset parent-side edge state (and the shared producer-open
        # counts) *before* any worker can race ahead into the new epoch
        for edge in pool.all_edges:
            edge.begin_epoch(epoch, reopen=True)
        pool.supervisor.begin_epoch(epoch)
        for wid, send_end in pool.orders.items():
            send_end.send_bytes(order_blobs[wid])

    def _abort_reason(self) -> str | None:
        if self._close_evt.is_set():
            return (
                "pipeline closed while a unit of work was in flight "
                "(EngineSession/SessionPool close raced run())"
            )
        return None

    def _shutdown_pool(self) -> None:
        """Orderly teardown of an idle pool: poison pills, join, reclaim."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for send_end in pool.orders.values():
            try:
                send_end.send_bytes(_EXIT_ORDER)
            except (OSError, ValueError, BrokenPipeError):
                pass  # worker already gone; the join below still reaps it
        for w in pool.workers:
            if w.process is not None:
                w.process.join(timeout=10)
        for w in pool.workers:
            if w.process is not None and w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=2)
        self._release_pool_ipc(pool)
        self._parent_shm_base = dict.fromkeys(_SHM_COUNTERS, 0)

    def _dispose_failed_pool(self, pool: _WorkerPool) -> None:
        """Drop a pool whose epoch failed (workers already torn down)."""
        if self._pool is pool:
            self._pool = None
        self._release_pool_ipc(pool)
        pool_teardown()
        self._parent_shm_base = dict.fromkeys(_SHM_COUNTERS, 0)

    def _release_pool_ipc(self, pool: _WorkerPool) -> None:
        for send_end in pool.orders.values():
            try:
                send_end.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for recv_end in pool.order_recv.values():
            try:
                recv_end.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for edge in pool.all_edges:
            edge.reclaim()
        # drain and release the control queue's feeder resources
        while True:
            try:
                pool.control.get_nowait()
            except (Empty, OSError, ValueError, EOFError):
                break
        try:
            pool.control.close()
            pool.control.join_thread()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
