"""Worker-process entry point: one resident process per filter copy.

Each worker is forked once and then serves *work epochs*: for every epoch
it runs the unit-of-work protocol shared with the threaded engine
(:func:`~repro.datacutter.runtime.run_filter_copy` — ``init``, then either
``generate`` (source copies split packets round-robin) or a
``get``/``process`` loop until end-of-stream, then ``finalize``) and
reports to the supervisor over the control queue:

* ``("error", label, traceback_text, worker_id)`` when a filter callback
  raises;
* ``("trace", worker_id, spans, queue_samples, blocked)`` with the
  worker-side event buffer when tracing is enabled — spans and queue
  gauges are recorded into a process-local, per-epoch
  :class:`~repro.datacutter.obs.trace.Trace` (attached to this worker's
  private post-fork copies of its edges) and shipped at epoch end, so
  process-engine traces are as complete as threaded ones;
* ``("shmpool", worker_id, stats)`` with this epoch's *delta* of the
  worker's :class:`~repro.datacutter.mp.transport.ShmPool` reuse counters
  (segments stay pooled across epochs on a resident worker — that reuse
  is part of the warm-path win, and the counters prove it);
* ``("stats", worker_id, stream, buffers, bytes, by_packet)`` with the
  producer-side accounting of its output edge for this epoch;
* ``("done", worker_id, epoch, failed)`` as the final message of the
  epoch, tagged so a straggler handshake from epoch N can never satisfy
  the supervisor's bookkeeping for epoch N+1.

After a clean epoch a *resident* worker (``orders`` connection provided,
``resident=True``) blocks on its order channel for the next instruction:

* ``("epoch", epoch, spec_or_None, progress_or_None, faults_or_None)`` —
  run another unit of work; a non-``None`` spec rebinds the copy to
  freshly shipped packets/params/width (values only — the generated
  filter classes are already in the fork image, anchored by
  :mod:`repro.codegen.generated_registry`), and the fault plan rides
  along so injected chaos tracks the engine's current configuration;
* ``("exit",)`` — the poison pill: tear down the shared-memory pool and
  leave.

A non-resident worker (fork-per-run mode, and every respawned incarnation
finishing a failed epoch) exits after its single epoch exactly like the
pre-pool engine did.  A worker that is killed sends nothing — the
supervisor detects that through the process sentinel and raises or
respawns on the caller's side.  Each worker also stamps a heartbeat slot
(monotonic seconds) before every packet so the supervisor's timeout
diagnostics can name the slowest/stalled filter.

With recovery enabled (a :class:`~repro.datacutter.recovery.replay.CopyProgress`
is passed for the epoch), the worker runs
:func:`~repro.datacutter.recovery.replay.run_recoverable_copy` instead and
additionally streams per-packet progress for the supervisor's restart
bookkeeping:

* ``("inflight", worker_id, seq, buffer)`` — delivered, not yet done;
* ``("ack", worker_id, seq, state_blob, restorable)`` — packet retired,
  carrying the pickled post-packet checkpoint (atomically: a packet is
  either inside the checkpoint or in the supervisor's replay set);
* ``("genack", worker_id, packet)`` — a source copy flushed an owned
  packet (restart skips it during regeneration);
* ``("seos", worker_id, tally)`` / ``("eos", worker_id)`` — input-stream
  sentinels consumed so far / input fully closed.

Under recovery a *failed* worker does not close its output edge — the
respawned incarnation keeps producing on the same logical stream, and
only the final successful attempt (or supervisor teardown) closes it.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
import traceback
from typing import Any

from ..filters import Filter, FilterContext, FilterSpec
from ..obs.trace import Trace
from ..recovery.checkpoint import CheckpointError, freeze_state
from ..recovery.faults import FaultPlan, FaultSpec, make_injector
from ..recovery.replay import CopyProgress, run_recoverable_copy
from ..runtime import run_filter_copy
from ..streams import RoundRobin
from .channels import ProcessEdge
from .transport import pool_stats, pool_teardown

#: shm-pool counters shipped as per-epoch deltas (monotonic in the pool)
_SHM_COUNTERS = ("hits", "misses", "released", "evicted")


class ControlRecoverySink:
    """Recovery bookkeeping shipped to the supervisor as control messages."""

    def __init__(self, control: Any, worker_id: int) -> None:
        self._control = control
        self._wid = worker_id

    def on_inflight(self, seq: int, buf: Any) -> None:
        self._control.put(("inflight", self._wid, seq, buf))

    def on_ack(self, seq: int, state: dict | None) -> None:
        try:
            blob, restorable = freeze_state(state), True
        except CheckpointError:
            # the copy keeps running; it just cannot be resumed from a
            # checkpoint — the supervisor fails fast if it later dies
            blob, restorable = None, False
        self._control.put(("ack", self._wid, seq, blob, restorable))

    def on_gen_ack(self, packet: int) -> None:
        self._control.put(("genack", self._wid, packet))

    def on_eos(self) -> None:
        self._control.put(("eos", self._wid))


def worker_main(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    heartbeats: Any,
    trace_enabled: bool = False,
    faults: FaultPlan | None = None,
    progress: CopyProgress | None = None,
    orders: Any = None,
    epoch: int = 0,
    resident: bool = False,
) -> None:
    failed = False
    shm_base = dict.fromkeys(_SHM_COUNTERS, 0)
    try:
        while True:
            failed = _run_epoch(
                worker_id, spec, copy_index, in_edge, out_edge, control,
                heartbeats, epoch, trace_enabled, faults, progress, shm_base,
            )
            if failed or not resident or orders is None:
                break
            order = _next_order(orders, control, spec, copy_index, worker_id)
            if order is None:
                break
            epoch, new_spec, progress, faults = order
            if new_spec is not None:
                spec = new_spec
    finally:
        # the worker is exiting for good: unlink its pooled segments
        # (reuse counters were already shipped per epoch)
        pool_teardown()
    if failed:
        sys.exit(1)


def _next_order(
    orders: Any, control: Any, spec: FilterSpec, copy_index: int, worker_id: int
) -> tuple[int, FilterSpec | None, CopyProgress | None, FaultPlan | None] | None:
    """Block until the parent ships the next epoch; None means exit.

    Orders arrive pre-pickled (the parent validates picklability for the
    whole pool before dispatching any).  Should decoding still fail — a
    spec referencing a class generated after this worker was forked that
    slipped past the parent's registry check — the worker reports the
    traceback and exits without ``done``; the supervisor then sees a
    sentinel death and either respawns it (a fresh fork *does* have the
    class in its image) or fails the run with this context attached."""
    try:
        data = orders.recv_bytes()
    except (EOFError, OSError):
        return None  # parent is gone; nothing left to serve
    try:
        order = pickle.loads(data)
    except Exception:  # noqa: BLE001 - reported to the supervisor
        label = f"{spec.name}#{copy_index}"
        try:
            control.put((
                "error",
                label,
                f"work-epoch order could not be decoded:\n{traceback.format_exc()}",
                worker_id,
            ))
        except Exception:  # pragma: no cover - control pipe gone
            pass
        return None
    if order[0] == "exit":
        return None
    _, epoch, new_spec, progress, faults = order
    return epoch, new_spec, progress, faults


def _run_epoch(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    heartbeats: Any,
    epoch: int,
    trace_enabled: bool,
    faults: FaultPlan | None,
    progress: CopyProgress | None,
    shm_base: dict[str, int],
) -> bool:
    """One unit of work on this copy; returns True if the filter failed."""
    label = f"{spec.name}#{copy_index}"
    recovery = progress is not None

    def beat() -> None:
        heartbeats[worker_id] = time.monotonic()

    # fresh epoch state on this process's private post-fork edge copies:
    # sentinel tallies, producer stats, and the routing policy all restart
    # so nothing bleeds over from the previous unit of work
    if in_edge is not None:
        in_edge.begin_epoch(epoch)
    out_edge.begin_epoch(epoch)
    policy = spec.out_policy or RoundRobin()
    policy.reset()
    out_edge.policy = policy

    trace = Trace() if trace_enabled else None
    # these edge objects are this process's private post-fork copies:
    # attaching the local buffer cannot race with other workers
    if in_edge is not None:
        in_edge.trace = trace
    out_edge.trace = trace

    ctx = FilterContext(
        name=spec.name,
        copy_index=copy_index,
        n_copies=spec.width,
        emit=out_edge.put,
        params=spec.params,
    )
    filt: Filter = spec.make()
    failed = False
    beat()
    try:
        if recovery:
            _run_recoverable(
                worker_id, spec, copy_index, in_edge, out_edge, control,
                filt, ctx, beat, trace, faults, progress,
            )
        else:
            run_filter_copy(
                filt,
                ctx,
                spec,
                copy_index,
                in_edge,
                out_edge,
                trace=trace,
                heartbeat=beat,
            )
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        failed = True
        try:
            control.put(("error", label, traceback.format_exc(), worker_id))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    finally:
        if not (failed and recovery):
            # under recovery a failed attempt must NOT close: a restarted
            # incarnation keeps producing on this logical stream, and a
            # premature sentinel would end it for every consumer
            try:
                out_edge.close_producer()
            except Exception:  # pragma: no cover - queue torn down under us
                pass
        # per-epoch shm-pool delta: pooled segments persist across epochs
        # on a resident worker, so reuse counters only ever grow — ship
        # the growth, plus the currently pooled bytes
        shm_now = pool_stats()
        shm_delta = {k: shm_now[k] - shm_base[k] for k in _SHM_COUNTERS}
        shm_delta["pooled_bytes"] = shm_now["pooled_bytes"]
        shm_base.update({k: shm_now[k] for k in _SHM_COUNTERS})
        try:
            if trace is not None:
                control.put(
                    (
                        "trace",
                        worker_id,
                        trace.spans,
                        trace.queue_samples,
                        trace.blocked,
                    )
                )
            if any(shm_delta.values()):
                control.put(("shmpool", worker_id, shm_delta))
            control.put(
                (
                    "stats",
                    worker_id,
                    out_edge.name,
                    out_edge.stats.buffers,
                    out_edge.stats.bytes,
                    dict(out_edge.stats.by_packet),
                )
            )
            control.put(("done", worker_id, epoch, failed))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    return failed


def _run_recoverable(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    filt: Filter,
    ctx: FilterContext,
    beat: Any,
    trace: Any,
    faults: FaultPlan | None,
    progress: CopyProgress,
) -> None:
    if in_edge is not None:
        if progress.eos_preset:
            in_edge.preset_eos(copy_index, progress.eos_preset)
        in_edge.on_eos = lambda tally: control.put(("seos", worker_id, tally))

    def crash(_fault: FaultSpec) -> None:
        # fail-stop: flush the feeders so committed packets/acks survive,
        # then die with no error report and no 'done' — the supervisor
        # must notice through the process sentinel alone.  The idle pool
        # segments hold no protocol state, so unlinking them here costs
        # the fault model nothing and keeps the resource tracker quiet.
        pool_teardown()
        out_edge.flush_producer()
        try:
            control.close()
            control.join_thread()
        except Exception:  # pragma: no cover - control pipe gone
            pass
        os._exit(1)

    injector = make_injector(
        faults, spec.name, copy_index, progress.attempt, crash=crash
    )
    run_recoverable_copy(
        filt,
        ctx,
        spec,
        copy_index,
        in_edge,
        out_edge,
        progress=progress,
        sink=ControlRecoverySink(control, worker_id),
        trace=trace,
        heartbeat=beat,
        injector=injector,
    )
