"""Worker-process entry point: one process per filter copy.

Runs the unit-of-work protocol shared with the threaded engine
(:func:`~repro.datacutter.runtime.run_filter_copy` — ``init``, then either
``generate`` (source copies split packets round-robin) or a
``get``/``process`` loop until end-of-stream, then ``finalize``) and
reports to the supervisor over the control queue:

* ``("error", label, traceback_text, worker_id)`` when a filter callback
  raises;
* ``("trace", worker_id, spans, queue_samples, blocked)`` with the
  worker-side event buffer when tracing is enabled — spans and queue
  gauges are recorded into a process-local
  :class:`~repro.datacutter.obs.trace.Trace` (attached to this worker's
  private post-fork copies of its edges) and shipped wholesale on exit,
  so process-engine traces are as complete as threaded ones;
* ``("stats", worker_id, stream, buffers, bytes, by_packet)`` with the
  producer-side accounting of its output edge;
* ``("done", worker_id, failed)`` as the final message before exiting.

A worker that is killed sends nothing — the supervisor detects that
through the process sentinel and raises on the caller's side.  Each worker
also stamps a heartbeat slot (monotonic seconds) before every packet so
the supervisor's timeout diagnostics can name the slowest/stalled filter.

With recovery enabled (a :class:`~repro.datacutter.recovery.replay.CopyProgress`
is passed), the worker runs
:func:`~repro.datacutter.recovery.replay.run_recoverable_copy` instead and
additionally streams per-packet progress for the supervisor's restart
bookkeeping:

* ``("inflight", worker_id, seq, buffer)`` — delivered, not yet done;
* ``("ack", worker_id, seq, state_blob, restorable)`` — packet retired,
  carrying the pickled post-packet checkpoint (atomically: a packet is
  either inside the checkpoint or in the supervisor's replay set);
* ``("genack", worker_id, packet)`` — a source copy flushed an owned
  packet (restart skips it during regeneration);
* ``("seos", worker_id, tally)`` / ``("eos", worker_id)`` — input-stream
  sentinels consumed so far / input fully closed.

Under recovery a *failed* worker does not close its output edge — the
respawned incarnation keeps producing on the same logical stream, and
only the final successful attempt (or supervisor teardown) closes it.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from typing import Any

from ..filters import Filter, FilterContext, FilterSpec
from ..obs.trace import Trace
from ..recovery.checkpoint import CheckpointError, freeze_state
from ..recovery.faults import FaultPlan, FaultSpec, make_injector
from ..recovery.replay import CopyProgress, run_recoverable_copy
from ..runtime import run_filter_copy
from .channels import ProcessEdge
from .transport import pool_teardown


class ControlRecoverySink:
    """Recovery bookkeeping shipped to the supervisor as control messages."""

    def __init__(self, control: Any, worker_id: int) -> None:
        self._control = control
        self._wid = worker_id

    def on_inflight(self, seq: int, buf: Any) -> None:
        self._control.put(("inflight", self._wid, seq, buf))

    def on_ack(self, seq: int, state: dict | None) -> None:
        try:
            blob, restorable = freeze_state(state), True
        except CheckpointError:
            # the copy keeps running; it just cannot be resumed from a
            # checkpoint — the supervisor fails fast if it later dies
            blob, restorable = None, False
        self._control.put(("ack", self._wid, seq, blob, restorable))

    def on_gen_ack(self, packet: int) -> None:
        self._control.put(("genack", self._wid, packet))

    def on_eos(self) -> None:
        self._control.put(("eos", self._wid))


def worker_main(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    heartbeats: Any,
    trace_enabled: bool = False,
    faults: FaultPlan | None = None,
    progress: CopyProgress | None = None,
) -> None:
    label = f"{spec.name}#{copy_index}"
    recovery = progress is not None

    def beat() -> None:
        heartbeats[worker_id] = time.monotonic()

    trace = Trace() if trace_enabled else None
    if trace is not None:
        # these edge objects are this process's private post-fork copies:
        # attaching the local buffer cannot race with other workers
        if in_edge is not None:
            in_edge.trace = trace
        out_edge.trace = trace

    ctx = FilterContext(
        name=spec.name,
        copy_index=copy_index,
        n_copies=spec.width,
        emit=out_edge.put,
        params=spec.params,
    )
    filt: Filter = spec.make()
    failed = False
    beat()
    try:
        if recovery:
            _run_recoverable(
                worker_id, spec, copy_index, in_edge, out_edge, control,
                filt, ctx, beat, trace, faults, progress,
            )
        else:
            run_filter_copy(
                filt,
                ctx,
                spec,
                copy_index,
                in_edge,
                out_edge,
                trace=trace,
                heartbeat=beat,
            )
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        failed = True
        try:
            control.put(("error", label, traceback.format_exc(), worker_id))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    finally:
        if not (failed and recovery):
            # under recovery a failed attempt must NOT close: a restarted
            # incarnation keeps producing on this logical stream, and a
            # premature sentinel would end it for every consumer
            try:
                out_edge.close_producer()
            except Exception:  # pragma: no cover - queue torn down under us
                pass
        # the worker is exiting: unlink its pooled segments and report the
        # reuse counters (teardown is fork-guard safe — only this process's
        # own pool entries are touched)
        shm_stats = pool_teardown()
        try:
            if trace is not None:
                control.put(
                    (
                        "trace",
                        worker_id,
                        trace.spans,
                        trace.queue_samples,
                        trace.blocked,
                    )
                )
            if any(shm_stats.values()):
                control.put(("shmpool", worker_id, shm_stats))
            control.put(
                (
                    "stats",
                    worker_id,
                    out_edge.name,
                    out_edge.stats.buffers,
                    out_edge.stats.bytes,
                    dict(out_edge.stats.by_packet),
                )
            )
            control.put(("done", worker_id, failed))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    if failed:
        sys.exit(1)


def _run_recoverable(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    filt: Filter,
    ctx: FilterContext,
    beat: Any,
    trace: Any,
    faults: FaultPlan | None,
    progress: CopyProgress,
) -> None:
    if in_edge is not None:
        if progress.eos_preset:
            in_edge.preset_eos(copy_index, progress.eos_preset)
        in_edge.on_eos = lambda tally: control.put(("seos", worker_id, tally))

    def crash(_fault: FaultSpec) -> None:
        # fail-stop: flush the feeders so committed packets/acks survive,
        # then die with no error report and no 'done' — the supervisor
        # must notice through the process sentinel alone.  The idle pool
        # segments hold no protocol state, so unlinking them here costs
        # the fault model nothing and keeps the resource tracker quiet.
        pool_teardown()
        out_edge.flush_producer()
        try:
            control.close()
            control.join_thread()
        except Exception:  # pragma: no cover - control pipe gone
            pass
        os._exit(1)

    injector = make_injector(
        faults, spec.name, copy_index, progress.attempt, crash=crash
    )
    run_recoverable_copy(
        filt,
        ctx,
        spec,
        copy_index,
        in_edge,
        out_edge,
        progress=progress,
        sink=ControlRecoverySink(control, worker_id),
        trace=trace,
        heartbeat=beat,
        injector=injector,
    )
