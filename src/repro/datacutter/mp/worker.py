"""Worker-process entry point: one process per filter copy.

Runs the same unit-of-work protocol as the threaded engine's
``ThreadedPipeline._run_copy`` — ``init``, then either ``generate`` (source
copies split packets round-robin) or a ``get``/``process`` loop until
end-of-stream, then ``finalize`` — and reports to the supervisor over the
control queue:

* ``("error", label, traceback_text)`` when a filter callback raises;
* ``("stats", worker_id, stream, buffers, bytes, by_packet)`` with the
  producer-side accounting of its output edge;
* ``("done", worker_id, failed)`` as the final message before exiting.

A worker that is killed sends nothing — the supervisor detects that
through the process sentinel and raises on the caller's side.  Each worker
also stamps a heartbeat slot (monotonic seconds) before every packet so
the supervisor's timeout diagnostics can name the slowest/stalled filter.
"""

from __future__ import annotations

import sys
import time
import traceback
from typing import Any

from ..buffers import Buffer
from ..filters import Filter, FilterContext, FilterSpec, SourceFilter
from .channels import ProcessEdge


def worker_main(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    heartbeats: Any,
) -> None:
    label = f"{spec.name}#{copy_index}"

    def beat() -> None:
        heartbeats[worker_id] = time.monotonic()

    ctx = FilterContext(
        name=spec.name,
        copy_index=copy_index,
        n_copies=spec.width,
        emit=out_edge.put,
        params=spec.params,
    )
    filt: Filter = spec.make()
    failed = False
    beat()
    try:
        filt.init(ctx)
        if in_edge is None:
            if not isinstance(filt, SourceFilter):
                raise TypeError(f"first filter '{spec.name}' must be a SourceFilter")
            for packet, payload in enumerate(filt.generate(ctx)):
                beat()
                if packet % spec.width == copy_index:
                    if isinstance(payload, Buffer):
                        out_edge.put(payload)
                    else:
                        ctx.write(payload, packet)
        else:
            while True:
                buf = in_edge.get(copy_index)
                beat()
                if buf is None:
                    break
                filt.process(buf, ctx)
        filt.finalize(ctx)
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        failed = True
        try:
            control.put(("error", label, traceback.format_exc()))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    finally:
        try:
            out_edge.close_producer()
        except Exception:  # pragma: no cover - queue torn down under us
            pass
        try:
            control.put(
                (
                    "stats",
                    worker_id,
                    out_edge.name,
                    out_edge.stats.buffers,
                    out_edge.stats.bytes,
                    dict(out_edge.stats.by_packet),
                )
            )
            control.put(("done", worker_id, failed))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    if failed:
        sys.exit(1)
