"""Worker-process entry point: one process per filter copy.

Runs the unit-of-work protocol shared with the threaded engine
(:func:`~repro.datacutter.runtime.run_filter_copy` — ``init``, then either
``generate`` (source copies split packets round-robin) or a
``get``/``process`` loop until end-of-stream, then ``finalize``) and
reports to the supervisor over the control queue:

* ``("error", label, traceback_text)`` when a filter callback raises;
* ``("trace", worker_id, spans, queue_samples, blocked)`` with the
  worker-side event buffer when tracing is enabled — spans and queue
  gauges are recorded into a process-local
  :class:`~repro.datacutter.obs.trace.Trace` (attached to this worker's
  private post-fork copies of its edges) and shipped wholesale on exit,
  so process-engine traces are as complete as threaded ones;
* ``("stats", worker_id, stream, buffers, bytes, by_packet)`` with the
  producer-side accounting of its output edge;
* ``("done", worker_id, failed)`` as the final message before exiting.

A worker that is killed sends nothing — the supervisor detects that
through the process sentinel and raises on the caller's side.  Each worker
also stamps a heartbeat slot (monotonic seconds) before every packet so
the supervisor's timeout diagnostics can name the slowest/stalled filter.
"""

from __future__ import annotations

import sys
import time
import traceback
from typing import Any

from ..filters import Filter, FilterContext, FilterSpec
from ..obs.trace import Trace
from ..runtime import run_filter_copy
from .channels import ProcessEdge


def worker_main(
    worker_id: int,
    spec: FilterSpec,
    copy_index: int,
    in_edge: ProcessEdge | None,
    out_edge: ProcessEdge,
    control: Any,
    heartbeats: Any,
    trace_enabled: bool = False,
) -> None:
    label = f"{spec.name}#{copy_index}"

    def beat() -> None:
        heartbeats[worker_id] = time.monotonic()

    trace = Trace() if trace_enabled else None
    if trace is not None:
        # these edge objects are this process's private post-fork copies:
        # attaching the local buffer cannot race with other workers
        if in_edge is not None:
            in_edge.trace = trace
        out_edge.trace = trace

    ctx = FilterContext(
        name=spec.name,
        copy_index=copy_index,
        n_copies=spec.width,
        emit=out_edge.put,
        params=spec.params,
    )
    filt: Filter = spec.make()
    failed = False
    beat()
    try:
        run_filter_copy(
            filt,
            ctx,
            spec,
            copy_index,
            in_edge,
            out_edge,
            trace=trace,
            heartbeat=beat,
        )
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        failed = True
        try:
            control.put(("error", label, traceback.format_exc()))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    finally:
        try:
            out_edge.close_producer()
        except Exception:  # pragma: no cover - queue torn down under us
            pass
        try:
            if trace is not None:
                control.put(
                    (
                        "trace",
                        worker_id,
                        trace.spans,
                        trace.queue_samples,
                        trace.blocked,
                    )
                )
            control.put(
                (
                    "stats",
                    worker_id,
                    out_edge.name,
                    out_edge.stats.buffers,
                    out_edge.stats.bytes,
                    dict(out_edge.stats.by_packet),
                )
            )
            control.put(("done", worker_id, failed))
        except Exception:  # pragma: no cover - control pipe gone
            pass
    if failed:
        sys.exit(1)
