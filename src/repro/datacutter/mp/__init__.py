"""Process-parallel execution engine (shared-memory transport + supervision).

The multiprocess counterpart of the threaded local engine: same
``FilterSpec`` pipelines, same ``RunResult``, same engine-native tracing
(worker-side event buffers merged by the supervisor — see
:mod:`repro.datacutter.obs`), true parallelism.  See
:mod:`repro.datacutter.mp.engine` for the architecture overview.
"""

from .channels import ProcessEdge
from .engine import ProcessPipeline
from .supervisor import Supervisor, WorkerHandle
from .transport import (
    DEFAULT_SHM_MIN_BYTES,
    EndOfStream,
    ShmRef,
    decode_payload,
    encode_payload,
)

__all__ = [
    "DEFAULT_SHM_MIN_BYTES",
    "EndOfStream",
    "ProcessEdge",
    "ProcessPipeline",
    "ShmRef",
    "Supervisor",
    "WorkerHandle",
    "decode_payload",
    "encode_payload",
]
