"""Process-crossing logical streams.

A :class:`ProcessEdge` is the multiprocess analogue of
:class:`~repro.datacutter.streams.LogicalStream`: ``p`` producer copies
feed ``c`` consumer copies through one bounded ``multiprocessing.Queue``
per consumer copy (the bound is the backpressure: a producer that gets
ahead blocks in ``put`` until the consumer drains).  End-of-stream differs
from the threaded engine in one deliberate way: each producer copy
broadcasts its *own* :class:`~repro.datacutter.mp.transport.EndOfStream`
sentinel to every consumer queue, and consumers count sentinels until all
producers have closed.  A single last-closer sentinel (the threaded
protocol) would be unsound here — ``multiprocessing.Queue`` writes go
through per-process feeder threads, so a sentinel sent by producer B can
overtake data still buffered inside producer A; per-producer sentinels
ride each producer's own FIFO and cannot pass its data.

Two fork-related differences from the threaded stream, both documented
behaviour:

* the distribution policy object is *copied* into each producer process by
  ``fork``, so round-robin rotates per producer copy instead of globally —
  load balance is preserved, exact interleaving is not (DataCutter makes
  the same non-guarantee);
* :attr:`stats` accumulate in the producer process; each worker ships its
  totals to the supervisor on exit, which merges them per stream so
  :class:`~repro.datacutter.runtime.RunResult` accounting matches the
  threaded engine's.
"""

from __future__ import annotations

import time
from queue import Empty
from typing import Any

from ..buffers import Buffer, StreamStats
from ..obs.trace import TraceCollector, record_queue_op
from ..streams import DistributionPolicy, RoundRobin
from .transport import (
    DEFAULT_SHM_MIN_BYTES,
    EndOfStream,
    collect_shm_refs,
    decode_payload,
    encode_payload,
    unlink_ref,
)


class ProcessEdge:
    """One logical producer->consumer connection across processes."""

    def __init__(
        self,
        mpctx: Any,
        name: str,
        n_producers: int = 1,
        n_consumers: int = 1,
        capacity: int | None = 32,
        policy: DistributionPolicy | None = None,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
    ) -> None:
        if n_producers < 1 or n_consumers < 1:
            raise ValueError("streams need at least one copy on each side")
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"stream {name}: capacity must be >= 1 or None for unbounded, "
                f"got {capacity} (maxsize 0 would silently disable backpressure)"
            )
        self.name = name
        self.n_producers = n_producers
        self.n_consumers = n_consumers
        self.policy = policy or RoundRobin()
        self.shm_min_bytes = shm_min_bytes
        # capacity None = unbounded (the collector endpoint, which must
        # never exert backpressure on the last stage)
        self._queues = [
            mpctx.Queue(maxsize=0 if capacity is None else capacity)
            for _ in range(n_consumers)
        ]
        self._open = mpctx.Value("i", n_producers)
        #: current work epoch of *this process's* copy of the edge (each
        #: side advances its own copy via :meth:`begin_epoch`)
        self._epoch = 0
        self.stats = StreamStats()
        #: worker-local trace buffer; ``None`` in the parent.  Each forked
        #: worker owns a private copy of this edge object and attaches its
        #: own collector (see worker_main), so gauges recorded here never
        #: race across processes.
        self.trace: TraceCollector | None = None
        # per-consumer sentinel tally; after fork each consumer process
        # owns its copy and only touches its own index
        self._eos_seen = [0] * n_consumers
        #: recovery hook: called with the running tally each time this
        #: consumer swallows a producer sentinel, so the supervisor can
        #: credit already-consumed sentinels to a restarted copy (the
        #: sentinels are gone from the queue for good)
        self.on_eos: Any = None

    def begin_epoch(self, epoch: int, reopen: bool = False) -> None:
        """Enter a new work epoch on this process's copy of the edge.

        Resets the per-epoch consumer state (sentinel tallies, producer
        stats) so nothing from the previous unit of work bleeds into the
        next one.  Workers call this with their private post-fork copies
        when an epoch order arrives; the parent calls it with
        ``reopen=True`` on its copies *before* dispatching the orders,
        which also restores the shared producer-open count — safe because
        epochs only advance after every worker handed in ``done`` for the
        previous one, so no producer can be mid-close."""
        self._epoch = epoch
        self._eos_seen = [0] * self.n_consumers
        self.stats = StreamStats()
        if reopen:
            with self._open.get_lock():
                self._open.value = self.n_producers

    def _depth(self, q: Any) -> int:
        try:
            return q.qsize()
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            return -1

    # -- producer side (called inside worker processes) ---------------------
    def put(self, buf: Buffer) -> None:
        self.stats.record(buf)
        target = self.policy.choose(buf, self.n_consumers)
        trace = self.trace
        if target == -1:
            # broadcast control traffic: one independently pickled copy per
            # consumer (shared memory is single-consumer by design — the
            # receiver unlinks the segment); each fan-out put is its own
            # queue op so blocked time on any full copy is accounted
            for q in self._queues:
                copy = Buffer(buf.payload, buf.packet, buf.kind, buf.origin)
                if trace is None:
                    q.put(copy)
                    continue
                t0 = time.perf_counter()
                q.put(copy)
                record_queue_op(
                    trace, self.name, "put", t0, time.perf_counter(), self._depth(q)
                )
            return
        payload, _names = encode_payload(buf.payload, self.shm_min_bytes)
        q = self._queues[target]
        if trace is None:
            q.put(Buffer(payload, buf.packet, buf.kind, buf.origin))
            return
        t0 = time.perf_counter()
        q.put(Buffer(payload, buf.packet, buf.kind, buf.origin))
        record_queue_op(
            trace, self.name, "put", t0, time.perf_counter(), self._depth(q)
        )

    def close_producer(self) -> None:
        with self._open.get_lock():
            self._open.value -= 1
            if self._open.value < 0:
                raise RuntimeError(f"stream {self.name}: too many closes")
        # every producer broadcasts its own sentinel (see module docstring:
        # it must ride this producer's FIFO, behind this producer's data),
        # tagged with the sender's epoch so a resident consumer can ignore
        # stragglers from a previous unit of work
        for q in self._queues:
            q.put(EndOfStream(self._epoch))

    # -- consumer side -------------------------------------------------------
    def get(self, consumer_index: int, timeout: float | None = None) -> Buffer | None:
        """Next buffer for a consumer copy; ``None`` means end-of-stream
        (all producer copies closed *and* their data fully drained)."""
        trace = self.trace
        q = self._queues[consumer_index]
        while True:
            if trace is None:
                item = q.get(timeout=timeout)
            else:
                t0 = time.perf_counter()
                item = q.get(timeout=timeout)
                record_queue_op(
                    trace,
                    self.name,
                    "get",
                    t0,
                    time.perf_counter(),
                    self._depth(q),
                )
            if isinstance(item, EndOfStream):
                if getattr(item, "epoch", 0) != self._epoch:
                    # straggler sentinel from a previous unit of work on a
                    # resident pool: it already satisfied (or failed) its
                    # own epoch — it must not count against this one
                    continue
                self._eos_seen[consumer_index] += 1
                if self.on_eos is not None:
                    self.on_eos(self._eos_seen[consumer_index])
                if self._eos_seen[consumer_index] >= self.n_producers:
                    return None
                continue
            item.payload = decode_payload(item.payload)
            return item

    def readers(self) -> list[Any]:
        """The consumer-side pipe connections, for ``connection.wait`` —
        lets the supervisor sleep until output actually arrives instead
        of polling at a fixed interval (resident workers never trip the
        process-sentinel wait, so without this every epoch would pay
        multiples of the poll interval in pure latency)."""
        return [q._reader for q in self._queues]

    def preset_eos(self, consumer_index: int, count: int) -> None:
        """Credit sentinels a previous (dead) incarnation of this consumer
        copy already consumed — called by a restarted worker before its
        first :meth:`get`, so it does not wait for sentinels that will
        never arrive again."""
        self._eos_seen[consumer_index] = count

    def flush_producer(self) -> None:
        """Flush this process's feeder threads so everything already put
        reaches the pipes, then close the producer ends.  Used by the
        injected-crash path: the fault model is fail-stop *after* the
        transport layer has flushed (an OS crash tears the feeder buffer
        too, but that loss window is out of scope — see
        :mod:`repro.datacutter.recovery.replay`)."""
        for q in self._queues:
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover - queue already torn down
                pass

    def poll(self, consumer_index: int = 0) -> Buffer | EndOfStream:
        """Non-blocking variant used by the supervisor's collector drain.
        Returns an :class:`EndOfStream` only once the whole stream is
        closed; raises :class:`queue.Empty` when nothing is pending."""
        while True:
            item = self._queues[consumer_index].get_nowait()
            if isinstance(item, EndOfStream):
                if getattr(item, "epoch", 0) != self._epoch:
                    continue  # straggler from a previous epoch (see get())
                self._eos_seen[consumer_index] += 1
                if self._eos_seen[consumer_index] >= self.n_producers:
                    return item
                continue
            item.payload = decode_payload(item.payload)
            return item

    # -- teardown ------------------------------------------------------------
    def reclaim(self) -> int:
        """Drain undelivered buffers and unlink their shared-memory
        segments (failed-run cleanup).  Returns segments reclaimed."""
        reclaimed = 0
        for q in self._queues:
            while True:
                try:
                    item = q.get_nowait()
                except (Empty, OSError, ValueError, EOFError):
                    break
                if isinstance(item, Buffer):
                    for ref in collect_shm_refs(item.payload):
                        unlink_ref(ref)
                        reclaimed += 1
        return reclaimed
