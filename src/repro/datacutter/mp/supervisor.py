"""Pipeline supervision: liveness, failure detection, recovery, teardown.

The supervisor runs in the parent process alongside the workers.  Its
loop interleaves five duties until the run completes or fails:

1. drain the collector edge (the run's outputs must be consumed
   continuously — the collector is unbounded, but leaving results in the
   pipe would hold worker feeder threads alive);
2. drain the control queue: error reports, per-stream statistics,
   recovery progress (in-flight packets, checkpointed acks), and
   ``done`` handshakes;
3. watch process sentinels: a worker that exits without having sent
   ``done`` was killed or crashed hard (segfault, ``os._exit``) — after a
   short grace period for in-flight messages it is declared dead;
4. **recover**: with a retry budget configured, a failed or dead worker
   is respawned from its last acknowledged checkpoint plus the replay
   set of delivered-but-unacknowledged packets (see
   :mod:`repro.datacutter.recovery`); a ``restart`` span lands in the
   trace.  Without budget (or with the copy non-restorable) the run
   fails, naming the filter copy and its attempt count;
5. enforce the optional wall-clock ``timeout``, plus a post-end-of-stream
   completion deadline: once the collector has seen full end-of-stream,
   every worker must hand in ``done`` within ``post_eos_timeout`` seconds
   of the last progress — a live worker that never reports cannot spin
   the loop forever, it fails the run with a stalest-heartbeat diagnostic.

On failure the supervisor terminates every surviving worker, reclaims
undelivered shared-memory segments from all edges, and raises
:class:`~repro.datacutter.runtime.PipelineError` carrying the failing
filter's traceback (or kill diagnosis) — no hang, no orphan processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection
from queue import Empty
from typing import Any, Callable

from ..buffers import Buffer, StreamStats
from ..obs.trace import Span, TraceCollector
from ..recovery.faults import FaultPlan
from ..recovery.policy import RetryPolicy
from ..recovery.replay import CopyProgress
from ..runtime import PipelineError
from .channels import ProcessEdge
from .transport import EndOfStream


@dataclass(slots=True)
class WorkerHandle:
    """One spawned filter copy as the supervisor tracks it."""

    process: Any
    worker_id: int
    label: str  # "filtername#copy"


@dataclass(slots=True)
class _WorkerRecovery:
    """Parent-side recovery bookkeeping for one logical filter copy."""

    #: attempts started so far (the initial spawn counts as 1)
    attempts: int = 1
    #: last acknowledged checkpoint (pickled bytes), None when stateless
    checkpoint: bytes | None = None
    #: False once the worker reported unpicklable state: no restart possible
    restorable: bool = True
    #: delivered-but-unacknowledged packets, keyed by delivery sequence
    inflight: dict[int, Buffer] = field(default_factory=dict)
    #: next delivery sequence number for a restarted incarnation
    next_seq: int = 0
    #: input-stream sentinels the copy has consumed (gone from the queue)
    eos_count: int = 0
    #: the copy's input stream fully closed
    eos_seen: bool = False
    #: source copies: owned packet indices already flushed downstream
    emitted: set[int] = field(default_factory=set)
    #: traceback text from the latest ("error", ...) report, if any
    pending_error: str | None = None


class Supervisor:
    def __init__(
        self,
        workers: list[WorkerHandle],
        control: Any,
        collector: ProcessEdge,
        edges: list[ProcessEdge],
        heartbeats: Any,
        timeout: float | None = None,
        death_grace: float = 2.0,
        trace: TraceCollector | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        respawn: Callable[[int, CopyProgress], Any] | None = None,
        post_eos_timeout: float | None = 60.0,
    ) -> None:
        self.workers = workers
        self.control = control
        self.collector = collector
        self.edges = edges
        self.heartbeats = heartbeats
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace = trace
        self.retry = retry
        self.respawn = respawn
        self.post_eos_timeout = post_eos_timeout
        #: current work epoch; a resident pool advances it via begin_epoch
        #: so 'done' handshakes from a previous unit of work are ignored
        self.epoch = 0
        #: True while the workers outlive each unit of work: after a clean
        #: epoch they park on their order channels instead of exiting, so
        #: the end-of-run join/exit check must not apply
        self.resident = False
        #: optional external abort hook checked every loop iteration; a
        #: non-None return fails the run with that message (the engine
        #: wires a close() racing an in-flight run through this)
        self.abort: Callable[[], str | None] | None = None
        self.errors: list[str] = []
        self.stats: dict[str, StreamStats] = {}
        #: shared-memory pool counters summed over all worker processes
        self.shm_pool: dict[str, int] = {}
        self.restarts: int = 0
        self._done: set[int] = set()
        self._by_id = {w.worker_id: w for w in workers}
        self._pending_dead: dict[int, float] = {}
        # recovery is active when a retry policy or fault plan is present
        # AND the engine provided a respawn hook; the policy defaults to a
        # single attempt so faults-without-retry still fail cleanly
        self._recovering = respawn is not None and (
            retry is not None or faults is not None
        )
        self._policy = retry or RetryPolicy(max_attempts=1)
        self._recovery: dict[int, _WorkerRecovery] = (
            {w.worker_id: _WorkerRecovery() for w in workers}
            if self._recovering
            else {}
        )

    # ------------------------------------------------------------------ api
    def begin_epoch(self, epoch: int) -> None:
        """Reset the per-epoch bookkeeping for the next unit of work.

        The supervisor object itself stays up for the life of a resident
        worker pool; everything scoped to one run — errors, done
        handshakes, stream statistics, shm-pool deltas, pending-death
        grace timers, recovery progress — restarts here.  Heartbeats are
        stamped to *now* because resident workers do not beat while idle
        between epochs, and a stale stamp would trip timeout diagnostics
        instantly."""
        self.epoch = epoch
        self.errors = []
        self.stats = {}
        self.shm_pool = {}
        self._done = set()
        self._pending_dead = {}
        if self._recovering:
            self._recovery = {
                w.worker_id: _WorkerRecovery() for w in self.workers
            }
        now = time.monotonic()
        for w in self.workers:
            self.heartbeats[w.worker_id] = now

    def supervise(self) -> list[Buffer]:
        """Run to completion; returns outputs or raises PipelineError."""
        outputs: list[Buffer] = []
        eos_seen = False
        deadline = time.monotonic() + self.timeout if self.timeout else None
        post_eos_deadline: float | None = None
        done_at_deadline = -1

        while True:
            if self.abort is not None:
                reason = self.abort()
                if reason is not None:
                    self.errors.append(reason)
                    break
            self._drain_control()
            eos_seen = self._drain_collector(outputs) or eos_seen
            if self.errors:
                break
            now = time.monotonic()
            for w in self.workers:
                if w.worker_id in self._done or w.worker_id in self._pending_dead:
                    continue
                if not w.process.is_alive():
                    self._pending_dead[w.worker_id] = now
            for wid, t_dead in list(self._pending_dead.items()):
                if wid in self._done:
                    continue
                if now - t_dead >= self.death_grace:
                    w = self._by_id[wid]
                    diagnosis = (
                        f"filter {w.label} died without reporting "
                        f"(exit code {w.process.exitcode}); "
                        "the worker process was killed or crashed"
                    )
                    if self._recovering:
                        self._maybe_restart(wid, diagnosis)
                    else:
                        self.errors.append(diagnosis)
            if self.errors:
                break
            if eos_seen and len(self._done) == len(self.workers):
                break
            if deadline is not None and now > deadline:
                self.errors.append(self._timeout_message())
                break
            # post-EOS completion deadline: the run's outputs are all in,
            # so only 'done' handshakes are outstanding — a worker that
            # never sends one must not spin this loop forever.  The clock
            # restarts whenever another worker reports (progress).
            if eos_seen and self.post_eos_timeout is not None:
                if post_eos_deadline is None or len(self._done) != done_at_deadline:
                    done_at_deadline = len(self._done)
                    post_eos_deadline = now + self.post_eos_timeout
                elif now > post_eos_deadline:
                    self.errors.append(self._post_eos_message())
                    break
            # sleep until something actually happens: a worker dying (its
            # sentinel), a control message (done/error/stats land here —
            # the latency-critical wake on a resident pool, whose workers
            # never exit), or collector output
            waits = [
                w.process.sentinel for w in self.workers if w.process.is_alive()
            ]
            try:
                waits.append(self.control._reader)
            except AttributeError:  # pragma: no cover - non-CPython Queue
                pass
            waits.extend(self.collector.readers())
            if waits:
                connection.wait(waits, timeout=0.02)
            else:
                time.sleep(0.005)

        if self.errors:
            self._teardown()
            raise PipelineError("\n".join(self.errors))

        if not self.resident:
            for w in self.workers:
                w.process.join(timeout=10)
            stuck = [w.label for w in self.workers if w.process.is_alive()]
            if stuck:  # pragma: no cover - 'done' arrived, exit is imminent
                self._teardown()
                raise PipelineError(
                    f"workers did not exit after finishing: {', '.join(stuck)}"
                )
        return outputs

    # ------------------------------------------------------------- internals
    def _drain_control(self) -> None:
        while True:
            try:
                msg = self.control.get_nowait()
            except Empty:
                return
            except (OSError, ValueError, EOFError):  # pragma: no cover
                return
            kind = msg[0]
            if kind == "error":
                _, label, tb, wid = msg
                text = f"filter {label} failed:\n{tb}"
                if self._recovering:
                    # held back: the matching ("done", wid, True) decides
                    # between restart and final failure
                    self._recovery[wid].pending_error = text
                else:
                    self.errors.append(text)
            elif kind == "stats":
                _, _wid, stream, buffers, nbytes, by_packet = msg
                agg = self.stats.setdefault(stream, StreamStats())
                agg.buffers += buffers
                agg.bytes += nbytes
                for packet, size in by_packet.items():
                    agg.by_packet[packet] = agg.by_packet.get(packet, 0) + size
            elif kind == "shmpool":
                _, _wid, pool_stats = msg
                for key, value in pool_stats.items():
                    self.shm_pool[key] = self.shm_pool.get(key, 0) + value
            elif kind == "trace":
                # worker-side event buffer: replay into the caller's
                # collector so process traces merge like threaded ones
                _, _wid, spans, samples, blocked = msg
                if self.trace is not None:
                    for span in spans:
                        self.trace.record_span(span)
                    for sample in samples:
                        self.trace.record_queue(sample)
                    for blk in blocked:
                        self.trace.record_blocked(blk)
            elif kind == "done":
                _, wid, epoch, failed = msg
                if epoch != self.epoch:
                    # straggler handshake from a previous unit of work on
                    # a resident pool; its epoch already settled
                    continue
                if failed and self._recovering:
                    rec = self._recovery[wid]
                    reason = rec.pending_error or (
                        f"filter {self._by_id[wid].label} failed"
                    )
                    self._maybe_restart(wid, reason)
                else:
                    self._done.add(wid)
            elif kind == "inflight":
                _, wid, seq, buf = msg
                rec = self._recovery[wid]
                rec.inflight[seq] = buf
                rec.next_seq = max(rec.next_seq, seq + 1)
            elif kind == "ack":
                _, wid, seq, blob, restorable = msg
                rec = self._recovery[wid]
                rec.checkpoint = blob
                rec.restorable = restorable
                rec.inflight.pop(seq, None)
                rec.next_seq = max(rec.next_seq, seq + 1)
            elif kind == "genack":
                _, wid, packet = msg
                self._recovery[wid].emitted.add(packet)
            elif kind == "seos":
                _, wid, tally = msg
                rec = self._recovery[wid]
                rec.eos_count = max(rec.eos_count, tally)
            elif kind == "eos":
                _, wid = msg
                self._recovery[wid].eos_seen = True

    def _maybe_restart(self, wid: int, reason: str) -> bool:
        """Respawn a failed copy within budget; record the final error
        otherwise.  Returns True when a restart was launched."""
        rec = self._recovery[wid]
        w = self._by_id[wid]
        name = w.label.rsplit("#", 1)[0]
        budget = self._policy.attempts_for(name)
        if rec.attempts >= budget:
            self.errors.append(
                f"filter {w.label} failed after {rec.attempts} attempt(s) "
                f"(retry budget {budget}):\n{reason}"
            )
            return False
        if not rec.restorable:
            self.errors.append(
                f"filter {w.label} cannot be restarted: its state was not "
                f"picklable at the last checkpoint; original failure:\n{reason}"
            )
            return False
        t0 = time.perf_counter()
        # reap the dead incarnation before its replacement starts
        w.process.join(timeout=5)
        time.sleep(self._policy.backoff_for(rec.attempts))
        progress = CopyProgress(
            attempt=rec.attempts,
            checkpoint=rec.checkpoint,
            replay=sorted(rec.inflight.items()),
            seq_start=rec.next_seq,
            eos_preset=rec.eos_count,
            emitted=set(rec.emitted),
            eos_seen=rec.eos_seen,
        )
        rec.attempts += 1
        rec.pending_error = None
        self.restarts += 1
        w.process = self.respawn(wid, progress)
        self.heartbeats[wid] = time.monotonic()
        self._pending_dead.pop(wid, None)
        if self.trace is not None:
            copy = int(w.label.rsplit("#", 1)[1])
            self.trace.record_span(
                Span(name, copy, "restart", None, t0, time.perf_counter())
            )
        return True

    def _drain_collector(self, outputs: list[Buffer]) -> bool:
        eos = False
        while True:
            try:
                item = self.collector.poll(0)
            except Empty:
                return eos
            except (OSError, ValueError, EOFError):  # pragma: no cover
                return eos
            if isinstance(item, EndOfStream):
                eos = True
            else:
                outputs.append(item)

    def _stalest_suffix(self, unfinished: list[WorkerHandle]) -> str:
        now = time.monotonic()
        stalest = max(
            unfinished,
            key=lambda w: now - self.heartbeats[w.worker_id],
            default=None,
        )
        if stalest is None:
            return ""
        age = now - self.heartbeats[stalest.worker_id]
        return f"; stalest heartbeat: {stalest.label} ({age:.1f}s ago)"

    def _timeout_message(self) -> str:
        unfinished = [w for w in self.workers if w.worker_id not in self._done]
        names = ", ".join(w.label for w in unfinished) or "<none>"
        return (
            f"pipeline timed out after {self.timeout:.1f}s; "
            f"unfinished: {names}" + self._stalest_suffix(unfinished)
        )

    def _post_eos_message(self) -> str:
        unfinished = [w for w in self.workers if w.worker_id not in self._done]
        names = ", ".join(w.label for w in unfinished) or "<none>"
        return (
            "pipeline output is complete (end-of-stream reached) but "
            f"{len(unfinished)} worker(s) never reported done within "
            f"{self.post_eos_timeout:.1f}s: {names}"
            + self._stalest_suffix(unfinished)
        )

    def _teardown(self) -> None:
        """Terminate survivors and reclaim in-flight shared memory."""
        alive = [w for w in self.workers if w.process is not None]
        for w in alive:
            if w.process.is_alive():
                w.process.terminate()
        for w in alive:
            w.process.join(timeout=2)
        for w in alive:
            if w.process.is_alive():  # pragma: no cover - SIGTERM ignored
                w.process.kill()
                w.process.join(timeout=2)
        for edge in self.edges:
            edge.reclaim()
        self._drain_control()
