"""Pipeline supervision: liveness, failure detection, clean teardown.

The supervisor runs in the parent process alongside the workers.  Its
loop interleaves four duties until the run completes or fails:

1. drain the collector edge (the run's outputs must be consumed
   continuously — the collector is unbounded, but leaving results in the
   pipe would hold worker feeder threads alive);
2. drain the control queue: error reports, per-stream statistics, and
   ``done`` handshakes;
3. watch process sentinels: a worker that exits without having sent
   ``done`` was killed or crashed hard (segfault, ``os._exit``) — after a
   short grace period for in-flight messages it is declared dead and the
   run fails, naming the filter copy;
4. enforce the optional wall-clock ``timeout``, using the workers'
   heartbeat stamps to name the stalest filter in the error.

On failure the supervisor terminates every surviving worker, reclaims
undelivered shared-memory segments from all edges, and raises
:class:`~repro.datacutter.runtime.PipelineError` carrying the failing
filter's traceback (or kill diagnosis) — no hang, no orphan processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import connection
from queue import Empty
from typing import Any

from ..buffers import Buffer, StreamStats
from ..obs.trace import TraceCollector
from ..runtime import PipelineError
from .channels import ProcessEdge
from .transport import EndOfStream


@dataclass(slots=True)
class WorkerHandle:
    """One spawned filter copy as the supervisor tracks it."""

    process: Any
    worker_id: int
    label: str  # "filtername#copy"


class Supervisor:
    def __init__(
        self,
        workers: list[WorkerHandle],
        control: Any,
        collector: ProcessEdge,
        edges: list[ProcessEdge],
        heartbeats: Any,
        timeout: float | None = None,
        death_grace: float = 2.0,
        trace: TraceCollector | None = None,
    ) -> None:
        self.workers = workers
        self.control = control
        self.collector = collector
        self.edges = edges
        self.heartbeats = heartbeats
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace = trace
        self.errors: list[str] = []
        self.stats: dict[str, StreamStats] = {}
        self._done: set[int] = set()
        self._by_id = {w.worker_id: w for w in workers}

    # ------------------------------------------------------------------ api
    def supervise(self) -> list[Buffer]:
        """Run to completion; returns outputs or raises PipelineError."""
        outputs: list[Buffer] = []
        eos_seen = False
        pending_dead: dict[int, float] = {}
        deadline = time.monotonic() + self.timeout if self.timeout else None

        while True:
            self._drain_control()
            eos_seen = self._drain_collector(outputs) or eos_seen
            if self.errors:
                break
            now = time.monotonic()
            for w in self.workers:
                if w.worker_id in self._done or w.worker_id in pending_dead:
                    continue
                if not w.process.is_alive():
                    pending_dead[w.worker_id] = now
            for wid, t_dead in pending_dead.items():
                if wid in self._done:
                    continue
                if now - t_dead >= self.death_grace:
                    w = self._by_id[wid]
                    self.errors.append(
                        f"filter {w.label} died without reporting "
                        f"(exit code {w.process.exitcode}); "
                        "the worker process was killed or crashed"
                    )
            if self.errors:
                break
            if eos_seen and len(self._done) == len(self.workers):
                break
            if deadline is not None and now > deadline:
                self.errors.append(self._timeout_message())
                break
            sentinels = [
                w.process.sentinel for w in self.workers if w.process.is_alive()
            ]
            if sentinels:
                connection.wait(sentinels, timeout=0.02)
            else:
                time.sleep(0.005)

        if self.errors:
            self._teardown()
            raise PipelineError("\n".join(self.errors))

        for w in self.workers:
            w.process.join(timeout=10)
        stuck = [w.label for w in self.workers if w.process.is_alive()]
        if stuck:  # pragma: no cover - 'done' arrived, so exit is imminent
            self._teardown()
            raise PipelineError(
                f"workers did not exit after finishing: {', '.join(stuck)}"
            )
        return outputs

    # ------------------------------------------------------------- internals
    def _drain_control(self) -> None:
        while True:
            try:
                msg = self.control.get_nowait()
            except Empty:
                return
            except (OSError, ValueError, EOFError):  # pragma: no cover
                return
            kind = msg[0]
            if kind == "error":
                _, label, tb = msg
                self.errors.append(f"filter {label} failed:\n{tb}")
            elif kind == "stats":
                _, _wid, stream, buffers, nbytes, by_packet = msg
                agg = self.stats.setdefault(stream, StreamStats())
                agg.buffers += buffers
                agg.bytes += nbytes
                for packet, size in by_packet.items():
                    agg.by_packet[packet] = agg.by_packet.get(packet, 0) + size
            elif kind == "trace":
                # worker-side event buffer: replay into the caller's
                # collector so process traces merge like threaded ones
                _, _wid, spans, samples, blocked = msg
                if self.trace is not None:
                    for span in spans:
                        self.trace.record_span(span)
                    for sample in samples:
                        self.trace.record_queue(sample)
                    for blk in blocked:
                        self.trace.record_blocked(blk)
            elif kind == "done":
                _, wid, _failed = msg
                self._done.add(wid)

    def _drain_collector(self, outputs: list[Buffer]) -> bool:
        eos = False
        while True:
            try:
                item = self.collector.poll(0)
            except Empty:
                return eos
            except (OSError, ValueError, EOFError):  # pragma: no cover
                return eos
            if isinstance(item, EndOfStream):
                eos = True
            else:
                outputs.append(item)

    def _timeout_message(self) -> str:
        now = time.monotonic()
        unfinished = [w for w in self.workers if w.worker_id not in self._done]
        stalest = max(
            unfinished,
            key=lambda w: now - self.heartbeats[w.worker_id],
            default=None,
        )
        names = ", ".join(w.label for w in unfinished) or "<none>"
        msg = f"pipeline timed out after {self.timeout:.1f}s; unfinished: {names}"
        if stalest is not None:
            age = now - self.heartbeats[stalest.worker_id]
            msg += f"; stalest heartbeat: {stalest.label} ({age:.1f}s ago)"
        return msg

    def _teardown(self) -> None:
        """Terminate survivors and reclaim in-flight shared memory."""
        for w in self.workers:
            if w.process.is_alive():
                w.process.terminate()
        for w in self.workers:
            w.process.join(timeout=2)
        for w in self.workers:
            if w.process.is_alive():  # pragma: no cover - SIGTERM ignored
                w.process.kill()
                w.process.join(timeout=2)
        for edge in self.edges:
            edge.reclaim()
        self._drain_control()
