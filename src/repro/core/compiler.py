"""The compilation driver: source text in, placed filter pipeline out.

Phases (paper §4-§5)::

    parse -> typecheck -> boundary selection (+ loop fission)
          -> Gen/Cons + ReqComm (one pass)        [§4.2, Fig 2]
          -> op counts + volumes under a profile   [§4.3]
          -> DP decomposition                      [§4.4, Fig 3]
          -> per-unit filter code generation       [§5]

:func:`compile_source` runs the full stack; :class:`CompilationResult`
exposes every intermediate product so tests, benchmarks, and the
experiment harness can interrogate any stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - the runtime dependency points the
    # other way (serve imports the compiler); this is typing only
    from ..serve.plancache import PlanCacheProtocol

from ..analysis.boundaries import Boundary, FilterChain, build_filter_chain
from ..analysis.gencons import GenConsAnalyzer
from ..analysis.opcount import OpCounter
from ..analysis.reqcomm import CommAnalysis, VolumeModel, analyze_communication
from ..analysis.workload import WorkloadProfile
from ..codegen.filtergen import CompiledPipeline, FilterGenerator, RuntimeConfig
from ..codegen.vectorize import resolve_backend
from ..cost.environment import PipelineEnv
from ..cost.model import DEFAULT_WEIGHTS, OpWeights
from ..decompose.brute import brute_force
from ..decompose.dp import decompose_dp, decompose_dp_bottleneck
from ..decompose.plan import DecompositionPlan, DecompositionProblem
from ..lang import IntrinsicRegistry, parse
from ..lang.typecheck import CheckedProgram, check


@dataclass(slots=True)
class CompileOptions:
    """Knobs of one compilation."""

    env: PipelineEnv
    profile: WorkloadProfile = field(default_factory=WorkloadProfile)
    weights: OpWeights = field(default_factory=lambda: DEFAULT_WEIGHTS)
    #: 'fill' = the published Fig 3 objective; 'total' = full §4.3 formula
    #: with transparent-copy widths (our extension); 'brute' = exhaustive
    objective: str = "total"
    charge_raw_input: bool = True
    size_hints: dict[str, object] = field(default_factory=dict)
    runtime_classes: dict[str, type] = field(default_factory=dict)
    #: select a specific PipelinedLoop by enclosing method name
    method: str | None = None
    use_widths: bool = True
    #: 'Class.method' -> (profile -> OpCount) cost summaries for methods
    #: backed by native runtime classes (reduction updates)
    method_costs: dict[str, object] = field(default_factory=dict)
    #: default execution engine for CompilationResult.execute
    #: ("threaded" | "process"; see repro.datacutter.engine)
    engine: str = "threaded"
    #: full default run configuration for CompilationResult.execute — an
    #: EngineOptions carrying retry policy, fault plan, trace sink, etc.
    #: When set it wins over the bare ``engine`` name above; kept untyped
    #: to avoid importing the runtime at compile time
    engine_options: object | None = None
    #: codegen backend for element loops: "scalar" (the paper's per-record
    #: shape), "vector" (columnar NumPy, repro.codegen.vectorize), or
    #: "auto" (consult the REPRO_BACKEND environment variable)
    backend: str = "auto"

    def replace(self, **changes: object) -> "CompileOptions":
        import dataclasses

        return dataclasses.replace(self, **changes)


@dataclass(slots=True)
class CompilationResult:
    """Every intermediate product of one compilation."""

    checked: CheckedProgram
    chain: FilterChain
    comm: CommAnalysis
    tasks: list[float]  # weighted ops per packet, f_1..f_{n+1}
    volumes: list[float]  # bytes: raw, b_1..b_n, final
    problem: DecompositionProblem
    plan: DecompositionPlan
    plan_cost: float
    pipeline: CompiledPipeline
    options: CompileOptions

    def execute(
        self,
        packets,
        params: dict | None = None,
        widths=None,
        options=None,
        **legacy,
    ):
        """Run the compiled pipeline on an execution engine.

        ``options`` is an :class:`~repro.datacutter.engine.EngineOptions`;
        when omitted, the compile-time default run configuration is used
        (``CompileOptions.engine_options`` if set, else an EngineOptions
        built from the bare ``CompileOptions.engine`` name).  Legacy
        keyword arguments (``engine=``, ``queue_capacity=``,
        ``timeout=``, ...) still work but emit a
        :class:`DeprecationWarning`.  Returns the engine's
        :class:`~repro.datacutter.runtime.RunResult`.
        """
        from ..datacutter.engine import (
            EngineOptions,
            coerce_engine_options,
            run_pipeline,
        )

        if options is None and not legacy:
            if self.options.engine_options is not None:
                options = self.options.engine_options
            else:
                options = EngineOptions(engine=self.options.engine)
        elif not isinstance(options, EngineOptions):
            # legacy call: engine="..." / queue_capacity=... kwargs, or the
            # old positional-string engine argument
            if options is None:
                legacy.setdefault("engine", self.options.engine)
            options = coerce_engine_options(options, legacy, stacklevel=3)
        elif legacy:
            raise TypeError(
                "pass either options=EngineOptions(...) or legacy keyword "
                f"arguments, not both (got {sorted(legacy)})"
            )
        specs = self.pipeline.specs(packets, params, widths)
        return run_pipeline(specs, options=options)

    def report(self) -> str:
        """Human-readable compilation report (atoms, volumes, plan)."""
        lines = ["=== compilation report ==="]
        lines.append(f"atoms: {len(self.chain.atoms)}")
        for atom, task in zip(self.chain.atoms, self.tasks):
            lines.append(f"  f{atom.index:<2} {atom.label:<24} ops/packet={task:,.0f}")
        lines.append(f"volumes (bytes/packet): raw={self.volumes[0]:,.0f}")
        for b in self.chain.boundaries:
            lines.append(f"  b{b.index:<2} {b.label:<40} {self.volumes[b.index]:,.0f}")
        lines.append(f"  final: {self.volumes[-1]:,.0f}")
        lines.append(f"plan: {self.plan}  (cost {self.plan_cost:.6f}s)")
        return "\n".join(lines)


def _pick_loop(checked: CheckedProgram, method: str | None):
    loops = checked.pipelined_loops()
    if not loops:
        raise ValueError("program has no PipelinedLoop")
    if method is None:
        return loops[0]
    for meth, loop in loops:
        if meth.name == method:
            return meth, loop
    raise ValueError(f"no PipelinedLoop in a method named '{method}'")


def analyze_source(
    source: str,
    registry: IntrinsicRegistry | None = None,
    method: str | None = None,
) -> tuple[CheckedProgram, FilterChain, CommAnalysis]:
    """Frontend + analyses only (no decomposition/codegen)."""
    checked = check(parse(source), registry)
    meth, loop = _pick_loop(checked, method)
    chain = build_filter_chain(checked, meth, loop)
    comm = analyze_communication(chain, GenConsAnalyzer(checked))
    return checked, chain, comm


def compute_problem(
    chain: FilterChain,
    comm: CommAnalysis,
    options: CompileOptions,
) -> tuple[list[float], list[float], DecompositionProblem]:
    """Price the chain: per-atom weighted ops and per-boundary volumes."""
    profile = options.profile
    counter = OpCounter(chain.checked, method_costs=dict(options.method_costs))
    tasks = [
        options.weights.total(counter.atom_ops(atom, profile))
        for atom in chain.atoms
    ]
    vm = VolumeModel(chain.checked, size_hints=dict(options.size_hints))
    # raw input volume: one more backward step (ReqComm(b_0))
    facts0 = comm.atom_facts[0]
    first = comm.reqcomm[0] if comm.reqcomm else comm.live_out
    b0 = first.difference_must(facts0.gen).union(facts0.cons)
    pseudo = Boundary(index=0, before=chain.atoms[0], after=chain.atoms[0])
    raw_vol = vm.boundary_volume(chain, pseudo, b0, profile)
    vols = [raw_vol]
    for boundary, req in zip(chain.boundaries, comm.reqcomm):
        vols.append(vm.boundary_volume(chain, boundary, req, profile))
    vols.append(vm.final_output_volume(comm, profile))
    problem = DecompositionProblem(
        tasks=tasks,
        vols=vols,
        env=options.env,
        num_packets=profile.num_packets,
        weights=options.weights,
        use_widths=options.use_widths,
    )
    return tasks, vols, problem


def decompose(
    problem: DecompositionProblem, options: CompileOptions
) -> tuple[DecompositionPlan, float]:
    if options.objective == "fill":
        result = decompose_dp(problem, charge_raw_input=options.charge_raw_input)
        assert result.plan is not None
        return result.plan, result.cost
    if options.objective == "total":
        result = decompose_dp_bottleneck(problem)
        assert result.plan is not None
        return result.plan, result.cost
    if options.objective == "brute":
        cost, plan = brute_force(problem, "total")
        assert plan is not None
        return plan, cost
    raise ValueError(f"unknown objective {options.objective!r}")


def default_plan(chain: FilterChain, m: int) -> DecompositionPlan:
    """The paper's Default placement: data nodes only read and forward, all
    processing happens on the compute stage, results are copied onward."""
    n1 = len(chain.atoms)
    compute_unit = 2 if m >= 2 else 1
    assignment = tuple([compute_unit] * n1)
    return DecompositionPlan(assignment, m)


def source_only_plan(chain: FilterChain, m: int) -> DecompositionPlan:
    """Everything on the data host (the 'download nothing' extreme)."""
    return DecompositionPlan(tuple([1] * len(chain.atoms)), m)


def compile_source(
    source: str,
    registry: IntrinsicRegistry | None = None,
    options: CompileOptions | None = None,
    intrinsic_impls: dict[str, Callable] | None = None,
    plan: DecompositionPlan | None = None,
    cache: "PlanCacheProtocol | None" = None,
) -> CompilationResult:
    """Full compilation.  ``plan`` overrides the DP decision (used for the
    Default baselines and for ablations).

    ``cache`` plugs in a compilation plan cache — anything satisfying the
    exported :class:`~repro.serve.plancache.PlanCacheProtocol`
    (``key_for`` / ``get`` / ``put``; the stock implementation is
    :class:`~repro.serve.plancache.PlanCache`): the key covers the source
    text, the registry, every compile-relevant option (environment,
    profile, objective, resolved codegen backend, ...) and the plan
    override, so a hit skips parse→analysis→decompose→codegen entirely and
    returns the previously built :class:`CompilationResult`.  Cached
    results are shared — callers must not mutate them (executing one is
    safe: ``pipeline.specs`` builds fresh filter instances per run)."""
    if options is None:
        raise ValueError("CompileOptions (with a PipelineEnv) are required")
    key = None
    if cache is not None:
        key = cache.key_for(
            source, registry, options, plan=plan, intrinsic_impls=intrinsic_impls
        )
        hit = cache.get(key)
        if hit is not None:
            return hit
    checked, chain, comm = analyze_source(source, registry, options.method)
    tasks, vols, problem = compute_problem(chain, comm, options)
    if plan is None:
        plan, cost = decompose(problem, options)
    else:
        cost = problem.evaluate(plan)
    impls = dict(intrinsic_impls or {})
    batch_impls: dict[str, Callable] = {}
    if registry is not None:
        for intr in registry:
            impls.setdefault(intr.name, intr.fn)
            if intr.batch_fn is not None:
                batch_impls.setdefault(intr.name, intr.batch_fn)
    config = RuntimeConfig(
        intrinsics=impls,
        runtime_classes=dict(options.runtime_classes),
        size_hints=dict(options.size_hints),
        batch_intrinsics=batch_impls,
        backend=resolve_backend(options.backend),
    )
    pipeline = FilterGenerator(chain, comm, plan, config).generate()
    result = CompilationResult(
        checked=checked,
        chain=chain,
        comm=comm,
        tasks=tasks,
        volumes=vols,
        problem=problem,
        plan=plan,
        plan_cost=cost,
        pipeline=pipeline,
        options=options,
    )
    if cache is not None and key is not None:
        cache.put(key, result)
    return result
