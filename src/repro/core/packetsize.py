"""Automatic packet-count selection (paper §8 future work).

    "Automatically choosing the packet size is another issue."

The §3 language leaves ``runtime_define num_packets`` to the user.  This
module closes the loop: given the analysed chain and a workload profile
describing the *total* data (elements = packet_size x num_packets), it
sweeps candidate packet counts under the §4.3 cost model — re-running the
DP decomposition for each, since the optimal placement can shift with
packet granularity — and returns the best count.

The trade-off it navigates: too few packets cannot amortize pipeline fill
((N-1)·bottleneck needs N), too many pay per-buffer latency and per-packet
overheads (reduction merges happen once per packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.boundaries import FilterChain
from ..analysis.reqcomm import CommAnalysis
from .compiler import CompileOptions, compute_problem, decompose


@dataclass(slots=True)
class PacketSweepResult:
    """Outcome of one packet-count sweep."""

    best: int
    #: packet count -> estimated total time (§4.3 objective, widths applied)
    estimates: dict[int, float] = field(default_factory=dict)
    #: packet count -> plan string, for inspection
    plans: dict[int, str] = field(default_factory=dict)

    def speedup_over(self, n: int) -> float:
        return self.estimates[n] / self.estimates[self.best]


DEFAULT_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128)


def choose_packet_count(
    chain: FilterChain,
    comm: CommAnalysis,
    options: CompileOptions,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
) -> PacketSweepResult:
    """Pick the packet count minimizing the §4.3 estimate.

    The total element count is taken from the profile
    (``packet_size * num_packets``) and held fixed across the sweep; each
    candidate re-derives per-packet sizes, re-prices the chain, and re-runs
    the decomposition.
    """
    base = options.profile
    total_elements = base.packet_size * base.num_packets
    if total_elements <= 0:
        raise ValueError("profile must define a positive total data size")
    result = PacketSweepResult(best=0)
    for n in candidates:
        if n < 1 or n > total_elements:
            continue
        profile = base.with_params(
            num_packets=float(n), packet_size=total_elements / n
        )
        swept = CompileOptions(
            env=options.env,
            profile=profile,
            weights=options.weights,
            objective=options.objective,
            charge_raw_input=options.charge_raw_input,
            size_hints=dict(options.size_hints),
            runtime_classes=dict(options.runtime_classes),
            method=options.method,
            use_widths=options.use_widths,
            method_costs=dict(options.method_costs),
        )
        _tasks, _vols, problem = compute_problem(chain, comm, swept)
        plan, _cost = decompose(problem, swept)
        estimate = problem.evaluate(plan)
        result.estimates[n] = estimate
        result.plans[n] = str(plan)
    if not result.estimates:
        raise ValueError("no feasible packet counts among the candidates")
    result.best = min(result.estimates, key=result.estimates.__getitem__)
    return result
