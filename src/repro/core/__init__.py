"""Compilation driver: the public entry point tying frontend, analyses,
cost model, decomposition, and code generation together."""

from .packetsize import PacketSweepResult, choose_packet_count
from .compiler import (
    CompilationResult,
    CompileOptions,
    analyze_source,
    compile_source,
    compute_problem,
    decompose,
    default_plan,
    source_only_plan,
)

__all__ = [
    "CompilationResult",
    "PacketSweepResult",
    "choose_packet_count",
    "CompileOptions",
    "analyze_source",
    "compile_source",
    "compute_problem",
    "decompose",
    "default_plan",
    "source_only_plan",
]
