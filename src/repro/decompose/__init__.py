"""Filter decomposition (paper §4.4): the Figure 3 dynamic program, its
O(m)-space variant, a full-objective Pareto extension, and the exponential
brute force used for validation."""

from .brute import brute_force, enumerate_plans, plan_count
from .dp import DPResult, decompose_dp, decompose_dp_bottleneck, decompose_dp_low_space
from .plan import INF, DecompositionPlan, DecompositionProblem

__all__ = [
    "DPResult",
    "DecompositionPlan",
    "DecompositionProblem",
    "INF",
    "brute_force",
    "decompose_dp",
    "decompose_dp_bottleneck",
    "decompose_dp_low_space",
    "enumerate_plans",
    "plan_count",
]
