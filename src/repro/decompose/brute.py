"""Brute-force decomposition (paper §4.4).

    "a brute-force approach is to consider all combination of m-1 filter
    boundary placements over n candidates ... This term is exponential in
    the value of m."

Enumerates every non-decreasing cut vector (cuts may coincide — a unit may
be left empty, acting as a relay) and prices each plan, under either the
Figure 3 fill objective or the full §4.3 objective.  Used to validate both
DP variants and as the baseline in the Figure 3 scaling benchmark.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Callable, Iterator

from .plan import INF, DecompositionPlan, DecompositionProblem


def enumerate_plans(n_filters: int, m: int) -> Iterator[DecompositionPlan]:
    """All C(n+m, m-1)-style placements of m-1 cuts over n+1 filters."""
    for cuts in combinations_with_replacement(range(n_filters + 1), m - 1):
        yield DecompositionPlan.from_cuts(cuts, n_filters, m)


def brute_force(
    problem: DecompositionProblem,
    objective: str = "fill",
    charge_raw_input: bool = False,
) -> tuple[float, DecompositionPlan | None]:
    """Exhaustively find the optimal plan.

    ``objective``: ``"fill"`` (the Figure 3 DP objective) or ``"total"``
    (full §4.3 bottleneck formula with widths, matching
    :func:`~repro.decompose.dp.decompose_dp_bottleneck`).
    """
    if objective == "fill":
        price: Callable[[DecompositionPlan], float] = (
            lambda plan: problem.evaluate_fill(plan, charge_raw_input)
        )
    elif objective == "total":
        price = problem.evaluate
    else:
        raise ValueError(f"unknown objective {objective!r}")

    best_cost = INF
    best_plan: DecompositionPlan | None = None
    for plan in enumerate_plans(problem.n_filters, problem.m):
        cost = price(plan)
        if cost < best_cost:
            best_cost = cost
            best_plan = plan
    return best_cost, best_plan


def plan_count(n_filters: int, m: int) -> int:
    """Number of placements the brute force evaluates: C(n+m, m-1) with
    n = n_filters - 1 candidates (the paper's count, allowing empty units)."""
    from math import comb

    return comb(n_filters + m - 1, m - 1)
