"""Decomposition problem and plan data structures (paper §4.4).

A :class:`DecompositionProblem` is the abstract instance the DP and the
brute-force solver consume: ``n+1`` atomic filters with per-packet task
sizes (weighted ops), ``per-boundary`` communication volumes (bytes), and a
:class:`~repro.cost.environment.PipelineEnv`.

Volumes are indexed ``vols[i]`` = bytes that cross a link if the cut is
placed *after* filter ``f_i`` (``i = 0`` is the raw input, before ``f_1``;
``i = n+1`` is the final output).  The published Figure 3 algorithm
implicitly treats the raw-input move as free (``T[0, j] = 0``); passing
``charge_raw_input=True`` to the solvers adds the forwarding cost, which is
the variant the experiments use (see DESIGN.md).

A :class:`DecompositionPlan` maps every filter to a unit (non-decreasing),
equivalently ``m-1`` cut positions; :meth:`DecompositionProblem.evaluate`
prices a plan with the full §4.3 formula (bottleneck + fill), while
:meth:`evaluate_fill` prices only the fill-time sum that Figure 3's DP
minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cost.environment import PipelineEnv
from ..cost.model import (
    DEFAULT_WEIGHTS,
    OpWeights,
    StageTimes,
    cost_comm,
    cost_comp,
    pipeline_time,
)

INF = float("inf")


@dataclass(slots=True)
class DecompositionProblem:
    """Abstract instance: tasks, volumes, environment."""

    tasks: list[float]  # weighted ops per packet for f_1..f_{n+1}
    vols: list[float]  # bytes: vols[0]=raw input, vols[i]=after f_i, i<=n+1
    env: PipelineEnv
    num_packets: int = 1
    weights: OpWeights = field(default_factory=lambda: DEFAULT_WEIGHTS)
    use_widths: bool = True

    def __post_init__(self) -> None:
        # n+1 filters have n internal boundaries, plus the raw input (index
        # 0) and the final output (index n+1): n+2 volumes in total.
        if len(self.vols) != len(self.tasks) + 1:
            raise ValueError(
                f"{len(self.tasks)} filters need {len(self.tasks) + 1} volumes "
                f"(raw input, one per boundary, final output), got {len(self.vols)}"
            )
        if any(t < 0 for t in self.tasks) or any(v < 0 for v in self.vols):
            raise ValueError("tasks and volumes must be non-negative")

    # -- sizes ---------------------------------------------------------------
    @property
    def n_filters(self) -> int:
        """n+1 in the paper's notation."""
        return len(self.tasks)

    @property
    def m(self) -> int:
        return self.env.m

    # -- elementary costs -------------------------------------------------------
    def comp_time(self, i: int, j: int) -> float:
        """CostComp(P(C_j), Task(f_i)); 1-based i and j, width-agnostic
        (widths enter when a full plan is priced)."""
        return cost_comp(self.env.unit(j), self.tasks[i - 1], self.weights)

    def comm_time(self, i: int, j: int) -> float:
        """CostComm(B(L_j), Vol(f_i)); ``i = 0`` prices the raw input."""
        return cost_comm(self.env.link(j), self.vols[i])

    # -- plan pricing -------------------------------------------------------------
    def stage_times(self, plan: "DecompositionPlan") -> StageTimes:
        """Per-packet stage/link times under the §4.3 model (with widths)."""
        unit_ops = [0.0] * self.m
        for i, j in enumerate(plan.assignment, start=1):
            unit_ops[j - 1] += self.tasks[i - 1]
        link_vols = [self.vols[plan.last_filter_before_link(k)] for k in
                     range(1, self.m)]
        comp = []
        for j in range(1, self.m + 1):
            t = cost_comp(self.env.unit(j), unit_ops[j - 1], self.weights)
            if self.use_widths:
                t /= self.env.unit(j).width
            comp.append(t)
        comm = []
        drain = []
        for k in range(1, self.m):
            t = cost_comm(self.env.link(k), link_vols[k - 1])
            if self.use_widths:
                streams = min(self.env.unit(k).width, self.env.unit(k + 1).width)
                t /= streams
            comm.append(t)
            # a link past the last filter only drains the final output
            drain.append(
                plan.last_filter_before_link(k) == len(plan.assignment)
            )
        return StageTimes(comp=comp, comm=comm, drain=drain)

    def evaluate(self, plan: "DecompositionPlan") -> float:
        """Full §4.3 total time: (N-1) * bottleneck + fill."""
        return pipeline_time(self.stage_times(plan), self.num_packets)

    def evaluate_fill(
        self, plan: "DecompositionPlan", charge_raw_input: bool = False
    ) -> float:
        """The Figure 3 objective: Σ CostComp + Σ CostComm over the plan,
        without width division (the DP models one copy per stage)."""
        total = 0.0
        for i, j in enumerate(plan.assignment, start=1):
            total += self.comp_time(i, j)
        for k in range(1, self.m):
            i = plan.last_filter_before_link(k)
            if i == 0 and not charge_raw_input:
                continue
            total += self.comm_time(i, k)
        return total


@dataclass(frozen=True, slots=True)
class DecompositionPlan:
    """``assignment[i-1] = j``: filter f_i runs on unit C_j (non-decreasing,
    ending at the last unit is not required — results are forwarded)."""

    assignment: tuple[int, ...]
    m: int

    def __post_init__(self) -> None:
        if not self.assignment:
            raise ValueError("a plan needs at least one filter")
        prev = 1
        for j in self.assignment:
            if j < prev or j > self.m:
                raise ValueError(f"invalid non-decreasing assignment {self.assignment}")
            prev = j

    @staticmethod
    def from_cuts(cuts: Sequence[int], n_filters: int, m: int) -> "DecompositionPlan":
        """``cuts`` = non-decreasing positions c_1..c_{m-1}; filters
        ``c_k + 1 .. c_{k+1}`` land on unit ``k+1`` (c_0 = 0, c_m = n+1)."""
        if len(cuts) != m - 1:
            raise ValueError(f"need {m - 1} cuts, got {len(cuts)}")
        bounds = [0, *cuts, n_filters]
        prev = 0
        for b in bounds:
            if b < prev:
                raise ValueError(f"cuts must be non-decreasing: {cuts}")
            prev = b
        assignment = []
        for j in range(1, m + 1):
            assignment.extend([j] * (bounds[j] - bounds[j - 1]))
        return DecompositionPlan(tuple(assignment), m)

    @property
    def cuts(self) -> tuple[int, ...]:
        """Cut positions: c_k = index of the last filter on units 1..k."""
        n = len(self.assignment)
        out = []
        for k in range(1, self.m):
            count = sum(1 for j in self.assignment if j <= k)
            out.append(count)
        return tuple(out)

    def filters_on_unit(self, j: int) -> list[int]:
        return [i for i, u in enumerate(self.assignment, start=1) if u == j]

    def last_filter_before_link(self, k: int) -> int:
        """Index of the filter whose ReqComm crosses link L_k (0 = raw
        input when unit k and everything before it are empty)."""
        last = 0
        for i, j in enumerate(self.assignment, start=1):
            if j <= k:
                last = i
        return last

    def __str__(self) -> str:
        groups = []
        for j in range(1, self.m + 1):
            fs = self.filters_on_unit(j)
            groups.append(
                "{" + ",".join(f"f{i}" for i in fs) + "}" if fs else "{}"
            )
        return " | ".join(groups)
