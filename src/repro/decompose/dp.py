"""Dynamic-programming filter decomposition (paper §4.4, Figure 3).

    T[i, j] = min( T[i, j-1] + CostComm(B(L_{j-1}), Vol(f_i)),
                   T[i-1, j] + CostComp(P(C_j), Task(f_i)) )

``T[i, j]`` is the minimum cost of completing filters ``f_1..f_i`` with the
results of ``f_i`` resident on unit ``C_j``; the answer is ``T[n+1, m]``.
O(nm) time.  Three entry points:

* :func:`decompose_dp` — the published algorithm with backtracking,
  optionally charging the raw-input forwarding cost that Figure 3's
  ``T[0, j] = 0`` initialization leaves out;
* :func:`decompose_dp_low_space` — the O(m)-space variant the paper
  describes ("we only need ... T[i-1, j] and T[i, j-1]"), cost only;
* :func:`decompose_dp_bottleneck` — our extension: optimizes the *full*
  §4.3 objective ``(N-1)·bottleneck + fill`` by Pareto dynamic programming
  over (closed-fill, open-stage-load, bottleneck) states.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import INF, DecompositionPlan, DecompositionProblem


@dataclass(slots=True)
class DPResult:
    cost: float
    plan: DecompositionPlan | None
    table: list[list[float]] | None = None  # T[i][j], kept for tests/benches


def decompose_dp(
    problem: DecompositionProblem,
    charge_raw_input: bool = False,
    keep_table: bool = False,
) -> DPResult:
    """Figure 3, with parent pointers to recover the optimal plan."""
    n1 = problem.n_filters  # n+1
    m = problem.m
    # T[i][j] with i in 0..n+1, j in 0..m
    T = [[INF] * (m + 1) for _ in range(n1 + 1)]
    # parent[i][j]: 'comm' (came from T[i][j-1]) or 'comp' (from T[i-1][j])
    parent: list[list[str | None]] = [[None] * (m + 1) for _ in range(n1 + 1)]

    for j in range(m + 1):
        if charge_raw_input:
            # forwarding the raw input to unit j costs the sum of link
            # times along the way
            cost = 0.0
            for k in range(1, j):
                cost += problem.comm_time(0, k)
            T[0][j] = cost
        else:
            T[0][j] = 0.0  # the published initialization

    for i in range(1, n1 + 1):
        for j in range(1, m + 1):
            via_comp = T[i - 1][j] + problem.comp_time(i, j)
            via_comm = (
                T[i][j - 1] + problem.comm_time(i, j - 1) if j >= 2 else INF
            )
            if via_comp <= via_comm:
                T[i][j] = via_comp
                parent[i][j] = "comp"
            else:
                T[i][j] = via_comm
                parent[i][j] = "comm"

    # backtrack: from (n+1, m) follow parents; 'comp' fixes f_i on C_j
    assignment = [0] * n1
    i, j = n1, m
    while i >= 1:
        move = parent[i][j]
        if move == "comp":
            assignment[i - 1] = j
            i -= 1
        elif move == "comm":
            j -= 1
        else:  # pragma: no cover - unreachable on valid instances
            raise AssertionError("broken DP table")
    plan = DecompositionPlan(tuple(assignment), m)
    return DPResult(
        cost=T[n1][m],
        plan=plan,
        table=T if keep_table else None,
    )


def decompose_dp_low_space(
    problem: DecompositionProblem, charge_raw_input: bool = False
) -> float:
    """The O(m)-space cost-only variant (paper §4.4, last paragraph):
    a single row is kept and overwritten in place — cell ``row[j]`` holds
    ``T[i-1][j]`` until it is replaced by ``T[i][j]``."""
    n1 = problem.n_filters
    m = problem.m
    row = [0.0] * (m + 1)
    if charge_raw_input:
        for j in range(1, m + 1):
            row[j] = row[j - 1] + (
                problem.comm_time(0, j - 1) if j >= 2 else 0.0
            )
    for i in range(1, n1 + 1):
        prev_left = INF  # T[i][j-1]
        for j in range(1, m + 1):
            via_comp = row[j] + problem.comp_time(i, j)  # row[j] is T[i-1][j]
            via_comm = (
                prev_left + problem.comm_time(i, j - 1) if j >= 2 else INF
            )
            row[j] = min(via_comp, via_comm)
            prev_left = row[j]
        row[0] = INF
    return row[m]


# ---------------------------------------------------------------------------
# Extension: full-objective Pareto DP
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _State:
    """Partial solution at (filter i placed, on unit j).

    ``closed`` — fill time of completed stages and crossed links;
    ``open_load`` — accumulated per-packet time on the current unit;
    ``bottleneck`` — max stage/link per-packet time among *closed* ones.
    """

    closed: float
    open_load: float
    bottleneck: float
    parent: "tuple[_State, str] | None"

    def dominates(self, other: "_State") -> bool:
        return (
            self.closed <= other.closed
            and self.open_load <= other.open_load
            and self.bottleneck <= other.bottleneck
        )


def decompose_dp_bottleneck(problem: DecompositionProblem) -> DPResult:
    """Optimize the full §4.3 objective with transparent-copy widths.

    State space: for each (i, j) keep the Pareto frontier over
    (closed fill, open stage load, bottleneck); transitions either keep
    f_{i+1} on C_j or close the stage and hop across L_j.  Exact because
    the final objective is monotone in all three coordinates.
    """
    n1 = problem.n_filters
    m = problem.m
    env = problem.env

    def stage_time(load: float, j: int) -> float:
        t = load
        if problem.use_widths:
            t /= env.unit(j).width
        return t

    def link_time(i: int, k: int) -> float:
        t = problem.comm_time(i, k)
        if problem.use_widths:
            t /= min(env.unit(k).width, env.unit(k + 1).width)
        return t

    # frontier[j] = Pareto states with filters 1..i placed, currently on C_j
    frontier: list[list[_State]] = [[] for _ in range(m + 1)]
    frontier[1] = [_State(0.0, 0.0, 0.0, None)]

    def push(bucket: list[_State], state: _State) -> None:
        for existing in bucket:
            if existing.dominates(state):
                return
        bucket[:] = [s for s in bucket if not state.dominates(s)]
        bucket.append(state)

    for i in range(1, n1 + 1):
        nxt: list[list[_State]] = [[] for _ in range(m + 1)]
        for j in range(1, m + 1):
            # arrive at unit j either by staying or by hopping from j' < j
            # (hops close intermediate stages); process hops first so every
            # state in frontier[j] already has f_1..f_{i-1} done.
            pass
        # 1) hop states sideways (crossing links without placing a filter)
        for j in range(1, m):
            for state in list(frontier[j]):
                cur = state
                load_closed = stage_time(cur.open_load, j)
                hopped = _State(
                    closed=cur.closed + load_closed + link_time(i - 1, j),
                    open_load=0.0,
                    bottleneck=max(
                        cur.bottleneck, load_closed, link_time(i - 1, j)
                    ),
                    parent=(cur, f"hop{j}"),
                )
                push(frontier[j + 1], hopped)
        # 2) place f_i on the current unit
        for j in range(1, m + 1):
            for state in frontier[j]:
                placed = _State(
                    closed=state.closed,
                    open_load=state.open_load + problem.comp_time(i, j),
                    bottleneck=state.bottleneck,
                    parent=(state, f"place{i}@{j}"),
                )
                push(nxt[j], placed)
        frontier = nxt

    # All filters placed; forward the final results (hops) to C_m.  These
    # drain links carry the output once per run, not once per packet, so
    # they contribute to fill time but never to the steady-state
    # bottleneck (a deliberate refinement over charging Vol(f_{n+1}) per
    # packet — see DESIGN.md).
    best_cost = INF
    best_state: _State | None = None
    for j in range(1, m + 1):
        for state in frontier[j]:
            closed = state.closed
            bott = state.bottleneck
            load = state.open_load
            cur_j = j
            while True:
                st = stage_time(load, cur_j)
                closed += st
                bott = max(bott, st)
                if cur_j == m:
                    break
                closed += link_time(n1, cur_j)
                load = 0.0
                cur_j += 1
            total = (problem.num_packets - 1) * bott + closed
            if total < best_cost:
                best_cost = total
                best_state = state

    plan = _recover_plan(best_state, n1, m) if best_state is not None else None
    return DPResult(cost=best_cost, plan=plan)


def _recover_plan(state: _State, n1: int, m: int) -> DecompositionPlan:
    assignment = [0] * n1
    cur: _State | None = state
    while cur is not None and cur.parent is not None:
        prev, move = cur.parent
        if move.startswith("place"):
            idx, unit = move[5:].split("@")
            assignment[int(idx) - 1] = int(unit)
        cur = prev
    # fill unassigned (shouldn't happen) defensively with unit 1
    last = 1
    for k in range(n1):
        if assignment[k] == 0:
            assignment[k] = last
        last = assignment[k]
    return DecompositionPlan(tuple(assignment), m)
