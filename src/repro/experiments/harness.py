"""Experiment harness for the §6 evaluation.

Methodology (the substitution DESIGN.md documents): *computation is
measured, communication is simulated*.

1. Build a version of an application:

   * **Default** — the paper's baseline: data nodes only read and forward,
     all processing on the compute stage (``default_plan``);
   * **Decomp-Comp** — the compiler's DP decomposition and generated code;
   * **Decomp-Manual** — hand-written, vectorized DataCutter filters
     performing the same decomposition (knn, vmscope only, as in §6.4-6.5).

2. Run it once with engine-native tracing enabled
   (:func:`measure_pipeline`, a thin wrapper over ``run_pipeline`` with an
   :class:`~repro.datacutter.obs.Trace` in the
   :class:`~repro.datacutter.engine.EngineOptions`): the engines record
   per-filter-copy ``init``/``generate``/``process``/``finalize`` spans,
   yielding *measured* per-packet compute seconds per stage and *measured*
   per-packet bytes per link, and the output is verified against the
   sequential oracle.  Tracing is engine-native, so measurement works
   identically on the threaded and process engines.

3. Feed those measurements into the deterministic grid simulator for each
   pipeline configuration (1-1-1 / 2-2-1 / 4-4-1 with Myrinet-class links)
   to obtain the figure's execution times.

The same traces close the loop on the §4.3 cost models:
:func:`validate_cost_model` joins measured per-filter span seconds and
per-link bytes against the ``OpCounter``/``VolumeModel`` predictions for
the chosen decomposition plan.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..codegen.runtime_support import FINAL_PACKET
from ..core.compiler import CompileOptions, compile_source, default_plan
from ..cost.environment import PipelineEnv, cluster_config
from ..datacutter.engine import EngineOptions, run_pipeline
from ..datacutter.filters import Filter, FilterContext, FilterSpec, SourceFilter
from ..datacutter.obs import Trace
from ..datacutter.runtime import RunResult
from ..datacutter.simulation import SimReport, simulate_pipeline
from ..decompose.plan import DecompositionPlan
from .. import apps as _apps  # noqa: F401 - re-export convenience
from ..apps.common import AppBundle, Workload

VERSIONS = ("Default", "Decomp-Comp", "Decomp-Manual")


# ---------------------------------------------------------------------------
# Timing wrappers (legacy)
#
# Predate engine-native tracing: wrap every filter in a stopwatch and
# accumulate per-(filter, packet) seconds by hand.  The harness now gets
# the same numbers from Trace.seconds_by_packet() without touching the
# specs; these stay as back-compat aliases for external users of the old
# measurement API.
# ---------------------------------------------------------------------------


class TimeAccumulator:
    """Per-(filter, packet) CPU-time accumulator.

    Thread-safe by default.  For the process engine, pass a
    ``multiprocessing`` queue as ``sink``: timed filters run inside worker
    processes, so samples are shipped over the queue and folded back in
    with :meth:`absorb` once the run completes (worker processes flush
    their queue feeders on exit, so post-run draining sees every sample).
    """

    def __init__(self, sink: Any | None = None) -> None:
        self._lock = threading.Lock()
        self._sink = sink
        self.seconds: dict[str, dict[int, float]] = {}

    def add(self, name: str, packet: int, dt: float) -> None:
        if self._sink is not None:
            self._sink.put((name, packet, dt))
            return
        with self._lock:
            per = self.seconds.setdefault(name, {})
            per[packet] = per.get(packet, 0.0) + dt

    def absorb(self) -> None:
        """Drain the sink queue into the local table (parent side)."""
        if self._sink is None:
            return
        from queue import Empty

        sink, self._sink = self._sink, None
        while True:
            try:
                name, packet, dt = sink.get(timeout=0.25)
            except Empty:
                break
            self.add(name, packet, dt)

    def total(self, name: str) -> float:
        return sum(self.seconds.get(name, {}).values())

    def per_packet(self, name: str, packet: int) -> float:
        return self.seconds.get(name, {}).get(packet, 0.0)


class _TimedFilter(Filter):
    def __init__(self, inner: Filter, acc: TimeAccumulator, name: str) -> None:
        self._inner = inner
        self._acc = acc
        self._name = name

    def init(self, ctx: FilterContext) -> None:
        t0 = time.perf_counter()
        self._inner.init(ctx)
        self._acc.add(self._name, FINAL_PACKET, time.perf_counter() - t0)

    def process(self, buf, ctx: FilterContext) -> None:
        t0 = time.perf_counter()
        self._inner.process(buf, ctx)
        self._acc.add(self._name, buf.packet, time.perf_counter() - t0)

    def finalize(self, ctx: FilterContext) -> None:
        t0 = time.perf_counter()
        self._inner.finalize(ctx)
        self._acc.add(self._name, FINAL_PACKET, time.perf_counter() - t0)


class _TimedSource(SourceFilter):
    def __init__(self, inner: SourceFilter, acc: TimeAccumulator, name: str) -> None:
        self._inner = inner
        self._acc = acc
        self._name = name

    def init(self, ctx: FilterContext) -> None:
        t0 = time.perf_counter()
        self._inner.init(ctx)
        self._acc.add(self._name, FINAL_PACKET, time.perf_counter() - t0)

    def generate(self, ctx: FilterContext):
        it = self._inner.generate(ctx)
        packet = 0
        while True:
            t0 = time.perf_counter()
            try:
                item = next(it)
            except StopIteration:
                return
            finally:
                self._acc.add(self._name, packet, time.perf_counter() - t0)
            yield item
            packet += 1

    def finalize(self, ctx: FilterContext) -> None:
        t0 = time.perf_counter()
        self._inner.finalize(ctx)
        self._acc.add(self._name, FINAL_PACKET, time.perf_counter() - t0)


def timed_specs(
    specs: Sequence[FilterSpec], acc: TimeAccumulator
) -> list[FilterSpec]:
    out: list[FilterSpec] = []
    for spec in specs:
        def factory(spec=spec) -> Filter:
            inner = spec.make()
            if isinstance(inner, SourceFilter):
                return _TimedSource(inner, acc, spec.name)
            return _TimedFilter(inner, acc, spec.name)

        out.append(
            FilterSpec(
                name=spec.name,
                factory=factory,
                placement=spec.placement,
                width=spec.width,
                out_policy=spec.out_policy,
                params=spec.params,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Measured profiles
# ---------------------------------------------------------------------------


def _resolve_options(
    options: EngineOptions | None,
    engine: str | None,
    stacklevel: int = 4,
) -> EngineOptions:
    """Back-compat: accept the old ``engine="..."`` keyword with a
    DeprecationWarning, preferring ``options=EngineOptions(...)``."""
    if engine is not None:
        if options is not None:
            raise TypeError(
                "pass either options=EngineOptions(...) or the legacy "
                "engine= keyword, not both"
            )
        warnings.warn(
            "the engine= keyword is deprecated; pass "
            "options=EngineOptions(engine=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return EngineOptions(engine=engine)
    return options if options is not None else EngineOptions()


def measure_pipeline(
    specs: Sequence[FilterSpec],
    options: EngineOptions | None = None,
) -> tuple[RunResult, Trace]:
    """Run a pipeline with engine-native tracing; returns (result, trace).

    A thin wrapper over ``run_pipeline(specs,
    options=EngineOptions(trace=...))``: if ``options`` already carries a
    trace collector it is used (and must be a :class:`Trace` to be
    returned), otherwise a fresh :class:`Trace` is injected.  Works
    identically on both engines — the process engine ships worker-side
    event buffers back through its supervisor."""
    opts = options if options is not None else EngineOptions()
    trace = opts.trace
    if trace is None:
        trace = Trace()
        opts = opts.replace(trace=trace)
    run = run_pipeline(specs, options=opts)
    return run, trace


@dataclass(slots=True)
class MeasuredRun:
    """Stage/link measurements of one traced execution."""

    version: str
    correct: bool
    num_packets: int
    #: per stage: packet index -> measured seconds (width-1 execution);
    #: once-per-run init/finalize time is amortized across packets
    stage_seconds: list[dict[int, float]]
    #: per link: packet index -> bytes crossing
    link_bytes: list[dict[int, int]]
    run: RunResult
    #: cost-model prediction of total compute seconds per packet (testbed
    #: speed); used to calibrate the Python-vs-testbed slowdown
    modeled_packet_seconds: float | None = None
    #: the engine-native trace the measurements were derived from
    trace: Trace | None = None

    def stage_mean(self, j: int) -> float:
        per = self.stage_seconds[j]
        data = [v for k, v in per.items() if k >= 0]
        return sum(data) / max(len(data), 1)

    def measured_packet_seconds(self) -> float:
        """Mean total compute seconds per packet across all stages."""
        return sum(self.stage_mean(j) for j in range(len(self.stage_seconds)))

    def link_mean_bytes(self, j: int) -> float:
        per = self.link_bytes[j]
        return sum(per.values()) / max(self.num_packets, 1)

    def total_link_bytes(self, j: int) -> int:
        return sum(self.link_bytes[j].values())


def _specs_for_version(
    app: AppBundle,
    workload: Workload,
    version: str,
    env: PipelineEnv,
    objective: str = "total",
    backend: str = "auto",
) -> tuple[list[FilterSpec], Any]:
    """Build (unwrapped) specs for a version; returns (specs, compile
    result or None).  ``backend`` selects the codegen backend for the
    compiled versions ("scalar" | "vector" | "auto", see
    :mod:`repro.codegen.vectorize`); the manual version ignores it."""
    if version == "Decomp-Manual":
        if app.manual_specs is None:
            raise ValueError(f"{app.name} has no manual version (as in the paper)")
        return app.manual_specs(workload, [1] * env.m), None

    runtime_classes = dict(app.runtime_classes)
    # query-dependent classes (vmscope's VImage) are injected per workload
    for key, value in workload.params.items():
        if key.endswith("_class") and isinstance(value, type):
            class_name = key[: -len("_class")]
            # dialect class names are capitalized; match by declared class
            for decl_name in ("VImage", "KNN", "ZBuffer", "ActivePixels"):
                if decl_name.lower() == class_name.lower():
                    runtime_classes.setdefault(decl_name, value)
    options = CompileOptions(
        env=env,
        profile=workload.profile,
        objective=objective,
        size_hints=dict(app.size_hints),
        runtime_classes=runtime_classes,
        method_costs=dict(app.method_costs),
        backend=backend,
    )
    plan: DecompositionPlan | None = None
    result = compile_source(app.source, app.registry, options)
    if version == "Default":
        plan = default_plan(result.chain, env.m)
        result = compile_source(
            app.source, app.registry, options, plan=plan
        )
    elif version != "Decomp-Comp":
        raise ValueError(f"unknown version {version!r}")
    specs = result.pipeline.specs(workload.packets, workload.params)
    return specs, result


def measure_version(
    app: AppBundle,
    workload: Workload,
    version: str,
    env: PipelineEnv | None = None,
    check: bool = True,
    objective: str = "total",
    warmup: bool = True,
    options: EngineOptions | None = None,
    engine: str | None = None,
    backend: str = "auto",
) -> MeasuredRun:
    """Run one version once (width 1 everywhere) and measure it.

    ``warmup`` runs the pipeline once untraced first, so first-touch costs
    (codegen import, NumPy buffer warmup) don't masquerade as a bottleneck
    packet."""
    opts = _resolve_options(options, engine)
    env = env or cluster_config(1)
    specs, _result = _specs_for_version(
        app, workload, version, env, objective, backend=backend
    )
    return measure_specs(
        specs,
        _result,
        workload,
        env,
        version,
        check=check,
        warmup=warmup,
        options=opts,
    )


def measure_specs(
    specs: list[FilterSpec],
    _result,
    workload: Workload,
    env: PipelineEnv,
    version: str,
    check: bool = True,
    warmup: bool = True,
    options: EngineOptions | None = None,
    engine: str | None = None,
) -> MeasuredRun:
    """Measure an already-built spec list (see :func:`measure_version`)."""
    opts = _resolve_options(options, engine)
    if opts.trace is not None and not isinstance(opts.trace, Trace):
        raise TypeError(
            "measure_specs aggregates via Trace.seconds_by_packet(); pass "
            "a repro.datacutter.obs.Trace (or leave options.trace unset)"
        )
    if warmup:
        # faults stay out of the warmup: it exists to absorb one-time
        # costs, not to crash (or pay recovery backoff) before the
        # measured run injects its own faults
        run_pipeline(specs, options=opts.replace(trace=None, faults=None))
    run, trace = measure_pipeline(specs, options=opts)

    correct = True
    if check:
        finals = run.payloads[-1] if run.payloads else {}
        expected = workload.oracle()
        correct = bool(workload.check(finals, expected))

    # aggregate filter times into stage times; init/finalize (the trace's
    # overhead bucket, a negative packet key) amortizes evenly so it
    # doesn't fake a bottleneck packet
    n = max(workload.num_packets, 1)
    stage_seconds: list[dict[int, float]] = [dict() for _ in range(env.m)]
    for spec in specs:
        per = trace.seconds_by_packet(spec.name)
        bucket = stage_seconds[spec.placement]
        overhead = sum(dt for packet, dt in per.items() if packet < 0)
        for packet, dt in per.items():
            if packet >= 0:
                bucket[packet] = bucket.get(packet, 0.0) + dt
        if overhead > 0:
            share = overhead / n
            for packet in range(n):
                bucket[packet] = bucket.get(packet, 0.0) + share

    # streams that cross links: consecutive specs on different stages;
    # FINAL buffers (the once-per-run reduction flush) stay under the
    # FINAL_PACKET key and are charged as drain, not per-packet traffic
    link_bytes: list[dict[int, int]] = [dict() for _ in range(env.m - 1)]
    for a, b in zip(specs, specs[1:]):
        if b.placement > a.placement:
            stream_name = f"{a.name}->{b.name}"
            per = run.stream_by_packet.get(stream_name, {})
            for link in range(a.placement, b.placement):
                bucket = link_bytes[link]
                for packet, nbytes in per.items():
                    key = packet if packet >= 0 else FINAL_PACKET
                    bucket[key] = bucket.get(key, 0) + nbytes
    modeled = None
    if _result is not None:
        # cost-model compute time per packet at testbed speed (width 1,
        # whichever unit: the paper's units are homogeneous)
        modeled = sum(_result.tasks) / env.units[0].power
    return MeasuredRun(
        version=version,
        correct=correct,
        num_packets=workload.num_packets,
        stage_seconds=stage_seconds,
        link_bytes=link_bytes,
        run=run,
        modeled_packet_seconds=modeled,
        trace=trace,
    )


# ---------------------------------------------------------------------------
# Simulation of the paper's configurations
# ---------------------------------------------------------------------------


def simulate_measured(
    measured: MeasuredRun, env: PipelineEnv, net_scale: float = 1.0
) -> SimReport:
    """Predict the run on ``env`` from width-1 measurements: per-packet
    compute times are measured, link times are bytes/bandwidth + latency.

    ``net_scale`` slows the network by the Python-vs-testbed calibration
    factor (see :func:`calibrate_net_scale`) so the compute:bandwidth
    ratio matches the paper's cluster."""
    n = measured.num_packets

    def comp_fn(j: int) -> Callable[[int], float]:
        per = measured.stage_seconds[j]
        return lambda k: per.get(k, 0.0)

    def link_fn(j: int) -> Callable[[int], float]:
        per = measured.link_bytes[j]
        link = env.links[j]
        return lambda k: (
            per.get(k, 0) / link.bandwidth + link.latency
        ) * net_scale

    comp_times = [comp_fn(j) for j in range(env.m)]
    link_times = [link_fn(j) for j in range(env.m - 1)]
    widths = [u.width for u in env.units]
    report = simulate_pipeline(comp_times, link_times, widths, n)
    # drain: the final reduction flush crosses each link once per run, at
    # testbed bandwidth (it is not part of the steady-state pipeline the
    # calibration preserves — see DESIGN.md)
    drain = 0.0
    for j, link in enumerate(env.links):
        final_bytes = measured.link_bytes[j].get(FINAL_PACKET, 0)
        if final_bytes:
            drain += final_bytes / link.bandwidth + link.latency
    report.makespan += drain
    return report


def calibrate_net_scale(measured: MeasuredRun) -> float:
    """Python-vs-testbed slowdown: measured compute seconds per packet over
    the cost model's prediction at 700 MHz Pentium speed.  Slowing the
    simulated network by the same factor preserves the paper testbed's
    compute:bandwidth ratio (the substitution DESIGN.md documents)."""
    if not measured.modeled_packet_seconds or measured.modeled_packet_seconds <= 0:
        return 1.0
    ratio = measured.measured_packet_seconds() / measured.modeled_packet_seconds
    return max(ratio, 1.0)


@dataclass(slots=True)
class VersionTimes:
    """One row group of a §6 figure: a version's time per configuration."""

    version: str
    times: dict[str, float] = field(default_factory=dict)  # config -> seconds
    correct: bool = True
    link_bytes: list[int] = field(default_factory=list)

    def speedup(self, base_config: str, config: str) -> float:
        return self.times[base_config] / self.times[config]


def run_experiment(
    app: AppBundle,
    workload: Workload,
    versions: Sequence[str],
    configs: dict[str, PipelineEnv] | None = None,
    check: bool = True,
    options: EngineOptions | None = None,
    engine: str | None = None,
    backend: str = "auto",
) -> dict[str, VersionTimes]:
    """Measure each version once, simulate each configuration."""
    # each measured run gets its own Trace (one shared collector would mix
    # versions in seconds_by_packet); per-run traces land on MeasuredRun
    opts = _resolve_options(options, engine).replace(trace=None)
    if configs is None:
        configs = {
            "1-1-1": cluster_config(1),
            "2-2-1": cluster_config(2),
            "4-4-1": cluster_config(4),
        }
    out: dict[str, VersionTimes] = {}
    # One network calibration per experiment, from the Decomp-Comp version
    # (least serialization overhead, so measured/modeled reflects compute):
    # the environment's compute:bandwidth ratio is version-independent.
    calib_version = "Decomp-Comp" if "Decomp-Comp" in versions else versions[0]
    calib_env = next(iter(configs.values()))
    calib = measure_version(
        app,
        workload,
        calib_version,
        env=calib_env,
        check=False,
        options=opts,
        backend=backend,
    )
    net_scale = calibrate_net_scale(calib)
    # Decomposition is environment-dependent (§4.1): compile per
    # configuration.  Configurations that pick the same plan reuse one
    # measurement (re-measuring adds only timing noise).
    cache: dict[tuple[str, str], MeasuredRun] = {}
    for version in versions:
        vt = VersionTimes(version=version)
        for config_name, env in configs.items():
            specs, result = _specs_for_version(
                app, workload, version, env, backend=backend
            )
            plan_key = str(result.plan) if result is not None else "manual"
            key = (version, plan_key)
            if key not in cache:
                cache[key] = measure_specs(
                    specs, result, workload, env, version, check=check, options=opts
                )
            measured = cache[key]
            vt.times[config_name] = simulate_measured(
                measured, env, net_scale
            ).makespan
            vt.correct = vt.correct and measured.correct
            if not vt.link_bytes:
                vt.link_bytes = [
                    measured.total_link_bytes(j)
                    for j in range(len(measured.link_bytes))
                ]
        out[version] = vt
    return out


# ---------------------------------------------------------------------------
# Cost-model validation (§4.3): measured spans vs OpCounter/VolumeModel
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CostModelRow:
    """One measured-vs-predicted observable of a decomposition plan."""

    kind: str  #: ``"compute"`` (a generated filter) or ``"link"``
    name: str  #: generated filter name, or ``"L<k>"``
    unit: int  #: 1-based computing unit (compute) or link index (link)
    detail: str  #: atom composition ("f1+f2") or crossing boundary
    predicted: float  #: s/packet at testbed speed, or bytes/packet
    measured: float  #: s/packet in this run, or bytes/packet

    @property
    def ratio(self) -> float:
        """measured / predicted (compute rows: the CPython-vs-testbed
        slowdown; link rows: ~1.0 when the VolumeModel is exact)."""
        if self.predicted <= 0:
            return float("inf") if self.measured > 0 else 1.0
        return self.measured / self.predicted


@dataclass(slots=True)
class CostModelReport:
    """The §4.3 cost models joined against one traced run."""

    app: str
    version: str
    plan: str
    engine: str
    rows: list[CostModelRow]
    #: codegen backend the measured pipeline was generated with
    backend: str = "scalar"

    def compute_rows(self) -> list[CostModelRow]:
        return [r for r in self.rows if r.kind == "compute"]

    def link_rows(self) -> list[CostModelRow]:
        return [r for r in self.rows if r.kind == "link"]

    def mean_ratio(self, kind: str) -> float:
        rows = [r for r in self.rows if r.kind == kind and r.predicted > 0]
        if not rows:
            return float("nan")
        return sum(r.ratio for r in rows) / len(rows)

    def calibration_factor(self) -> float:
        """The backend's execution-vs-model slowdown: mean measured/predicted
        ratio over the compute rows.  The cost model predicts testbed-speed
        ops, so the scalar backend's factor is the per-record interpreter
        overhead; the vector backend's factor collapses toward the NumPy
        kernel cost (see EXPERIMENTS.md, 'Cost-model calibration')."""
        return self.mean_ratio("compute")

    def table(self) -> str:
        """Markdown measured-vs-predicted table."""
        lines = [
            "| kind | name | unit | composition | predicted | measured | ratio |",
            "|------|------|-----:|-------------|----------:|---------:|------:|",
        ]
        for r in self.rows:
            if r.kind == "compute":
                pred = f"{r.predicted:.3e} s/pkt"
                meas = f"{r.measured:.3e} s/pkt"
            else:
                pred = f"{r.predicted:,.0f} B/pkt"
                meas = f"{r.measured:,.0f} B/pkt"
            lines.append(
                f"| {r.kind} | `{r.name}` | {r.unit} | {r.detail} "
                f"| {pred} | {meas} | {r.ratio:.2f} |"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"cost model vs {self.engine} run of {self.app}/{self.version} "
            f"(plan {self.plan}, {self.backend} backend): compute slowdown "
            f"x{self.calibration_factor():.1f} "
            f"(CPython vs modeled testbed ops), link bytes ratio "
            f"x{self.mean_ratio('link'):.2f}"
        )


def validate_cost_model(result, measured: MeasuredRun) -> CostModelReport:
    """Join measured per-filter spans and per-link bytes against the §4.3
    cost-model predictions for ``result``'s decomposition plan.

    Compute rows predict seconds/packet at testbed speed (OpCounter
    weighted ops over unit power), so their ratio is the CPython-vs-testbed
    slowdown — expect a large, roughly uniform factor.  Link rows predict
    bytes/packet from the VolumeModel, so their ratio should be ~1.
    """
    if measured.trace is None:
        raise ValueError(
            "MeasuredRun has no trace; measure with measure_specs/"
            "measure_version (engine-native tracing) first"
        )
    env = result.options.env
    plan = result.plan
    n = max(measured.num_packets, 1)
    rows: list[CostModelRow] = []
    for gf in result.pipeline.filters:
        atoms = plan.filters_on_unit(gf.unit)
        predicted = sum(result.tasks[i - 1] for i in atoms) / env.units[
            gf.unit - 1
        ].power
        per = measured.trace.seconds_by_packet(gf.name)
        samples = [v for packet, v in per.items() if packet >= 0]
        measured_s = sum(samples) / max(len(samples), 1)
        rows.append(
            CostModelRow(
                kind="compute",
                name=gf.name,
                unit=gf.unit,
                detail="+".join(f"f{i}" for i in atoms) or "(forward)",
                predicted=predicted,
                measured=measured_s,
            )
        )
    for j in range(env.m - 1):
        boundary = plan.last_filter_before_link(j + 1)
        predicted_bytes = float(result.volumes[boundary])
        per = measured.link_bytes[j]
        measured_bytes = sum(v for packet, v in per.items() if packet >= 0) / n
        rows.append(
            CostModelRow(
                kind="link",
                name=f"L{j + 1}",
                unit=j + 1,
                detail=f"after f{boundary}" if boundary else "raw input",
                predicted=predicted_bytes,
                measured=measured_bytes,
            )
        )
    return CostModelReport(
        app="?",  # the program AST is anonymous; cost_model_report fills it
        version=measured.version,
        plan=str(plan),
        engine=measured.trace.engine or "?",
        rows=rows,
        backend=result.pipeline.backend,
    )


def cost_model_report(
    app: AppBundle,
    workload: Workload,
    version: str = "Decomp-Comp",
    env: PipelineEnv | None = None,
    options: EngineOptions | None = None,
    objective: str = "total",
    backend: str = "auto",
) -> CostModelReport:
    """Compile, measure (traced), and validate in one call."""
    env = env or cluster_config(1)
    specs, result = _specs_for_version(
        app, workload, version, env, objective, backend=backend
    )
    if result is None:
        raise ValueError(
            f"{version} is hand-written; only compiled versions carry a "
            "cost model to validate"
        )
    measured = measure_specs(
        specs, result, workload, env, version, options=options
    )
    report = validate_cost_model(result, measured)
    report.app = app.name
    return report


def backend_calibration(
    app: AppBundle,
    workload: Workload,
    backends: Sequence[str] = ("scalar", "vector"),
    version: str = "Decomp-Comp",
    env: PipelineEnv | None = None,
    options: EngineOptions | None = None,
) -> dict[str, CostModelReport]:
    """Cost-model calibration per codegen backend: one traced run and
    :func:`validate_cost_model` join per backend.  The per-backend
    ``calibration_factor()`` is what EXPERIMENTS.md tabulates — the scalar
    backend pays per-record interpretation on top of the modeled ops, the
    vector backend executes them as NumPy kernels."""
    return {
        backend: cost_model_report(
            app, workload, version, env=env, options=options, backend=backend
        )
        for backend in backends
    }


def format_backend_calibration(
    reports: dict[str, CostModelReport]
) -> str:
    """Markdown table of per-backend calibration factors."""
    lines = [
        "| app | backend | compute slowdown (measured/predicted) | link bytes ratio |",
        "|-----|---------|--------------------------------------:|-----------------:|",
    ]
    for backend, rep in reports.items():
        lines.append(
            f"| {rep.app} | {backend} | x{rep.calibration_factor():.1f} "
            f"| x{rep.mean_ratio('link'):.2f} |"
        )
    return "\n".join(lines)


def format_results(
    title: str, results: dict[str, VersionTimes], configs: Sequence[str]
) -> str:
    """Figure-style text table."""
    lines = [f"=== {title} ==="]
    header = f"{'version':<16}" + "".join(f"{c:>12}" for c in configs)
    lines.append(header + f"{'bytes(L1)':>14}{'ok':>4}")
    for version, vt in results.items():
        row = f"{version:<16}" + "".join(
            f"{vt.times[c]:>12.4f}" for c in configs
        )
        l1 = vt.link_bytes[0] if vt.link_bytes else 0
        row += f"{l1:>14,}" + f"{'Y' if vt.correct else 'N':>4}"
        lines.append(row)
    return "\n".join(lines)
