"""The §6 experiment harness: measured computation + simulated grid,
reproducing every evaluation figure's shape."""

from .harness import (
    calibrate_net_scale,
    MeasuredRun,
    TimeAccumulator,
    VERSIONS,
    VersionTimes,
    format_results,
    measure_version,
    run_experiment,
    simulate_measured,
    timed_specs,
)

__all__ = [
    "calibrate_net_scale",
    "MeasuredRun",
    "TimeAccumulator",
    "VERSIONS",
    "VersionTimes",
    "format_results",
    "measure_version",
    "run_experiment",
    "simulate_measured",
    "timed_specs",
]

from .figures import (
    ALL_FIGURES,
    FigureResult,
    PaperSeries,
    ShapeCheck,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    run_all,
)

__all__ += [
    "ALL_FIGURES",
    "FigureResult",
    "PaperSeries",
    "ShapeCheck",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "run_all",
]
