"""Figure-by-figure reproduction of the §6 evaluation.

One function per evaluation figure (5-12).  Each returns a
:class:`FigureResult` carrying the measured series, the paper's reported
values, and shape checks.  EXPERIMENTS.md records paper-vs-measured from
these functions; the ``benchmarks/`` tree wraps them in pytest-benchmark.

The *shape* contract (see DESIGN.md): orderings must hold exactly
(Decomp beats Default everywhere; Manual is at least as fast as Comp;
speedups grow with pipeline width), factors must land within generous
documented bands — absolute numbers differ because the substrate is
CPython + a simulated grid rather than C++ on Myrinet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps import (
    make_active_pixels_app,
    make_knn_app,
    make_vmscope_app,
    make_zbuffer_app,
)
from ..datacutter.engine import EngineOptions
from .harness import VersionTimes, format_results, run_experiment

CONFIGS = ("1-1-1", "2-2-1", "4-4-1")


@dataclass(slots=True)
class PaperSeries:
    """What the paper reports for one figure (§6.3-6.5)."""

    description: str
    #: Decomp vs Default improvement at width 1 (fraction, e.g. 0.20)
    improvement: float | None = None
    #: compiler-decomposed speedups at widths 2 and 4
    speedup_w2: float | None = None
    speedup_w4: float | None = None
    #: Decomp-Manual vs Decomp-Comp factor (manual faster > 1)
    manual_over_comp: float | None = None


@dataclass(slots=True)
class ShapeCheck:
    name: str
    passed: bool
    detail: str


@dataclass(slots=True)
class FigureResult:
    figure: str
    title: str
    results: dict[str, VersionTimes]
    paper: PaperSeries
    checks: list[ShapeCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def improvement(self) -> float:
        d = self.results["Default"].times["1-1-1"]
        c = self.results["Decomp-Comp"].times["1-1-1"]
        return d / c - 1.0

    def speedup(self, config: str) -> float:
        return self.results["Decomp-Comp"].speedup("1-1-1", config)

    def manual_over_comp(self) -> float | None:
        if "Decomp-Manual" not in self.results:
            return None
        return (
            self.results["Decomp-Comp"].times["1-1-1"]
            / self.results["Decomp-Manual"].times["1-1-1"]
        )

    def report(self) -> str:
        lines = [format_results(f"{self.figure}: {self.title}", self.results, CONFIGS)]
        lines.append(f"paper: {self.paper.description}")
        lines.append(
            "measured: improvement=%.0f%%, speedups w2=%.2f w4=%.2f%s"
            % (
                100 * self.improvement(),
                self.speedup("2-2-1"),
                self.speedup("4-4-1"),
                (
                    ", manual/comp=%.2f" % self.manual_over_comp()
                    if self.manual_over_comp() is not None
                    else ""
                ),
            )
        )
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}: {check.detail}")
        return "\n".join(lines)


def _standard_checks(
    fig: FigureResult,
    improvement_band: tuple[float, float],
    speedup_w2_band: tuple[float, float],
    speedup_w4_band: tuple[float, float],
    manual_band: tuple[float, float] | None = None,
) -> None:
    """The shape assertions shared by every evaluation figure."""
    results = fig.results
    checks = fig.checks
    for vt in results.values():
        checks.append(
            ShapeCheck(
                f"{vt.version} correct",
                vt.correct,
                "output matches the sequential oracle",
            )
        )
    imp = fig.improvement()
    checks.append(
        ShapeCheck(
            "Decomp beats Default on every configuration",
            all(
                results["Decomp-Comp"].times[c] < results["Default"].times[c]
                for c in CONFIGS
            ),
            ", ".join(
                "%s: %.3f < %.3f"
                % (c, results["Decomp-Comp"].times[c], results["Default"].times[c])
                for c in CONFIGS
            ),
        )
    )
    checks.append(
        ShapeCheck(
            "improvement within band",
            improvement_band[0] <= imp <= improvement_band[1],
            f"{imp:.2f} in [{improvement_band[0]}, {improvement_band[1]}]",
        )
    )
    w2, w4 = fig.speedup("2-2-1"), fig.speedup("4-4-1")
    checks.append(
        ShapeCheck(
            "width speedups grow and land in bands",
            speedup_w2_band[0] <= w2 <= speedup_w2_band[1]
            and speedup_w4_band[0] <= w4 <= speedup_w4_band[1]
            and w4 >= w2 * 0.95,
            f"w2={w2:.2f} in {speedup_w2_band}, w4={w4:.2f} in {speedup_w4_band}",
        )
    )
    if manual_band is not None:
        factor = fig.manual_over_comp()
        assert factor is not None
        checks.append(
            ShapeCheck(
                "manual at least matches compiler version",
                manual_band[0] <= factor <= manual_band[1],
                f"comp/manual={factor:.2f} in {manual_band}",
            )
        )


# ---------------------------------------------------------------------------
# Figures 5-8: isosurface
# ---------------------------------------------------------------------------


def _iso_figure(
    figure: str,
    variant: str,
    dataset: str,
    paper: PaperSeries,
    num_packets: int,
    improvement_band: tuple[float, float],
    engine: str = "threaded",
    backend: str = "auto",
) -> FigureResult:
    app = make_zbuffer_app() if variant == "zbuffer" else make_active_pixels_app()
    workload = app.make_workload(dataset=dataset, num_packets=num_packets)
    results = run_experiment(
        app, workload, ["Default", "Decomp-Comp"],
        options=EngineOptions(engine=engine),
        backend=backend,
    )
    fig = FigureResult(
        figure=figure,
        title=f"isosurface {variant}, {dataset} dataset",
        results=results,
        paper=paper,
    )
    _standard_checks(
        fig,
        improvement_band=improvement_band,
        speedup_w2_band=(1.2, 2.6),
        speedup_w4_band=(1.6, 4.6),
    )
    return fig


def figure5(num_packets: int = 16, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _iso_figure(
        "Figure 5",
        "zbuffer",
        "small",
        PaperSeries(
            "Decomp ~20% faster on all configs; speedups 1.92 (w2), 3.34 (w4)",
            improvement=0.20,
            speedup_w2=1.92,
            speedup_w4=3.34,
        ),
        num_packets,
        improvement_band=(0.10, 4.0),
        engine=engine,
        backend=backend,
    )


def figure6(num_packets: int = 24, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _iso_figure(
        "Figure 6",
        "zbuffer",
        "large",
        PaperSeries(
            "Decomp 20-25% faster; speedups 1.99 (w2), 3.82 (w4)",
            improvement=0.225,
            speedup_w2=1.99,
            speedup_w4=3.82,
        ),
        num_packets,
        improvement_band=(0.10, 4.0),
        engine=engine,
        backend=backend,
    )


def figure7(num_packets: int = 16, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _iso_figure(
        "Figure 7",
        "active-pixels",
        "small",
        PaperSeries(
            "Decomp 15-25% faster; near-linear width speedups",
            improvement=0.20,
        ),
        num_packets,
        improvement_band=(0.10, 8.0),
        engine=engine,
        backend=backend,
    )


def figure8(num_packets: int = 24, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _iso_figure(
        "Figure 8",
        "active-pixels",
        "large",
        PaperSeries(
            "Decomp 15-25% faster; near-linear width speedups",
            improvement=0.20,
        ),
        num_packets,
        improvement_band=(0.10, 8.0),
        engine=engine,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# Figures 9-10: k-nearest neighbours
# ---------------------------------------------------------------------------


def _knn_figure(
    figure: str,
    k: int,
    paper: PaperSeries,
    n_points: int,
    num_packets: int,
    engine: str = "threaded",
    backend: str = "auto",
) -> FigureResult:
    app = make_knn_app(k=k)
    workload = app.make_workload(n_points=n_points, num_packets=num_packets)
    results = run_experiment(
        app, workload, ["Default", "Decomp-Comp", "Decomp-Manual"],
        options=EngineOptions(engine=engine),
        backend=backend,
    )
    fig = FigureResult(
        figure=figure,
        title=f"k-nearest neighbours, k={k}",
        results=results,
        paper=paper,
    )
    _standard_checks(
        fig,
        improvement_band=(1.0, 8.0),  # paper: ~1.5 (i.e. 150%)
        speedup_w2_band=(1.2, 2.6),
        speedup_w4_band=(1.6, 4.6),
        manual_band=(0.8, 8.0),  # paper: "no significant difference"
    )
    return fig


def figure9(
    n_points: int = 60_000, num_packets: int = 16, engine: str = "threaded",
    backend: str = "auto",
) -> FigureResult:
    return _knn_figure(
        "Figure 9",
        3,
        PaperSeries(
            "Decomp ~150% faster than Default; Comp ~ Manual",
            improvement=1.5,
            manual_over_comp=1.0,
        ),
        n_points,
        num_packets,
        engine=engine,
        backend=backend,
    )


def figure10(
    n_points: int = 60_000, num_packets: int = 16, engine: str = "threaded",
    backend: str = "auto",
) -> FigureResult:
    return _knn_figure(
        "Figure 10",
        200,
        PaperSeries(
            "Decomp ~150% faster than Default; Comp ~ Manual",
            improvement=1.5,
            manual_over_comp=1.0,
        ),
        n_points,
        num_packets,
        engine=engine,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# Figures 11-12: virtual microscope
# ---------------------------------------------------------------------------


def _vmscope_figure(
    figure: str,
    query: str,
    paper: PaperSeries,
    num_packets: int,
    speedup_w2_band: tuple[float, float],
    speedup_w4_band: tuple[float, float],
    engine: str = "threaded",
    backend: str = "auto",
) -> FigureResult:
    app = make_vmscope_app()
    workload = app.make_workload(query=query, num_packets=num_packets)
    results = run_experiment(
        app, workload, ["Default", "Decomp-Comp", "Decomp-Manual"],
        options=EngineOptions(engine=engine),
        backend=backend,
    )
    fig = FigureResult(
        figure=figure,
        title=f"virtual microscope, {query} query",
        results=results,
        paper=paper,
    )
    _standard_checks(
        fig,
        improvement_band=(0.2, 30.0),  # paper: ~0.4 (see EXPERIMENTS.md)
        speedup_w2_band=speedup_w2_band,
        speedup_w4_band=speedup_w4_band,
        manual_band=(1.0, 4.0),  # paper: manual faster by 10-50%
    )
    return fig


def figure11(num_packets: int = 16, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _vmscope_figure(
        "Figure 11",
        "small",
        PaperSeries(
            "small query: limited speedups (load imbalance); Comp ~20% "
            "slower than Manual, ~40% faster than Default at width 1",
            improvement=0.4,
            manual_over_comp=1.2,
        ),
        num_packets,
        # the paper's point: the small query does NOT scale well
        speedup_w2_band=(0.7, 2.1),
        speedup_w4_band=(0.7, 3.0),
        engine=engine,
        backend=backend,
    )


def figure12(num_packets: int = 16, engine: str = "threaded",
            backend: str = "auto") -> FigureResult:
    return _vmscope_figure(
        "Figure 12",
        "large",
        PaperSeries(
            "large query: good speedups; Comp 10-50% slower than Manual; "
            "Decomp ~40% faster than Default",
            improvement=0.4,
            manual_over_comp=1.3,
        ),
        num_packets,
        speedup_w2_band=(1.2, 2.1),
        speedup_w4_band=(1.4, 4.4),
        engine=engine,
        backend=backend,
    )


ALL_FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
}


def run_all(
    fast: bool = True, engine: str = "threaded", backend: str = "auto"
) -> dict[str, FigureResult]:
    """Run every evaluation figure (used by EXPERIMENTS.md regeneration)."""
    out: dict[str, FigureResult] = {}
    for name, fn in ALL_FIGURES.items():
        out[name] = fn(engine=engine, backend=backend)
    return out
