"""Isosurface rendering with z-buffers (paper §3, Figure 1, §6.3).

The dialect source mirrors Figure 1: cubes are divided into packets; each
packet's cubes are tested against the isovalue (the rejection conditional
the compiler pushes to the data nodes in the Decomp version), triangles are
extracted and projected, and splats accumulate onto a per-packet z-buffer
that is merged into the global one.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...analysis.workload import WorkloadProfile
from ...lang.intrinsics import Intrinsic, IntrinsicRegistry, OpCount
from ...lang.types import DOUBLE, INT, VOID, ArrayType
from ..common import AppBundle, Workload
from ..datasets import CubeDataset, make_cube_dataset
from . import kernels

ISO_SOURCE_TEMPLATE = """
native Rectdomain<1, Cube> read_cubes();
native double[] extract_triangles(double[] vals, double x, double y, double z,
                                  double isoval);
native double[] project_triangles(double[] tris, double angle, double extent,
                                  int width, int height);
native double[] rasterize_triangles(double[] stris, int width, int height);
native void display({red_class} r);

class Cube {{
    double x;
    double y;
    double z;
    double[] vals;
    double minval;
    double maxval;
}}

class {red_class} implements Reducinterface {{
    {red_fields}
    void accum(double[] frags) {{ return; }}
    void merge({red_class} other) {{ return; }}
}}

class Render {{
    void render(double isoval, double angle, double extent, int width, int height) {{
        runtime_define int num_packets;
        Rectdomain<1, Cube> cubes = read_cubes();
        {red_class} result = new {red_class}();
        PipelinedLoop (p in cubes) {{
            {red_class} local = new {red_class}();
            foreach (c in p) {{
                if (c.minval <= isoval && c.maxval >= isoval) {{
                    double[] tris = extract_triangles(c.vals, c.x, c.y, c.z, isoval);
                    double[] stris = project_triangles(tris, angle, extent,
                                                       width, height);
                    double[] frags = rasterize_triangles(stris, width, height);
                    local.accum(frags);
                }}
            }}
            result.merge(local);
        }}
        display(result);
    }}
}}
"""

ZBUFFER_SOURCE = ISO_SOURCE_TEMPLATE.format(
    red_class="ZBuffer",
    red_fields="double[] depth;\n    double[] color;",
)

_D = DOUBLE
_DA = ArrayType(DOUBLE)


def make_iso_registry(red_class: str) -> IntrinsicRegistry:
    """Intrinsics with analysis summaries (reads/writes/cost) for the
    isosurface kernels.  Costs are per call; ``scale.tris`` is the average
    triangle count per *accepted* cube from the workload profile."""
    return IntrinsicRegistry(
        [
            Intrinsic(
                "read_cubes",
                (),
                None,  # type: ignore[arg-type]
                fn=lambda: None,
                reads=(),
                writes=("return",),
            ),
            Intrinsic(
                "extract_triangles",
                (_DA, _D, _D, _D, _D),
                _DA,
                fn=kernels.extract_triangles,
                batch_fn=kernels.batch_extract_triangles,
                reads=("vals", "x", "y", "z", "isoval"),
                writes=("return",),
                cost=lambda p: OpCount(flops=90, iops=40, branches=14),
                out_scale=lambda p: p.get("scale.tris", 2.0),
            ),
            Intrinsic(
                "project_triangles",
                (_DA, _D, _D, INT, INT),
                _DA,
                fn=kernels.project_triangles,
                batch_fn=kernels.batch_project_triangles,
                reads=("tris", "angle", "extent", "width", "height"),
                writes=("return",),
                cost=lambda p: OpCount(
                    flops=55.0 * p.get("scale.tris", 2.0),
                    iops=12.0 * p.get("scale.tris", 2.0),
                    branches=4.0 * p.get("scale.tris", 2.0),
                ),
                out_scale=lambda p: p.get("scale.tris", 2.0),
            ),
            Intrinsic(
                "rasterize_triangles",
                (_DA, INT, INT),
                _DA,
                fn=kernels.rasterize_triangles,
                batch_fn=kernels.batch_rasterize_triangles,
                reads=("stris", "width", "height"),
                writes=("return",),
                # barycentric test + interpolation per candidate pixel
                cost=lambda p: OpCount(
                    flops=14.0 * p.get("scale.frags", 8.0) * 1.6,
                    iops=6.0 * p.get("scale.frags", 8.0) * 1.6,
                    branches=4.0 * p.get("scale.frags", 8.0) * 1.6,
                ),
                out_scale=lambda p: p.get("scale.frags", 8.0),
            ),
            Intrinsic(
                "display",
                (),
                VOID,
                fn=lambda r: None,
                reads=("r",),
                writes=(),
            ),
        ]
    )


def _measure_profile(
    dataset: CubeDataset,
    num_packets: int,
    isoval: float,
    width: int,
    height: int,
) -> WorkloadProfile:
    """Workload knowledge the compiler needs (§4.3): packet sizes, the
    rejection-test selectivity, triangles per accepted cube (sampled)."""
    sel = dataset.selectivity(isoval)
    # random sample: a strided one aliases with the grid axes and can miss
    # the (spatially coherent) accepted cubes entirely
    rng = np.random.default_rng(12345)
    sample = rng.choice(
        dataset.n_cubes, size=min(400, dataset.n_cubes), replace=False
    )
    tri_counts: list[float] = []
    frag_counts: list[float] = []
    extent = float(max(dataset.grid_shape))
    for i in sample:
        if dataset.minval[i] <= isoval <= dataset.maxval[i]:
            tris = kernels.extract_triangles(
                dataset.vals[i], dataset.xs[i], dataset.ys[i], dataset.zs[i], isoval
            )
            tri_counts.append(len(tris) / 9)
            stris = kernels.project_triangles(tris, 0.6, extent, width, height)
            frags = kernels.rasterize_triangles(stris, width, height)
            frag_counts.append(len(frags) / 4)
    scale_tris = float(np.mean(tri_counts)) if tri_counts else 1.0
    scale_frags = float(np.mean(frag_counts)) if frag_counts else 1.0
    return WorkloadProfile(
        {
            "num_packets": float(num_packets),
            "packet_size": dataset.n_cubes / num_packets,
            "sel.g0": max(sel, 1e-6),
            "scale.tris": max(scale_tris, 1e-6),
            "scale.frags": max(scale_frags, 1e-6),
            "tris": scale_tris * 9.0,
            "stris": scale_tris * 10.0,
            "frags": scale_frags * 4.0,
            "zbuf.pixels": float(width * height),
        }
    )


def iso_size_hints(width: int, height: int) -> dict[str, object]:
    return {
        "Cube.vals": 8,
        "tris": "tris",  # average floats per record, from the profile
        "stris": "stris",
        "frags": "frags",
        "ZBuffer.depth": "zbuf.pixels",
        "ZBuffer.color": "zbuf.pixels",
        "ActivePixels.idx": "apix.count",
        "ActivePixels.depth": "apix.count",
        "ActivePixels.color": "apix.count",
    }


def iso_method_costs(red_class: str) -> dict[str, object]:
    """Cost summaries for the reduction methods (their dialect bodies are
    stubs backed by the runtime classes)."""
    if red_class == "ZBuffer":
        return {
            "ZBuffer.accum": lambda p: OpCount(
                flops=2.0 * p.get("scale.frags", 8.0),
                iops=6.0 * p.get("scale.frags", 8.0),
                branches=2.0 * p.get("scale.frags", 8.0),
            ),
            # dense merge touches every pixel once per packet
            "ZBuffer.merge": lambda p: OpCount(
                flops=0.0,
                iops=2.0 * p.get("zbuf.pixels", 4096.0),
                branches=1.0 * p.get("zbuf.pixels", 4096.0),
            ),
        }
    return {
        "ActivePixels.accum": lambda p: OpCount(
            flops=0.0,
            iops=6.0 * p.get("scale.frags", 8.0),
            branches=1.0 * p.get("scale.frags", 8.0),
        ),
        # sparse merge cost scales with active pixels, not the screen
        "ActivePixels.merge": lambda p: OpCount(
            flops=0.0,
            iops=8.0 * p.get("apix.count", 512.0),
            branches=2.0 * p.get("apix.count", 512.0),
        ),
    }


def _make_workload(
    red_factory,
    grid: tuple[int, int, int],
    num_packets: int,
    isoval: float | None,
    width: int,
    height: int,
    seed: int,
    label: str,
) -> Workload:
    dataset = make_cube_dataset(grid, seed=seed)
    if isoval is None:
        isoval = pick_isovalue(dataset)
    packets = dataset.packets(num_packets)
    extent = float(max(dataset.grid_shape))
    params: dict[str, Any] = {
        "isoval": isoval,
        "angle": 0.6,
        "extent": extent,
        "width": width,
        "height": height,
        "num_packets": num_packets,
    }
    profile = _measure_profile(dataset, num_packets, isoval, width, height)

    def oracle():
        acc = red_factory()
        for i in range(dataset.n_cubes):
            if dataset.minval[i] <= isoval <= dataset.maxval[i]:
                tris = kernels.extract_triangles(
                    dataset.vals[i],
                    dataset.xs[i],
                    dataset.ys[i],
                    dataset.zs[i],
                    isoval,
                )
                stris = kernels.project_triangles(
                    tris, params["angle"], extent, width, height
                )
                frags = kernels.rasterize_triangles(stris, width, height)
                acc.accum(frags)
        return acc

    def check(final_payload: dict[str, Any], expected) -> bool:
        got = final_payload["result"]
        return bool(np.array_equal(got.image(), expected.image()))

    return Workload(
        packets=packets,
        params=params,
        profile=profile,
        oracle=oracle,
        check=check,
        label=label,
    )


#: the paper's dataset scale names, shrunk to laptop size (the paper's
#: small:large time-step ratio is 150 MB : 600 MB = 4x; ours matches in
#: cube count)
GRIDS = {
    "tiny": (8, 8, 8),
    "small": (24, 24, 24),
    "large": (38, 38, 38),
}


def pick_isovalue(dataset: CubeDataset, target_sel: float = 0.12) -> float:
    """Choose the isovalue whose cube-rejection selectivity is closest to
    ``target_sel`` — standing in for the paper's user-supplied isovalue on
    the ParSSim data (their decompositions benefited from a comparable
    rejection rate)."""
    candidates = np.quantile(
        (dataset.minval + dataset.maxval) / 2, np.linspace(0.05, 0.95, 19)
    )
    best, best_gap = float(candidates[0]), float("inf")
    for v in candidates:
        gap = abs(dataset.selectivity(float(v)) - target_sel)
        if gap < best_gap:
            best, best_gap = float(v), gap
    return best


def make_zbuffer_app(width: int = 200, height: int = 200) -> AppBundle:
    red_cls = kernels.make_zbuffer_class(width, height)

    def make_workload(
        dataset: str = "small",
        num_packets: int = 8,
        isoval: float | None = None,
        seed: int = 7,
    ) -> Workload:
        return _make_workload(
            red_cls,
            GRIDS[dataset],
            num_packets,
            isoval,
            width,
            height,
            seed,
            label=f"zbuffer/{dataset}",
        )

    return AppBundle(
        name="iso-zbuffer",
        source=ZBUFFER_SOURCE,
        registry=make_iso_registry("ZBuffer"),
        runtime_classes={"ZBuffer": red_cls},
        size_hints=iso_size_hints(width, height),
        make_workload=make_workload,
        method_costs=iso_method_costs("ZBuffer"),
        notes="Isosurface rendering, dense z-buffer algorithm (Figs 5-6).",
    )
