"""Numeric kernels for isosurface rendering (paper §3, §6.3).

The pipeline structure lives in the dialect sources; these NumPy kernels
implement the per-cube geometry:

* :func:`extract_triangles` — a simplified marching-cubes step: find the
  cube edges the isosurface crosses, interpolate crossing points, and
  triangulate them as a fan.  Not the full 256-case MC table, but data
  dependent and geometrically coherent, which is all the pipeline shape
  depends on (triangle count per accepted cube, floats per triangle).
* :func:`project_triangles` — rotate by the view angle, perspective-less
  projection to a W x H screen, clip, and emit splat points
  ``(px, py, depth, color)`` for accumulation.

Both carry analysis summaries (reads/writes/cost) when registered as
intrinsics — see :func:`make_iso_registry` in the app modules.

Each kernel also has a ``batch_*`` columnar form for the vector codegen
backend (:mod:`repro.codegen.vectorize`): one call per packet over whole
columns instead of one call per record.  The batch forms are written to be
**bit-identical** to folding the scalar kernel over the rows — they perform
the same elementwise IEEE operations in the same per-record order, only
gathered across records — which the differential tests rely on.
"""

from __future__ import annotations

import math

import numpy as np

from ...codegen.generated_registry import register_generated

#: cube corner coordinates in the order datasets.make_cube_dataset uses
_CORNERS = np.array(
    [
        (dx, dy, dz)
        for dx in (0, 1)
        for dy in (0, 1)
        for dz in (0, 1)
    ],
    dtype=np.float64,
)

#: the 12 cube edges as corner-index pairs
_EDGES = np.array(
    [
        (0, 1), (0, 2), (0, 4), (1, 3), (1, 5), (2, 3),
        (2, 6), (3, 7), (4, 5), (4, 6), (5, 7), (6, 7),
    ],
    dtype=np.int64,
)


def extract_triangles(
    vals: np.ndarray, x: float, y: float, z: float, isoval: float
) -> np.ndarray:
    """Triangles approximating the isosurface inside one cube.

    Returns a flat float64 array of length ``9 * n_triangles``
    (three xyz vertices per triangle); empty when the surface misses the
    cube."""
    vals = np.asarray(vals, dtype=np.float64)
    a = vals[_EDGES[:, 0]]
    b = vals[_EDGES[:, 1]]
    crossing = ((a - isoval) * (b - isoval)) < 0.0
    n_cross = int(crossing.sum())
    if n_cross < 3:
        return np.zeros(0, dtype=np.float64)
    denom = b[crossing] - a[crossing]
    t = (isoval - a[crossing]) / denom
    p0 = _CORNERS[_EDGES[crossing, 0]]
    p1 = _CORNERS[_EDGES[crossing, 1]]
    pts = p0 + t[:, None] * (p1 - p0)
    pts = pts + np.array([x, y, z])
    # fan triangulation around the first crossing point
    n_tris = n_cross - 2
    out = np.empty((n_tris, 9), dtype=np.float64)
    for k in range(n_tris):
        out[k, 0:3] = pts[0]
        out[k, 3:6] = pts[k + 1]
        out[k, 6:9] = pts[k + 2]
    return out.ravel()


def project_triangles(
    tris: np.ndarray,
    angle: float,
    grid_extent: float,
    width: int,
    height: int,
) -> np.ndarray:
    """Transform triangles to view coordinates and project to the screen.

    Returns screen-space triangle records, flat 10-value tuples
    ``(px0, px1, px2, py0, py1, py2, depth0, depth1, depth2, color)``;
    ``color`` encodes the surface orientation (a cheap shading proxy).
    Rasterization (:func:`rasterize_triangles`) turns these into
    per-pixel fragments."""
    tris = np.asarray(tris, dtype=np.float64)
    if tris.size == 0:
        return np.zeros(0, dtype=np.float64)
    v = tris.reshape(-1, 3, 3)
    ca, sa = math.cos(angle), math.sin(angle)
    xr = v[:, :, 0] * ca - v[:, :, 2] * sa
    zr = v[:, :, 0] * sa + v[:, :, 2] * ca
    yr = v[:, :, 1]
    # orthographic projection filling the screen; rotation can push points
    # up to extent*sqrt(2)/2 from the axis, hence the 1.5 margin
    half = grid_extent * 0.75
    px = (xr - grid_extent / 2 + half) * (width - 1) / (2 * half)
    py = (yr - grid_extent / 2 + half) * (height - 1) / (2 * half)
    depth = zr
    # shading proxy: triangle normal's z component
    e1 = v[:, 1, :] - v[:, 0, :]
    e2 = v[:, 2, :] - v[:, 0, :]
    normal_z = e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0]
    norm = np.sqrt((e1**2).sum(axis=1) * (e2**2).sum(axis=1)) + 1e-12
    color = 0.5 + 0.5 * np.abs(normal_z) / norm

    n = len(v)
    out = np.empty((n, 10), dtype=np.float64)
    out[:, 0:3] = px
    out[:, 3:6] = py
    out[:, 6:9] = depth
    out[:, 9] = color
    return out.ravel()


def rasterize_triangles(
    screen_tris: np.ndarray, width: int, height: int
) -> np.ndarray:
    """Scan-convert projected triangles into fragments.

    Input: flat array of 10-value records ``(px0..2, py0..2, depth0..2,
    color)`` from :func:`project_triangles`.  Output: flat ``(px, py,
    depth, color)`` quadruples, one per covered pixel, with barycentric
    depth interpolation — the per-pixel work that makes rendering the
    compute-heavy stage of the pipeline (§6.3)."""
    tris = np.asarray(screen_tris, dtype=np.float64)
    if tris.size == 0:
        return np.zeros(0, dtype=np.float64)
    recs = tris.reshape(-1, 10)
    frags: list[np.ndarray] = []
    for rec in recs:
        xs, ys, zs, color = rec[0:3], rec[3:6], rec[6:9], rec[9]
        x_min = max(int(np.floor(xs.min())), 0)
        x_max = min(int(np.ceil(xs.max())), width - 1)
        y_min = max(int(np.floor(ys.min())), 0)
        y_max = min(int(np.ceil(ys.max())), height - 1)
        if x_min > x_max or y_min > y_max:
            continue
        gx, gy = np.meshgrid(
            np.arange(x_min, x_max + 1), np.arange(y_min, y_max + 1)
        )
        # barycentric coordinates
        d = (ys[1] - ys[2]) * (xs[0] - xs[2]) + (xs[2] - xs[1]) * (ys[0] - ys[2])
        if abs(d) < 1e-12:
            continue
        l0 = ((ys[1] - ys[2]) * (gx - xs[2]) + (xs[2] - xs[1]) * (gy - ys[2])) / d
        l1 = ((ys[2] - ys[0]) * (gx - xs[2]) + (xs[0] - xs[2]) * (gy - ys[2])) / d
        l2 = 1.0 - l0 - l1
        inside = (l0 >= -1e-9) & (l1 >= -1e-9) & (l2 >= -1e-9)
        if not inside.any():
            continue
        depth = l0 * zs[0] + l1 * zs[1] + l2 * zs[2]
        out = np.empty((int(inside.sum()), 4))
        out[:, 0] = gx[inside]
        out[:, 1] = gy[inside]
        out[:, 2] = depth[inside]
        out[:, 3] = color
        frags.append(out.ravel())
    if not frags:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(frags)


# ---------------------------------------------------------------------------
# Columnar (batch) kernel forms for the vector backend
# ---------------------------------------------------------------------------


def _as_ragged_pair(col) -> tuple[np.ndarray, np.ndarray]:
    """Accept a (values, offsets) pair or a fixed (n, L) array."""
    if isinstance(col, tuple):
        values, offsets = col
        return (
            np.asarray(values, dtype=np.float64).reshape(-1),
            np.asarray(offsets, dtype=np.int64),
        )
    arr = np.asarray(col, dtype=np.float64)
    n, length = arr.shape
    return arr.reshape(-1), np.arange(n + 1, dtype=np.int64) * length


def batch_extract_triangles(vals, x, y, z, isoval):
    """Columnar :func:`extract_triangles`: all cubes of a packet at once.

    ``vals`` is the (n, 8) corner-value column (or ragged pair with uniform
    rows); ``x``/``y``/``z`` are 1-D columns; ``isoval`` broadcasts.
    Returns the triangle lists as one ragged pair."""
    if isinstance(vals, tuple):
        raw, off = vals
        n = len(off) - 1
        vals2 = np.asarray(raw, dtype=np.float64).reshape(n, -1)
    else:
        vals2 = np.asarray(vals, dtype=np.float64)
        n = len(vals2)
    if n == 0:
        return np.zeros(0, dtype=np.float64), np.zeros(1, dtype=np.int64)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)

    a = vals2[:, _EDGES[:, 0]]
    b = vals2[:, _EDGES[:, 1]]
    crossing = ((a - isoval) * (b - isoval)) < 0.0  # (n, 12)
    n_cross = crossing.sum(axis=1)
    # np.nonzero is row-major: crossing points appear per cube, in edge
    # order — exactly the order the scalar kernel's boolean selection uses
    cube_idx, edge_idx = np.nonzero(crossing)
    ac = a[cube_idx, edge_idx]
    bc = b[cube_idx, edge_idx]
    t = (isoval - ac) / (bc - ac)
    p0 = _CORNERS[_EDGES[edge_idx, 0]]
    p1 = _CORNERS[_EDGES[edge_idx, 1]]
    pts = p0 + t[:, None] * (p1 - p0)
    pts = pts + np.stack([x, y, z], axis=1)[cube_idx]

    n_tris = np.where(n_cross >= 3, n_cross - 2, 0)
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(9 * n_tris, out=out_offsets[1:])
    total = int(n_tris.sum())
    if total == 0:
        return np.zeros(0, dtype=np.float64), out_offsets

    pts_start = np.zeros(n, dtype=np.int64)
    pts_start[1:] = np.cumsum(n_cross)[:-1]
    tri_start = np.zeros(n, dtype=np.int64)
    tri_start[1:] = np.cumsum(n_tris)[:-1]
    tri_cube = np.repeat(np.arange(n, dtype=np.int64), n_tris)
    # fan triangulation: triangle k of a cube is (pts[0], pts[k+1], pts[k+2])
    k = np.arange(total, dtype=np.int64) - tri_start[tri_cube]
    base = pts_start[tri_cube]
    out = np.empty((total, 9), dtype=np.float64)
    out[:, 0:3] = pts[base]
    out[:, 3:6] = pts[base + k + 1]
    out[:, 6:9] = pts[base + k + 2]
    return out.ravel(), out_offsets


def batch_project_triangles(tris, angle, grid_extent, width, height):
    """Columnar :func:`project_triangles`.

    Projection is elementwise per triangle, so one call over the
    concatenated triangle values is bit-identical to per-cube calls; only
    the offsets need rescaling (9 floats per input triangle -> 10 per
    screen record)."""
    values, offsets = _as_ragged_pair(tris)
    out = project_triangles(values, angle, grid_extent, width, height)
    if out.size == 0:
        out = np.zeros(0, dtype=np.float64)
    return out, offsets // 9 * 10


def batch_rasterize_triangles(stris, width, height):
    """Columnar :func:`rasterize_triangles`: every triangle of the packet
    scan-converted in one flat computation.

    Fragment order is preserved: triangles stay in record order and pixels
    within a triangle keep the scalar kernel's meshgrid-ravel order
    (y-rows outer, x fastest)."""
    values, offsets = _as_ragged_pair(stris)
    recs = values.reshape(-1, 10)
    n = len(offsets) - 1
    recs_per_cube = (offsets[1:] - offsets[:-1]) // 10
    m = len(recs)
    empty = np.zeros(0, dtype=np.float64)
    if m == 0:
        return empty, np.zeros(n + 1, dtype=np.int64)
    xs, ys, zs, color = recs[:, 0:3], recs[:, 3:6], recs[:, 6:9], recs[:, 9]
    x_min = np.maximum(np.floor(xs.min(axis=1)).astype(np.int64), 0)
    x_max = np.minimum(np.ceil(xs.max(axis=1)).astype(np.int64), width - 1)
    y_min = np.maximum(np.floor(ys.min(axis=1)).astype(np.int64), 0)
    y_max = np.minimum(np.ceil(ys.max(axis=1)).astype(np.int64), height - 1)
    d = (ys[:, 1] - ys[:, 2]) * (xs[:, 0] - xs[:, 2]) + (
        xs[:, 2] - xs[:, 1]
    ) * (ys[:, 0] - ys[:, 2])
    valid = (x_min <= x_max) & (y_min <= y_max) & (np.abs(d) >= 1e-12)
    nx = np.where(valid, x_max - x_min + 1, 0)
    npix = nx * np.where(valid, y_max - y_min + 1, 0)
    total = int(npix.sum())
    frag_per_rec = np.zeros(m, dtype=np.int64)
    if total:
        starts = np.zeros(m, dtype=np.int64)
        starts[1:] = np.cumsum(npix)[:-1]
        rid = np.repeat(np.arange(m, dtype=np.int64), npix)
        within = np.arange(total, dtype=np.int64) - starts[rid]
        nxr = nx[rid]
        gx = x_min[rid] + within % nxr
        gy = y_min[rid] + within // nxr
        dr = d[rid]
        l0 = (
            (ys[rid, 1] - ys[rid, 2]) * (gx - xs[rid, 2])
            + (xs[rid, 2] - xs[rid, 1]) * (gy - ys[rid, 2])
        ) / dr
        l1 = (
            (ys[rid, 2] - ys[rid, 0]) * (gx - xs[rid, 2])
            + (xs[rid, 0] - xs[rid, 2]) * (gy - ys[rid, 2])
        ) / dr
        l2 = 1.0 - l0 - l1
        inside = (l0 >= -1e-9) & (l1 >= -1e-9) & (l2 >= -1e-9)
        depth = l0 * zs[rid, 0] + l1 * zs[rid, 1] + l2 * zs[rid, 2]
        out = np.empty((int(inside.sum()), 4))
        out[:, 0] = gx[inside]
        out[:, 1] = gy[inside]
        out[:, 2] = depth[inside]
        out[:, 3] = color[rid][inside]
        np.add.at(frag_per_rec, rid[inside], 1)
        frags = out.ravel()
    else:
        frags = empty
    cum_rec = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(4 * frag_per_rec, out=cum_rec[1:])
    rec_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(recs_per_cube, out=rec_bounds[1:])
    return frags, cum_rec[rec_bounds]


# ---------------------------------------------------------------------------
# Reduction classes: dense z-buffer and sparse active pixels (§6.1)
# ---------------------------------------------------------------------------


def make_zbuffer_class(width: int, height: int) -> type:
    """Dense z-buffer: a full depth + color plane per accumulator.

    This is the §6.3 z-buffer algorithm: cheap updates, expensive to
    allocate/communicate (width*height*16 bytes per partial)."""

    class ZBuffer:
        W, H = width, height

        def __init__(self) -> None:
            self.depth = np.full(width * height, np.inf)
            self.color = np.zeros(width * height)

        def accum(self, frags: np.ndarray) -> None:
            """Accumulate fragments (px, py, depth, color), vectorized.

            Equal depths tie-break by color so accumulation is fully
            commutative (foreach order-independence, §3)."""
            pts = np.asarray(frags, dtype=np.float64).reshape(-1, 4)
            if len(pts) == 0:
                return
            idx = pts[:, 1].astype(np.int64) * width + pts[:, 0].astype(np.int64)
            depth, color = pts[:, 2], pts[:, 3]
            # one survivor per pixel within the batch ...
            order = np.lexsort((color, depth, idx))
            idx, depth, color = idx[order], depth[order], color[order]
            first = np.ones(len(idx), dtype=bool)
            first[1:] = idx[1:] != idx[:-1]
            idx, depth, color = idx[first], depth[first], color[first]
            # ... then the batch winner against the buffer
            better = (depth < self.depth[idx]) | (
                (depth == self.depth[idx]) & (color < self.color[idx])
            )
            self.depth[idx[better]] = depth[better]
            self.color[idx[better]] = color[better]

        def batch_accum(self, frags) -> None:
            """Columnar accum: all fragment lists of a packet at once.

            The surviving (depth, color) per pixel is the lexicographic
            minimum over buffer and fragments, so one accumulation over the
            concatenated fragments equals folding accum row by row."""
            values = frags[0] if isinstance(frags, tuple) else frags
            self.accum(np.asarray(values, dtype=np.float64).reshape(-1))

        def merge(self, other: "ZBuffer") -> None:
            closer = (other.depth < self.depth) | (
                (other.depth == self.depth) & (other.color < self.color)
            )
            self.depth[closer] = other.depth[closer]
            self.color[closer] = other.color[closer]

        def pack(self) -> dict[str, np.ndarray]:
            return {"depth": self.depth.copy(), "color": self.color.copy()}

        @classmethod
        def unpack(cls, packed: dict[str, np.ndarray]) -> "ZBuffer":
            obj = cls()
            obj.depth = packed["depth"].copy()
            obj.color = packed["color"].copy()
            return obj

        # -- test/bench helpers ------------------------------------------
        def covered_pixels(self) -> int:
            return int(np.isfinite(self.depth).sum())

        def image(self) -> np.ndarray:
            img = np.zeros(width * height)
            covered = np.isfinite(self.depth)
            img[covered] = self.color[covered]
            return img.reshape(height, width)

        @property
        def nbytes(self) -> int:
            return self.depth.nbytes + self.color.nbytes

    ZBuffer.__name__ = f"ZBuffer{width}x{height}"
    # anchor for pickling across the process engine boundary
    return register_generated(ZBuffer)


def make_active_pixels_class(width: int, height: int) -> type:
    """Sparse z-buffer (the §6.3 *active pixels* algorithm): only pixels
    actually touched are stored and communicated — it "avoids allocating,
    initializing, or communicating a full z-buffer"."""

    class ActivePixels:
        W, H = width, height

        def __init__(self) -> None:
            self.idx = np.zeros(0, dtype=np.int64)
            self.depth = np.zeros(0)
            self.color = np.zeros(0)

        def accum(self, frags: np.ndarray) -> None:
            pts = np.asarray(frags, dtype=np.float64).reshape(-1, 4)
            if len(pts) == 0:
                return
            ix = pts[:, 0].astype(np.int64)
            iy = pts[:, 1].astype(np.int64)
            idx = iy * width + ix
            self.idx = np.concatenate([self.idx, idx])
            self.depth = np.concatenate([self.depth, pts[:, 2]])
            self.color = np.concatenate([self.color, pts[:, 3]])
            if len(self.idx) > 8 * width:  # keep the sparse set compact
                self._compact()

        def _compact(self) -> None:
            if len(self.idx) == 0:
                return
            # sort by pixel, then depth, then color: the survivor per pixel
            # is order-independent even under depth ties
            order = np.lexsort((self.color, self.depth, self.idx))
            idx = self.idx[order]
            first = np.ones(len(idx), dtype=bool)
            first[1:] = idx[1:] != idx[:-1]
            self.idx = idx[first]
            self.depth = self.depth[order][first]
            self.color = self.color[order][first]

        def batch_accum(self, frags) -> None:
            """Columnar accum; canonical on pack()/_compact(), so the
            packed state matches the scalar fold byte for byte."""
            values = frags[0] if isinstance(frags, tuple) else frags
            self.accum(np.asarray(values, dtype=np.float64).reshape(-1))

        def merge(self, other: "ActivePixels") -> None:
            self.idx = np.concatenate([self.idx, other.idx])
            self.depth = np.concatenate([self.depth, other.depth])
            self.color = np.concatenate([self.color, other.color])
            self._compact()

        def pack(self) -> dict[str, np.ndarray]:
            self._compact()
            return {
                "idx": self.idx.copy(),
                "depth": self.depth.copy(),
                "color": self.color.copy(),
            }

        @classmethod
        def unpack(cls, packed: dict[str, np.ndarray]) -> "ActivePixels":
            obj = cls()
            obj.idx = packed["idx"].copy()
            obj.depth = packed["depth"].copy()
            obj.color = packed["color"].copy()
            return obj

        # -- test/bench helpers ------------------------------------------
        def covered_pixels(self) -> int:
            self._compact()
            return len(self.idx)

        def image(self) -> np.ndarray:
            self._compact()
            img = np.zeros(width * height)
            img[self.idx] = self.color
            return img.reshape(height, width)

        @property
        def nbytes(self) -> int:
            return self.idx.nbytes + self.depth.nbytes + self.color.nbytes

    ActivePixels.__name__ = f"ActivePixels{width}x{height}"
    return register_generated(ActivePixels)
