"""Isosurface rendering with active pixels (paper §6.1, §6.3).

Identical pipeline structure to the z-buffer variant — the paper notes the
initial steps (triangle extraction and transformation) are the same — but
the reduction object is the sparse :class:`ActivePixels` set, which avoids
allocating, initializing, or communicating a full z-buffer (Figs 7-8)."""

from __future__ import annotations

from .. import datasets  # noqa: F401 - re-exported context for docs
from ..common import AppBundle, Workload
from . import kernels
from .zbuffer import (
    GRIDS,
    ISO_SOURCE_TEMPLATE,
    _make_workload,
    iso_method_costs,
    iso_size_hints,
    make_iso_registry,
)

ACTIVE_PIXELS_SOURCE = ISO_SOURCE_TEMPLATE.format(
    red_class="ActivePixels",
    red_fields="long[] idx;\n    double[] depth;\n    double[] color;",
)


def make_active_pixels_app(width: int = 200, height: int = 200) -> AppBundle:
    red_cls = kernels.make_active_pixels_class(width, height)

    def make_workload(
        dataset: str = "small",
        num_packets: int = 8,
        isoval: float | None = None,
        seed: int = 7,
    ) -> Workload:
        wl = _make_workload(
            red_cls,
            GRIDS[dataset],
            num_packets,
            isoval,
            width,
            height,
            seed,
            label=f"active-pixels/{dataset}",
        )
        # the sparse accumulator's expected size: bounded by fragment
        # count, capped by the screen (drives the partials' volume)
        frags = (
            wl.profile["packet_size"]
            * wl.profile["sel.g0"]
            * wl.profile["scale.frags"]
        )
        wl.profile.params["apix.count"] = min(frags, float(width * height))
        return wl

    return AppBundle(
        name="iso-active-pixels",
        source=ACTIVE_PIXELS_SOURCE,
        registry=make_iso_registry("ActivePixels"),
        runtime_classes={"ActivePixels": red_cls},
        size_hints=iso_size_hints(width, height),
        make_workload=make_workload,
        method_costs=iso_method_costs("ActivePixels"),
        notes="Isosurface rendering, sparse active-pixels algorithm (Figs 7-8).",
    )
