"""Isosurface rendering applications (paper §3, §6.3): the z-buffer and
active-pixels algorithms over synthetic ParSSim-like scalar grids."""

from .active_pixels import ACTIVE_PIXELS_SOURCE, make_active_pixels_app
from .kernels import (
    extract_triangles,
    make_active_pixels_class,
    make_zbuffer_class,
    project_triangles,
)
from .zbuffer import GRIDS, ZBUFFER_SOURCE, make_zbuffer_app

__all__ = [
    "ACTIVE_PIXELS_SOURCE",
    "GRIDS",
    "ZBUFFER_SOURCE",
    "extract_triangles",
    "make_active_pixels_app",
    "make_active_pixels_class",
    "make_zbuffer_app",
    "make_zbuffer_class",
    "project_triangles",
]
