"""k-nearest-neighbour search (paper §6.1, §6.4).

A data-mining kernel: find the k points closest to a query point.  The
compiler-decomposed version computes distances and the *local* candidate
set on the data nodes, shipping k candidates per packet instead of every
point — the source of the ~150% improvement over Default in Figures 9-10.

The dialect source computes the squared distance inline (pure arithmetic —
exercising the statement-level translation) and updates the bounded
candidate set through the reduction object's ``insert``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.workload import WorkloadProfile
from ..codegen.generated_registry import register_generated
from ..datacutter.buffers import Buffer
from ..datacutter.filters import Filter, FilterContext, FilterSpec, SourceFilter
from ..lang.intrinsics import Intrinsic, IntrinsicRegistry, OpCount
from ..lang.types import VOID
from .common import AppBundle, Workload
from .datasets import PointDataset, make_point_dataset

KNN_SOURCE = """
native Rectdomain<1, Point> read_points();
native void display(KNN r);

class Point {
    double x;
    double y;
    double z;
}

class KNN implements Reducinterface {
    double[] dist;
    double[] px;
    double[] py;
    double[] pz;
    void insert(double d, double x, double y, double z) { return; }
    void merge(KNN other) { return; }
}

class Search {
    void search(double qx, double qy, double qz) {
        runtime_define int num_packets;
        Rectdomain<1, Point> points = read_points();
        KNN result = new KNN();
        PipelinedLoop (p in points) {
            KNN local = new KNN();
            foreach (pt in p) {
                double dx = pt.x - qx;
                double dy = pt.y - qy;
                double dz = pt.z - qz;
                double d = dx * dx + dy * dy + dz * dz;
                local.insert(d, pt.x, pt.y, pt.z);
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


def make_knn_class(k: int) -> type:
    """Bounded candidate set: the k best (distance, x, y, z) tuples, with a
    deterministic lexicographic tie-break so accumulation is commutative."""

    class KNN:
        K = k

        def __init__(self) -> None:
            self.dist = np.zeros(0)
            self.px = np.zeros(0)
            self.py = np.zeros(0)
            self.pz = np.zeros(0)
            self._worst = -1  # cached argmax into dist (lazily refreshed)

        def insert(self, d: float, x: float, y: float, z: float) -> None:
            if len(self.dist) < k:
                self.dist = np.append(self.dist, d)
                self.px = np.append(self.px, x)
                self.py = np.append(self.py, y)
                self.pz = np.append(self.pz, z)
                self._worst = -1
                return
            if self._worst < 0:
                # lexicographic worst, so ties on distance resolve exactly
                # like the oracle's (d, x, y, z) ordering
                self._worst = int(
                    np.lexsort((self.pz, self.py, self.px, self.dist))[-1]
                )
            w = self._worst
            if (d, x, y, z) < (
                self.dist[w],
                self.px[w],
                self.py[w],
                self.pz[w],
            ):
                self.dist[w] = d
                self.px[w] = x
                self.py[w] = y
                self.pz[w] = z
                self._worst = -1

        def batch_insert(self, d, x, y, z) -> None:
            """Columnar form of :meth:`insert` for the vector backend: fold a
            whole packet of candidates at once.  Produces the same candidate
            *set* as the per-record fold (the k lexicographically smallest
            (d, x, y, z) tuples seen); the stored order is canonical rather
            than arrival order, which downstream ``merge``/``rows`` already
            normalize."""
            cols = [np.asarray(c, dtype=np.float64) for c in (d, x, y, z)]
            n = max((c.shape[0] for c in cols if c.ndim), default=1)
            cols = [np.broadcast_to(c, (n,)) for c in cols]
            self.dist = np.concatenate([self.dist, cols[0]])
            self.px = np.concatenate([self.px, cols[1]])
            self.py = np.concatenate([self.py, cols[2]])
            self.pz = np.concatenate([self.pz, cols[3]])
            self._select_k()

        def merge(self, other: "KNN") -> None:
            self.dist = np.concatenate([self.dist, other.dist])
            self.px = np.concatenate([self.px, other.px])
            self.py = np.concatenate([self.py, other.py])
            self.pz = np.concatenate([self.pz, other.pz])
            self._select_k()

        def _select_k(self) -> None:
            if len(self.dist) > k:
                order = np.lexsort((self.pz, self.py, self.px, self.dist))[:k]
                self.dist = self.dist[order]
                self.px = self.px[order]
                self.py = self.py[order]
                self.pz = self.pz[order]
            self._worst = -1

        def pack(self) -> dict[str, np.ndarray]:
            return {
                "dist": self.dist.copy(),
                "px": self.px.copy(),
                "py": self.py.copy(),
                "pz": self.pz.copy(),
            }

        @classmethod
        def unpack(cls, packed: dict[str, np.ndarray]) -> "KNN":
            obj = cls()
            obj.dist = packed["dist"].copy()
            obj.px = packed["px"].copy()
            obj.py = packed["py"].copy()
            obj.pz = packed["pz"].copy()
            return obj

        def rows(self) -> np.ndarray:
            """Canonical sorted (dist, x, y, z) rows for comparison."""
            order = np.lexsort((self.pz, self.py, self.px, self.dist))
            return np.stack(
                [self.dist[order], self.px[order], self.py[order], self.pz[order]],
                axis=1,
            )

        @property
        def nbytes(self) -> int:
            return (
                self.dist.nbytes + self.px.nbytes + self.py.nbytes + self.pz.nbytes
            )

    KNN.__name__ = f"KNN{k}"
    # anchor for pickling across the process engine boundary
    return register_generated(KNN)


#: process-wide cache of registered lane classes — one stable pickle
#: anchor (and therefore one plan-cache identity) per (k, lanes) bucket
_LANE_CLASSES: dict[tuple[int, int], type] = {}


def make_knn_lanes_class(k: int, lanes: int) -> type:
    """Lane-batched candidate set: ``lanes`` independent k-NN searches
    folded by the *same* compiled pipeline in one pass.

    The fused plan ships the query point as ``(lanes, 1)``-shaped runtime
    params, so the generated per-record arithmetic broadcasts every
    distance to a ``(lanes, 1)`` column (scalar backend) or a
    ``(lanes, n)`` block (vector backend); this class folds those lane-wise
    exactly as :func:`make_knn_class` folds scalars, keeping the k
    lexicographically smallest (d, x, y, z) per lane.  ``pack`` flattens
    to the same 1-D wire shape the single-lane class ships; ``lane_rows``
    demuxes one lane's canonical result, byte-identical to a single-query
    run."""
    key = (k, lanes)
    cached = _LANE_CLASSES.get(key)
    if cached is not None:
        return cached
    # scalar inserts buffer into a pending list and fold in slabs, so the
    # per-record path stays O(1) numpy calls amortized
    cut_width = max(4 * k, 32)

    class KNNLanes:
        K = k
        LANES = lanes

        def __init__(self) -> None:
            self.dist = np.zeros((lanes, 0))
            self.px = np.zeros((lanes, 0))
            self.py = np.zeros((lanes, 0))
            self.pz = np.zeros((lanes, 0))
            self._pend: list[tuple[np.ndarray, float, float, float]] = []

        def insert(self, d, x: float, y: float, z: float) -> None:
            # d arrives (lanes, 1): the record's distance to every query
            self._pend.append(
                (
                    np.asarray(d, dtype=np.float64).reshape(lanes),
                    float(x),
                    float(y),
                    float(z),
                )
            )
            if len(self._pend) >= cut_width:
                self._flush()

        def _flush(self) -> None:
            if not self._pend:
                return
            m = len(self._pend)
            d = np.stack([p[0] for p in self._pend], axis=1)
            xs = np.array([p[1] for p in self._pend])
            ys = np.array([p[2] for p in self._pend])
            zs = np.array([p[3] for p in self._pend])
            self._pend = []
            self.dist = np.concatenate([self.dist, d], axis=1)
            self.px = np.concatenate(
                [self.px, np.broadcast_to(xs, (lanes, m))], axis=1
            )
            self.py = np.concatenate(
                [self.py, np.broadcast_to(ys, (lanes, m))], axis=1
            )
            self.pz = np.concatenate(
                [self.pz, np.broadcast_to(zs, (lanes, m))], axis=1
            )
            self._select_k()

        def batch_insert(self, d, x, y, z) -> None:
            """Columnar fold for the vector backend: ``d`` arrives
            ``(lanes, n)`` (packet columns broadcast against the
            ``(lanes, 1)`` query params), x/y/z as ``(n,)`` columns."""
            self._flush()
            d = np.asarray(d, dtype=np.float64)
            if d.ndim == 0:
                d = d.reshape(1)
            if d.ndim == 1:
                d = np.broadcast_to(d, (lanes, d.shape[0]))
            n = d.shape[1]
            cols = [
                np.broadcast_to(np.asarray(c, dtype=np.float64), (lanes, n))
                for c in (x, y, z)
            ]
            self.dist = np.concatenate([self.dist, d], axis=1)
            self.px = np.concatenate([self.px, cols[0]], axis=1)
            self.py = np.concatenate([self.py, cols[1]], axis=1)
            self.pz = np.concatenate([self.pz, cols[2]], axis=1)
            self._select_k()

        def merge(self, other: "KNNLanes") -> None:
            self._flush()
            other._flush()
            self.dist = np.concatenate([self.dist, other.dist], axis=1)
            self.px = np.concatenate([self.px, other.px], axis=1)
            self.py = np.concatenate([self.py, other.py], axis=1)
            self.pz = np.concatenate([self.pz, other.pz], axis=1)
            self._select_k()

        def _select_k(self) -> None:
            if self.dist.shape[1] > k:
                order = np.lexsort((self.pz, self.py, self.px, self.dist))[
                    :, :k
                ]
                self.dist = np.take_along_axis(self.dist, order, axis=1)
                self.px = np.take_along_axis(self.px, order, axis=1)
                self.py = np.take_along_axis(self.py, order, axis=1)
                self.pz = np.take_along_axis(self.pz, order, axis=1)

        def pack(self) -> dict[str, np.ndarray]:
            # cut before shipping so a packet still crosses the boundary
            # as lanes*k candidates, then flatten to the single-lane wire
            # shape (every lane holds the same count, so unpack's
            # reshape(lanes, -1) is exact)
            self._flush()
            self._select_k()
            return {
                "dist": self.dist.reshape(-1).copy(),
                "px": self.px.reshape(-1).copy(),
                "py": self.py.reshape(-1).copy(),
                "pz": self.pz.reshape(-1).copy(),
            }

        @classmethod
        def unpack(cls, packed: dict[str, np.ndarray]) -> "KNNLanes":
            obj = cls()
            obj.dist = packed["dist"].reshape(lanes, -1).copy()
            obj.px = packed["px"].reshape(lanes, -1).copy()
            obj.py = packed["py"].reshape(lanes, -1).copy()
            obj.pz = packed["pz"].reshape(lanes, -1).copy()
            return obj

        def lane_rows(self, lane: int) -> np.ndarray:
            """One lane's canonical sorted (dist, x, y, z) rows — the
            same array a single-query run's ``rows()`` returns."""
            self._flush()
            d = self.dist[lane]
            x = self.px[lane]
            y = self.py[lane]
            z = self.pz[lane]
            order = np.lexsort((z, y, x, d))
            return np.stack(
                [d[order], x[order], y[order], z[order]], axis=1
            )

        def rows(self) -> np.ndarray:
            """All lanes stacked, each in canonical order (debug aid)."""
            self._flush()
            return np.stack(
                [self.lane_rows(lane) for lane in range(lanes)], axis=0
            )

        @property
        def nbytes(self) -> int:
            return (
                self.dist.nbytes + self.px.nbytes + self.py.nbytes + self.pz.nbytes
            )

    KNNLanes.__name__ = f"KNNLanes{k}x{lanes}"
    cls = register_generated(KNNLanes)
    _LANE_CLASSES[key] = cls
    return cls


def knn_oracle(points: np.ndarray, q: tuple[float, float, float], k: int):
    """Vectorized exact reference."""
    d = ((points - np.asarray(q)) ** 2).sum(axis=1)
    order = np.lexsort((points[:, 2], points[:, 1], points[:, 0], d))[:k]
    return np.stack(
        [d[order], points[order, 0], points[order, 1], points[order, 2]], axis=1
    )


def make_knn_registry() -> IntrinsicRegistry:
    return IntrinsicRegistry(
        [
            Intrinsic("read_points", (), None, fn=lambda: None, writes=("return",)),  # type: ignore[arg-type]
            Intrinsic("display", (), VOID, fn=lambda r: None, reads=("r",), writes=()),
        ]
    )


# ---------------------------------------------------------------------------
# Decomp-Manual: hand-written DataCutter filters (vectorized NumPy)
# ---------------------------------------------------------------------------


class _ManualKnnSource(SourceFilter):
    """Data-node filter: vectorized local k-NN per packet, ships only the
    k candidates — the decomposition a careful human writes (§6.4)."""

    def generate(self, ctx: FilterContext):
        q = np.array([ctx.params["qx"], ctx.params["qy"], ctx.params["qz"]])
        k = ctx.params["k"]
        for pk in ctx.params["packets"]:
            pts = np.stack(
                [pk.fields["x"], pk.fields["y"], pk.fields["z"]], axis=1
            )
            d = ((pts - q) ** 2).sum(axis=1)
            take = min(k, len(d))
            idx = np.argpartition(d, take - 1)[:take] if take else np.zeros(0, int)
            yield {
                "dist": d[idx],
                "px": pts[idx, 0],
                "py": pts[idx, 1],
                "pz": pts[idx, 2],
            }


class _ManualKnnMerge(Filter):
    def init(self, ctx: FilterContext) -> None:
        self._cls = ctx.params["knn_class"]
        self._acc = self._cls()

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        self._acc.merge(self._cls.unpack(buf.payload))

    def finalize(self, ctx: FilterContext) -> None:
        ctx.write(self._acc.pack(), -2)


class _ManualKnnView(Filter):
    def init(self, ctx: FilterContext) -> None:
        self._cls = ctx.params["knn_class"]
        self._acc = self._cls()

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        self._acc.merge(self._cls.unpack(buf.payload))

    def finalize(self, ctx: FilterContext) -> None:
        ctx.write({"result": self._acc})


def manual_knn_specs(workload: Workload, widths: list[int]) -> list[FilterSpec]:
    params = dict(workload.params)
    params["packets"] = workload.packets
    return [
        FilterSpec("man_src", _ManualKnnSource, placement=0, width=widths[0], params=params),
        FilterSpec("man_merge", _ManualKnnMerge, placement=1, width=widths[1], params=params),
        FilterSpec("man_view", _ManualKnnView, placement=2, width=widths[2], params=params),
    ]


# ---------------------------------------------------------------------------
# Serving adapter (repro.serve): request -> packets + params
# ---------------------------------------------------------------------------


def _knn_extract(payloads: list) -> np.ndarray:
    """Final pipeline payload -> canonical sorted (dist, x, y, z) rows —
    a plain ndarray, so responses are byte-comparable across serving and
    one-shot paths."""
    return payloads[-1]["result"].rows()


def _knn_extract_lane(payloads: list, lane: int) -> np.ndarray:
    """Fused-plan demux: one lane's canonical rows — byte-identical to
    what :func:`_knn_extract` returns for that query run alone."""
    return payloads[-1]["result"].lane_rows(lane)


def _knn_extract_all(payloads: list) -> list[np.ndarray]:
    """Whole-plan extract of a fused run (diagnostic path; the server
    demuxes per lane via ``extract_lane``)."""
    result = payloads[-1]["result"]
    return [result.lane_rows(lane) for lane in range(result.LANES)]


class KnnService:
    """Serves k-NN queries over one resident point dataset.

    The compiled pipeline takes the query point as *runtime parameters*
    (``qx``/``qy``/``qz``), so every query shares a single plan-cache
    entry: the first request compiles, every later request — any query
    point — streams straight through the warm pipeline.  Requests with
    identical query points coalesce into one execution, and the service
    opts into request fusion (``ServicePlan.fuse_key``): *distinct*
    query points in one micro-batch merge into a single lane-batched
    execution whose ``(lanes, 1)``-shaped query params broadcast through
    the unchanged dialect source, one plan-cache entry per (k, lane
    bucket) — lane counts round up to a power of two, padded with a
    duplicate of the last query, so fused plans stay cache-warm across
    varying batch widths."""

    name = "knn"

    def __init__(
        self,
        k: int = 3,
        n_points: int = 20_000,
        num_packets: int = 8,
        width: int = 1,
        backend: str = "auto",
        objective: str = "total",
    ) -> None:
        from ..core.compiler import CompileOptions
        from ..cost.environment import cluster_config

        self.k = k
        self.app = make_knn_app(k)
        self.workload = self.app.make_workload(
            n_points=n_points, num_packets=num_packets
        )
        self.options = CompileOptions(
            env=cluster_config(width),
            profile=self.workload.profile,
            objective=objective,
            size_hints=dict(self.app.size_hints),
            runtime_classes=dict(self.app.runtime_classes),
            method_costs=dict(self.app.method_costs),
            backend=backend,
        )
        # fusion compatibility identity: everything that must match for
        # two plans to ride one batched run — dataset, k, decomposition
        # inputs — excluding the per-request query point
        self._fuse_key = (
            f"{self.workload.label}/packets={num_packets}"
            f"/w={width}/{backend}/{objective}"
        )
        #: per lane-bucket CompileOptions (stable identity keeps the
        #: plan cache warm: one entry per (service, k, bucket))
        self._lane_options: dict[int, Any] = {}

    def plan(self, body):
        from ..serve.requests import ServicePlan

        q = tuple(float(body.get(axis, 0.5)) for axis in ("x", "y", "z"))
        params = dict(self.workload.params)
        params["qx"], params["qy"], params["qz"] = q
        return ServicePlan(
            service=self.name,
            group_key=f"q=({q[0]!r},{q[1]!r},{q[2]!r})",
            source=self.app.source,
            registry=self.app.registry,
            options=self.options,
            packets=self.workload.packets,
            params=params,
            extract=_knn_extract,
            fuse_key=self._fuse_key,
            fuse=self.fuse_plans,
        )

    def fuse_plans(self, plans):
        """Combine distinct-query plans into one lane-batched plan.

        Lane *i* of the fused run answers ``plans[i]``.  The lane count
        rounds up to the next power of two (padding with the last real
        query) so the compiled plan — keyed by the lane-batched runtime
        class — is reused across nearby batch widths."""
        from ..serve.requests import ServicePlan

        n_real = len(plans)
        bucket = 1 << max(1, (n_real - 1).bit_length())
        lanes_cls = make_knn_lanes_class(self.k, bucket)
        options = self._lane_options.get(bucket)
        if options is None:
            options = self.options.replace(
                runtime_classes={"KNN": lanes_cls}
            )
            self._lane_options[bucket] = options
        qx = np.zeros((bucket, 1))
        qy = np.zeros((bucket, 1))
        qz = np.zeros((bucket, 1))
        for i, plan in enumerate(plans):
            qx[i, 0] = plan.params["qx"]
            qy[i, 0] = plan.params["qy"]
            qz[i, 0] = plan.params["qz"]
        qx[n_real:, 0] = qx[n_real - 1, 0]
        qy[n_real:, 0] = qy[n_real - 1, 0]
        qz[n_real:, 0] = qz[n_real - 1, 0]
        params = dict(self.workload.params)
        params["qx"], params["qy"], params["qz"] = qx, qy, qz
        params["knn_class"] = lanes_cls
        return ServicePlan(
            service=self.name,
            group_key=f"fused[{n_real}/{bucket}]"
            + ";".join(plan.group_key for plan in plans),
            source=self.app.source,
            registry=self.app.registry,
            options=options,
            packets=self.workload.packets,
            params=params,
            extract=_knn_extract_all,
            extract_lane=_knn_extract_lane,
            lanes=n_real,
        )


def make_knn_service(**kwargs) -> KnnService:
    return KnnService(**kwargs)


# ---------------------------------------------------------------------------
# App bundle
# ---------------------------------------------------------------------------


def make_knn_app(k: int = 3) -> AppBundle:
    knn_cls = make_knn_class(k)

    def make_workload(
        n_points: int = 60_000,
        num_packets: int = 10,
        seed: int = 11,
        query: tuple[float, float, float] = (0.5, 0.5, 0.5),
    ) -> Workload:
        dataset: PointDataset = make_point_dataset(n_points, seed)
        packets = dataset.packets(num_packets)
        params: dict[str, Any] = {
            "qx": query[0],
            "qy": query[1],
            "qz": query[2],
            "k": k,
            "num_packets": num_packets,
            "knn_class": knn_cls,
        }
        profile = WorkloadProfile(
            {
                "num_packets": float(num_packets),
                "packet_size": n_points / num_packets,
                "knn.k": float(k),
            }
        )

        def oracle():
            return knn_oracle(dataset.points, query, k)

        def check(final_payload: dict[str, Any], expected) -> bool:
            got = final_payload["result"].rows()
            return bool(
                got.shape == expected.shape and np.allclose(got, expected)
            )

        return Workload(
            packets=packets,
            params=params,
            profile=profile,
            oracle=oracle,
            check=check,
            label=f"knn/k={k}/n={n_points}",
        )

    return AppBundle(
        name=f"knn-k{k}",
        source=KNN_SOURCE,
        registry=make_knn_registry(),
        runtime_classes={"KNN": knn_cls},
        size_hints={
            "KNN.dist": "knn.k",
            "KNN.px": "knn.k",
            "KNN.py": "knn.k",
            "KNN.pz": "knn.k",
        },
        make_workload=make_workload,
        manual_specs=manual_knn_specs,
        method_costs={
            # bounded-set insert: threshold compare, occasional O(k) rescan
            "KNN.insert": lambda p: OpCount(
                flops=4.0,
                iops=4.0 + 0.05 * p.get("knn.k", 3.0),
                branches=3.0,
            ),
            "KNN.merge": lambda p: OpCount(
                iops=12.0 * p.get("knn.k", 3.0),
                branches=2.0 * p.get("knn.k", 3.0),
            ),
        },
        notes="k-nearest neighbours (Figs 9-10); k=3 and k=200 in the paper.",
    )
