"""The four evaluation applications (paper §6.1): isosurface rendering
(z-buffer and active pixels), k-nearest neighbours, and virtual
microscope — each as dialect source + intrinsic kernels + runtime
reduction classes + seeded synthetic workloads with sequential oracles."""

from .common import AppBundle, Workload
from .datasets import (
    CubeDataset,
    PointDataset,
    TileDataset,
    make_cube_dataset,
    make_point_dataset,
    make_tile_dataset,
    scalar_field,
)
from .isosurface import make_active_pixels_app, make_zbuffer_app
from .knn import (
    KnnService,
    knn_oracle,
    make_knn_app,
    make_knn_class,
    make_knn_lanes_class,
    make_knn_service,
    manual_knn_specs,
)
from .vmscope import (
    QUERIES,
    VmscopeService,
    make_vimage_class,
    make_vmscope_app,
    make_vmscope_service,
    manual_vmscope_specs,
    subsample_tile_masked,
    subsample_tile_strided,
)

__all__ = [
    "AppBundle",
    "CubeDataset",
    "KnnService",
    "PointDataset",
    "QUERIES",
    "TileDataset",
    "VmscopeService",
    "Workload",
    "knn_oracle",
    "make_active_pixels_app",
    "make_cube_dataset",
    "make_knn_app",
    "make_knn_class",
    "make_knn_lanes_class",
    "make_knn_service",
    "make_point_dataset",
    "make_tile_dataset",
    "make_vimage_class",
    "make_vmscope_app",
    "make_vmscope_service",
    "make_zbuffer_app",
    "manual_knn_specs",
    "manual_vmscope_specs",
    "scalar_field",
    "subsample_tile_masked",
    "subsample_tile_strided",
]
