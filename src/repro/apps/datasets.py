"""Synthetic dataset generators for the four applications (paper §6).

Substitutions for the paper's datasets (see DESIGN.md):

* **isosurface** — the paper used ParSSim environmental-simulation grids
  (150 MB / 600 MB per time-step).  We generate smooth 3-D scalar fields
  (sums of seeded Gaussian blobs) so that the isosurface-crossing
  selectivity is controllable and realistic: spatially coherent, not white
  noise.
* **knn** — the paper used 4.5 M random 3-D points (108 MB); we generate
  seeded uniform points, scaled down.
* **vmscope** — the paper used digitized microscope slides; we generate
  tiled RGB images with smooth texture and serve rectangular queries with
  a subsampling factor.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.runtime_support import RawPacket, ragged_from_rows


# ---------------------------------------------------------------------------
# 3-D scalar grids (isosurface)
# ---------------------------------------------------------------------------


def scalar_field(shape: tuple[int, int, int], seed: int, blobs: int = 6) -> np.ndarray:
    """Smooth scalar field on a grid: a sum of random Gaussian blobs,
    normalized to [0, 1]."""
    rng = np.random.default_rng(seed)
    nx, ny, nz = shape
    x, y, z = np.meshgrid(
        np.linspace(0, 1, nx), np.linspace(0, 1, ny), np.linspace(0, 1, nz),
        indexing="ij",
    )
    field = np.zeros(shape)
    for _ in range(blobs):
        cx, cy, cz = rng.uniform(0.1, 0.9, 3)
        sigma = rng.uniform(0.08, 0.25)
        amp = rng.uniform(0.5, 1.0)
        field += amp * np.exp(
            -((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2) / (2 * sigma**2)
        )
    field -= field.min()
    peak = field.max()
    if peak > 0:
        field /= peak
    return field


@dataclass(slots=True)
class CubeDataset:
    """Grid cells ('cubes') flattened into packets.

    Per cube: integer position (x, y, z), the 8 corner scalar values, and
    the precomputed min/max (the data repository stores these, which is
    what makes the data-node rejection test cheap — §6.3)."""

    xs: np.ndarray
    ys: np.ndarray
    zs: np.ndarray
    vals: np.ndarray  # (n, 8)
    minval: np.ndarray
    maxval: np.ndarray
    grid_shape: tuple[int, int, int]

    @property
    def n_cubes(self) -> int:
        return len(self.xs)

    def selectivity(self, isovalue: float) -> float:
        """Fraction of cubes the isosurface crosses."""
        hit = (self.minval <= isovalue) & (self.maxval >= isovalue)
        return float(hit.mean())

    def packets(self, num_packets: int) -> list[RawPacket]:
        """Split the cube list into contiguous packets (the runtime-chosen
        packet count of §3)."""
        out: list[RawPacket] = []
        for chunk in np.array_split(np.arange(self.n_cubes), num_packets):
            out.append(
                RawPacket(
                    count=len(chunk),
                    fields={
                        "x": self.xs[chunk].astype(np.float64),
                        "y": self.ys[chunk].astype(np.float64),
                        "z": self.zs[chunk].astype(np.float64),
                        "vals": self.vals[chunk],
                        "minval": self.minval[chunk],
                        "maxval": self.maxval[chunk],
                    },
                )
            )
        return out


def make_cube_dataset(
    shape: tuple[int, int, int] = (24, 24, 24), seed: int = 7
) -> CubeDataset:
    """Cubes of a ``shape`` grid with corner values from a smooth field."""
    field = scalar_field(shape, seed)
    nx, ny, nz = shape
    cx, cy, cz = nx - 1, ny - 1, nz - 1
    xs, ys, zs = np.meshgrid(
        np.arange(cx), np.arange(cy), np.arange(cz), indexing="ij"
    )
    xs, ys, zs = xs.ravel(), ys.ravel(), zs.ravel()
    vals = np.zeros((len(xs), 8))
    corner = 0
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                vals[:, corner] = field[xs + dx, ys + dy, zs + dz]
                corner += 1
    return CubeDataset(
        xs=xs,
        ys=ys,
        zs=zs,
        vals=vals,
        minval=vals.min(axis=1),
        maxval=vals.max(axis=1),
        grid_shape=shape,
    )


# ---------------------------------------------------------------------------
# 3-D points (k-nearest neighbours)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PointDataset:
    points: np.ndarray  # (n, 3) float64

    @property
    def n_points(self) -> int:
        return len(self.points)

    def packets(self, num_packets: int) -> list[RawPacket]:
        out: list[RawPacket] = []
        for chunk in np.array_split(np.arange(self.n_points), num_packets):
            out.append(
                RawPacket(
                    count=len(chunk),
                    fields={
                        "x": self.points[chunk, 0],
                        "y": self.points[chunk, 1],
                        "z": self.points[chunk, 2],
                    },
                )
            )
        return out


def make_point_dataset(n_points: int = 100_000, seed: int = 11) -> PointDataset:
    rng = np.random.default_rng(seed)
    return PointDataset(points=rng.uniform(0.0, 1.0, (n_points, 3)))


# ---------------------------------------------------------------------------
# Tiled images (virtual microscope)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TileDataset:
    """A large image stored as fixed-size tiles, as a digitized slide
    repository would decluster it."""

    image_w: int
    image_h: int
    tile: int
    x0s: np.ndarray
    y0s: np.ndarray
    ws: np.ndarray
    hs: np.ndarray
    pixels: list[np.ndarray]  # per tile, flattened RGB float32 (w*h*3)

    @property
    def n_tiles(self) -> int:
        return len(self.x0s)

    def query_selectivity(self, qx0: int, qy0: int, qx1: int, qy1: int) -> float:
        hit = (
            (self.x0s < qx1)
            & (self.x0s + self.ws > qx0)
            & (self.y0s < qy1)
            & (self.y0s + self.hs > qy0)
        )
        return float(hit.mean())

    def packets(self, num_packets: int) -> list[RawPacket]:
        out: list[RawPacket] = []
        for chunk in np.array_split(np.arange(self.n_tiles), num_packets):
            rows = [self.pixels[i] for i in chunk]
            out.append(
                RawPacket(
                    count=len(chunk),
                    fields={
                        "x0": self.x0s[chunk].astype(np.float64),
                        "y0": self.y0s[chunk].astype(np.float64),
                        "w": self.ws[chunk].astype(np.float64),
                        "h": self.hs[chunk].astype(np.float64),
                        "pixels": ragged_from_rows(rows, dtype=np.float32),
                    },
                )
            )
        return out


def make_tile_dataset(
    image_w: int = 1024, image_h: int = 1024, tile: int = 64, seed: int = 13
) -> TileDataset:
    """Synthetic slide: smooth low-frequency texture plus seeded speckle,
    split into ``tile`` x ``tile`` blocks (last row/column may be short)."""
    rng = np.random.default_rng(seed)
    # low-frequency base via coarse noise upsampled with repeat
    coarse = rng.uniform(0.0, 1.0, (image_h // 32 + 1, image_w // 32 + 1, 3))
    base = np.repeat(np.repeat(coarse, 32, axis=0), 32, axis=1)[
        :image_h, :image_w, :
    ]
    image = 0.8 * base + 0.2 * rng.uniform(0.0, 1.0, (image_h, image_w, 3))
    x0s, y0s, ws, hs, pixels = [], [], [], [], []
    for y0 in range(0, image_h, tile):
        for x0 in range(0, image_w, tile):
            h = min(tile, image_h - y0)
            w = min(tile, image_w - x0)
            block = image[y0 : y0 + h, x0 : x0 + w, :]
            x0s.append(x0)
            y0s.append(y0)
            ws.append(w)
            hs.append(h)
            pixels.append(np.ascontiguousarray(block, dtype=np.float32).ravel())
    return TileDataset(
        image_w=image_w,
        image_h=image_h,
        tile=tile,
        x0s=np.asarray(x0s),
        y0s=np.asarray(y0s),
        ws=np.asarray(ws),
        hs=np.asarray(hs),
        pixels=pixels,
    )
