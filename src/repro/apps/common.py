"""Shared application scaffolding.

An :class:`AppBundle` packages everything one evaluation application needs:
the dialect source, the intrinsic registry (implementations + analysis
summaries), runtime reduction classes, layout size hints, and a workload
factory producing packets + parameters + a sequential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.workload import WorkloadProfile
from ..codegen.runtime_support import RawPacket
from ..datacutter.filters import FilterSpec
from ..lang.intrinsics import IntrinsicRegistry


@dataclass(slots=True)
class Workload:
    """One concrete run: data, parameters, expected result."""

    packets: list[RawPacket]
    params: dict[str, Any]
    profile: WorkloadProfile
    #: sequential reference computation -> canonical result object
    oracle: Callable[[], Any]
    #: compare the pipeline's final payload against the oracle result
    check: Callable[[dict[str, Any], Any], bool]
    #: short label for reports
    label: str = ""

    @property
    def num_packets(self) -> int:
        return len(self.packets)

    def input_bytes(self) -> int:
        return sum(p.nbytes for p in self.packets)


@dataclass(slots=True)
class AppBundle:
    """A complete evaluation application."""

    name: str
    source: str
    registry: IntrinsicRegistry
    runtime_classes: dict[str, type]
    size_hints: dict[str, object]
    make_workload: Callable[..., Workload]
    #: hand-written DataCutter filters (Decomp-Manual, §6.4-6.5); None for
    #: the isosurface apps, matching the paper ("we did not have access to
    #: comparable manual versions")
    manual_specs: Callable[[Workload, list[int]], list[FilterSpec]] | None = None
    #: 'Class.method' -> (profile -> OpCount): cost summaries for methods
    #: whose dialect bodies are stubs backed by runtime classes
    method_costs: dict[str, Any] = field(default_factory=dict)
    notes: str = ""
