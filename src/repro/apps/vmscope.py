"""Virtual microscope (paper §6.1, §6.5).

Serves a rectangular query over a tiled digitized slide at a given
subsampling factor.  The compiler-decomposed version pushes the
tile-intersection test to the data nodes and ships only intersecting,
already-subsampled blocks.

The Decomp-Comp vs Decomp-Manual gap of §6.5 is reproduced mechanically:

* the *compiled* path selects sample pixels with **conditional masks**
  (``(x - qx0) % subsamp == 0`` tests over the whole tile), the moral
  equivalent of the generated per-element conditional the paper describes;
* the *manual* path uses **strided slicing** directly
  (``img[ly:ey:s, lx:ex:s]``), touching only the output pixels.

Both produce identical blocks; only the work per tile differs.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..analysis.workload import WorkloadProfile
from ..codegen.generated_registry import register_generated
from ..datacutter.buffers import Buffer
from ..datacutter.filters import Filter, FilterContext, FilterSpec, SourceFilter
from ..codegen.runtime_support import col_count, col_row, rowwise_batch
from ..lang.intrinsics import Intrinsic, IntrinsicRegistry, OpCount
from ..lang.types import DOUBLE, INT, VOID, ArrayType
from .common import AppBundle, Workload
from .datasets import TileDataset, make_tile_dataset

VMSCOPE_SOURCE = """
native Rectdomain<1, Tile> read_tiles();
native double[] subsample_tile(float[] pixels, double x0, double y0,
                               double w, double h, int qx0, int qy0,
                               int qx1, int qy1, int subsamp);
native void display(VImage r);

class Tile {
    double x0;
    double y0;
    double w;
    double h;
    float[] pixels;
}

class VImage implements Reducinterface {
    double[] data;
    void paste(double[] block) { return; }
    void merge(VImage other) { return; }
}

class Microscope {
    void view(int qx0, int qy0, int qx1, int qy1, int subsamp) {
        runtime_define int num_packets;
        Rectdomain<1, Tile> tiles = read_tiles();
        VImage result = new VImage();
        PipelinedLoop (p in tiles) {
            VImage local = new VImage();
            foreach (t in p) {
                if (t.x0 < qx1 && t.x0 + t.w > qx0 && t.y0 < qy1 && t.y0 + t.h > qy0) {
                    double[] block = subsample_tile(t.pixels, t.x0, t.y0,
                                                    t.w, t.h, qx0, qy0,
                                                    qx1, qy1, subsamp);
                    local.paste(block);
                }
            }
            result.merge(local);
        }
        display(result);
    }
}
"""


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def subsample_tile_masked(
    pixels, x0, y0, w, h, qx0, qy0, qx1, qy1, subsamp
) -> np.ndarray:
    """Compiled-style kernel: conditional masks over every tile pixel."""
    x0, y0, w, h = int(x0), int(y0), int(w), int(h)
    s = int(subsamp)
    img = np.asarray(pixels, dtype=np.float64).reshape(h, w, 3)
    xs = np.arange(x0, x0 + w)
    ys = np.arange(y0, y0 + h)
    mx = (xs >= qx0) & (xs < qx1) & ((xs - qx0) % s == 0)
    my = (ys >= qy0) & (ys < qy1) & ((ys - qy0) % s == 0)
    if not mx.any() or not my.any():
        return np.zeros(0, dtype=np.float64)
    sub = img[my][:, mx]
    ox = (int(xs[mx][0]) - qx0) // s
    oy = (int(ys[my][0]) - qy0) // s
    bh, bw = sub.shape[0], sub.shape[1]
    return np.concatenate(
        [np.array([ox, oy, bw, bh], dtype=np.float64), sub.ravel()]
    )


def subsample_tile_strided(
    pixels, x0, y0, w, h, qx0, qy0, qx1, qy1, subsamp
) -> np.ndarray:
    """Manual-style kernel: direct strided slicing, identical output."""
    x0, y0, w, h = int(x0), int(y0), int(w), int(h)
    s = int(subsamp)
    img = np.asarray(pixels, dtype=np.float64).reshape(h, w, 3)
    gx = qx0 + max(0, math.ceil((x0 - qx0) / s)) * s
    gy = qy0 + max(0, math.ceil((y0 - qy0) / s)) * s
    ex = min(qx1, x0 + w)
    ey = min(qy1, y0 + h)
    if gx >= ex or gy >= ey:
        return np.zeros(0, dtype=np.float64)
    sub = img[gy - y0 : ey - y0 : s, gx - x0 : ex - x0 : s]
    ox = (gx - qx0) // s
    oy = (gy - qy0) // s
    bh, bw = sub.shape[0], sub.shape[1]
    return np.concatenate(
        [np.array([ox, oy, bw, bh], dtype=np.float64), sub.ravel()]
    )


def make_vimage_class(qx0: int, qy0: int, qx1: int, qy1: int, subsamp: int) -> type:
    """Output image for one query: NaN-initialized until pasted (tiles are
    disjoint, so paste/merge are trivially commutative)."""
    out_w = max(0, -(-(qx1 - qx0) // subsamp))
    out_h = max(0, -(-(qy1 - qy0) // subsamp))

    class VImage:
        W, H = out_w, out_h

        def __init__(self) -> None:
            self.data = np.full(out_h * out_w * 3, np.nan)

        def paste(self, block: np.ndarray) -> None:
            block = np.asarray(block, dtype=np.float64)
            if block.size == 0:
                return
            ox, oy, bw, bh = (int(v) for v in block[:4])
            sub = block[4:].reshape(bh, bw, 3)
            img = self.data.reshape(out_h, out_w, 3)
            img[oy : oy + bh, ox : ox + bw, :] = sub

        def batch_paste(self, blocks) -> None:
            """Columnar form of :meth:`paste`: a whole packet's blocks as a
            ragged pair.  Tiles are disjoint, so pasting row-by-row here is
            exactly the scalar fold."""
            for r in range(col_count(blocks)):
                self.paste(col_row(blocks, r))

        def merge(self, other: "VImage") -> None:
            filled = ~np.isnan(other.data)
            self.data[filled] = other.data[filled]

        def pack(self) -> dict[str, np.ndarray]:
            return {"data": self.data.copy()}

        @classmethod
        def unpack(cls, packed: dict[str, np.ndarray]) -> "VImage":
            obj = cls()
            obj.data = packed["data"].copy()
            return obj

        def image(self) -> np.ndarray:
            return np.nan_to_num(self.data, nan=0.0).reshape(out_h, out_w, 3)

        @property
        def nbytes(self) -> int:
            return self.data.nbytes

    VImage.__name__ = f"VImage{out_w}x{out_h}"
    # query-dependent class: anchor it so instances can cross process
    # boundaries (the process engine pickles final reduction objects)
    return register_generated(VImage)


_D, _DA = DOUBLE, ArrayType(DOUBLE)


def make_vmscope_registry() -> IntrinsicRegistry:
    return IntrinsicRegistry(
        [
            Intrinsic("read_tiles", (), None, fn=lambda: None, writes=("return",)),  # type: ignore[arg-type]
            Intrinsic(
                "subsample_tile",
                (_DA, _D, _D, _D, _D, INT, INT, INT, INT, INT),
                _DA,
                fn=subsample_tile_masked,
                reads=(
                    "pixels",
                    "x0",
                    "y0",
                    "w",
                    "h",
                    "qx0",
                    "qy0",
                    "qx1",
                    "qy1",
                    "subsamp",
                ),
                writes=("return",),
                # per-tile work is already NumPy-vectorized internally, so
                # the batch form is the generic rowwise wrapper
                batch_fn=rowwise_batch(subsample_tile_masked),
                # conditional-mask kernel touches every tile pixel
                cost=lambda p: OpCount(
                    flops=2.0 * p.get("tile.pixels", 4096.0),
                    iops=6.0 * p.get("tile.pixels", 4096.0),
                    branches=3.0 * p.get("tile.pixels", 4096.0),
                ),
                out_scale=lambda p: p.get("scale.block_floats", 1.0),
            ),
            Intrinsic("display", (), VOID, fn=lambda r: None, reads=("r",), writes=()),
        ]
    )


# ---------------------------------------------------------------------------
# Decomp-Manual filters (strided)
# ---------------------------------------------------------------------------


class _ManualVmSource(SourceFilter):
    def generate(self, ctx: FilterContext):
        p = ctx.params
        qx0, qy0, qx1, qy1, s = (
            p["qx0"], p["qy0"], p["qx1"], p["qy1"], p["subsamp"],
        )
        for pk in p["packets"]:
            blocks: list[np.ndarray] = []
            x0s, y0s = pk.fields["x0"], pk.fields["y0"]
            ws, hs = pk.fields["w"], pk.fields["h"]
            for r in range(pk.count):
                if (
                    x0s[r] < qx1
                    and x0s[r] + ws[r] > qx0
                    and y0s[r] < qy1
                    and y0s[r] + hs[r] > qy0
                ):
                    block = subsample_tile_strided(
                        pk.row("pixels", r),
                        x0s[r], y0s[r], ws[r], hs[r],
                        qx0, qy0, qx1, qy1, s,
                    )
                    if block.size:
                        blocks.append(block)
            yield blocks


class _ManualVmPaste(Filter):
    def init(self, ctx: FilterContext) -> None:
        self._cls = ctx.params["vimage_class"]
        self._acc = self._cls()

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        for block in buf.payload:
            self._acc.paste(block)

    def finalize(self, ctx: FilterContext) -> None:
        ctx.write(self._acc.pack(), -2)


class _ManualVmView(Filter):
    def init(self, ctx: FilterContext) -> None:
        self._cls = ctx.params["vimage_class"]
        self._acc = self._cls()

    def process(self, buf: Buffer, ctx: FilterContext) -> None:
        self._acc.merge(self._cls.unpack(buf.payload))

    def finalize(self, ctx: FilterContext) -> None:
        ctx.write({"result": self._acc})


def manual_vmscope_specs(workload: Workload, widths: list[int]) -> list[FilterSpec]:
    params = dict(workload.params)
    params["packets"] = workload.packets
    return [
        FilterSpec("man_src", _ManualVmSource, placement=0, width=widths[0], params=params),
        FilterSpec("man_paste", _ManualVmPaste, placement=1, width=widths[1], params=params),
        FilterSpec("man_view", _ManualVmView, placement=2, width=widths[2], params=params),
    ]


# ---------------------------------------------------------------------------
# App bundle
# ---------------------------------------------------------------------------

#: query presets: the paper's 'small query' (low selectivity, load
#: imbalance limits speedup) and 'large query' (most of the slide)
QUERIES = {
    "small": {"frac": 0.18, "subsamp": 2},
    "large": {"frac": 0.85, "subsamp": 4},
}


# ---------------------------------------------------------------------------
# Serving adapter (repro.serve): request -> packets + params
# ---------------------------------------------------------------------------


def _vmscope_extract(payloads: list) -> np.ndarray:
    """Final pipeline payload -> the rendered region image (ndarray, so
    responses are byte-comparable across serving and one-shot paths)."""
    return payloads[-1]["result"].image()


class VmscopeService:
    """Serves virtual-microscope region queries over one resident slide.

    Unlike knn, the query shapes the *compilation*: the output-image
    reduction class and the workload profile (selectivity, block sizes)
    are query-dependent, so each distinct preset gets its own plan-cache
    entry — compiled on first request, warm on every repeat.  That is the
    cache working as intended: the key covers the whole decomposition
    context, not just the source text."""

    name = "vmscope"

    def __init__(
        self,
        image_w: int = 256,
        image_h: int = 256,
        tile: int = 32,
        num_packets: int = 6,
        width: int = 1,
        backend: str = "auto",
        objective: str = "total",
    ) -> None:
        self.app = make_vmscope_app(image_w=image_w, image_h=image_h, tile=tile)
        self.num_packets = num_packets
        self.width = width
        self.backend = backend
        self.objective = objective
        self._prepared: dict[str, tuple] = {}  # preset -> (workload, options)

    def _prepare(self, preset: str):
        from ..core.compiler import CompileOptions
        from ..cost.environment import cluster_config

        if preset not in QUERIES:
            known = ", ".join(sorted(QUERIES))
            raise ValueError(f"unknown vmscope query {preset!r}; presets: {known}")
        if preset not in self._prepared:
            workload = self.app.make_workload(
                query=preset, num_packets=self.num_packets
            )
            options = CompileOptions(
                env=cluster_config(self.width),
                profile=workload.profile,
                objective=self.objective,
                size_hints=dict(self.app.size_hints),
                runtime_classes={"VImage": workload.params["vimage_class"]},
                method_costs=dict(self.app.method_costs),
                backend=self.backend,
            )
            self._prepared[preset] = (workload, options)
        return self._prepared[preset]

    def plan(self, body):
        from ..serve.requests import ServicePlan

        preset = str(body.get("query", "large"))
        workload, options = self._prepare(preset)
        return ServicePlan(
            service=self.name,
            group_key=f"query={preset}",
            source=self.app.source,
            registry=self.app.registry,
            options=options,
            packets=workload.packets,
            params=dict(workload.params),
            extract=_vmscope_extract,
            # explicit protocol opt-out: each preset compiles its own
            # query-specialized VImage class, so there are no per-request
            # runtime params to stack into lanes — not fusable
            fuse_key=None,
        )


def make_vmscope_service(**kwargs) -> VmscopeService:
    return VmscopeService(**kwargs)


def make_vmscope_app(
    image_w: int = 768, image_h: int = 768, tile: int = 64
) -> AppBundle:
    def make_workload(
        query: str = "large",
        num_packets: int = 10,
        seed: int = 13,
    ) -> Workload:
        preset = QUERIES[query]
        dataset: TileDataset = make_tile_dataset(image_w, image_h, tile, seed)
        frac = preset["frac"]
        span_x = int(image_w * frac)
        span_y = int(image_h * frac)
        qx0 = (image_w - span_x) // 2
        qy0 = (image_h - span_y) // 2
        qx1, qy1 = qx0 + span_x, qy0 + span_y
        s = preset["subsamp"]
        vimage_cls = make_vimage_class(qx0, qy0, qx1, qy1, s)
        packets = dataset.packets(num_packets)
        params: dict[str, Any] = {
            "qx0": qx0,
            "qy0": qy0,
            "qx1": qx1,
            "qy1": qy1,
            "subsamp": s,
            "num_packets": num_packets,
            "vimage_class": vimage_cls,
        }
        sel = dataset.query_selectivity(qx0, qy0, qx1, qy1)
        out_pixels = vimage_cls.W * vimage_cls.H
        profile = WorkloadProfile(
            {
                "num_packets": float(num_packets),
                "packet_size": dataset.n_tiles / num_packets,
                "sel.g0": max(sel, 1e-6),
                "tile.pixels": float(tile * tile * 3),
                # average block floats per accepted tile
                "scale.block_floats": 4.0
                + (tile / s) * (tile / s) * 3.0,
                "block": 4.0 + (tile / s) * (tile / s) * 3.0,
                "Tile.pixels": float(tile * tile * 3),
                "vimage.floats": float(out_pixels * 3),
            }
        )

        def oracle():
            acc = vimage_cls()
            for i in range(dataset.n_tiles):
                if (
                    dataset.x0s[i] < qx1
                    and dataset.x0s[i] + dataset.ws[i] > qx0
                    and dataset.y0s[i] < qy1
                    and dataset.y0s[i] + dataset.hs[i] > qy0
                ):
                    block = subsample_tile_strided(
                        dataset.pixels[i],
                        dataset.x0s[i], dataset.y0s[i],
                        dataset.ws[i], dataset.hs[i],
                        qx0, qy0, qx1, qy1, s,
                    )
                    if block.size:
                        acc.paste(block)
            return acc

        def check(final_payload: dict[str, Any], expected) -> bool:
            got = final_payload["result"]
            return bool(np.array_equal(got.image(), expected.image()))

        return Workload(
            packets=packets,
            params=params,
            profile=profile,
            oracle=oracle,
            check=check,
            label=f"vmscope/{query}",
        )

    return AppBundle(
        name="vmscope",
        source=VMSCOPE_SOURCE,
        registry=make_vmscope_registry(),
        runtime_classes={},  # VImage depends on the query: injected per run
        size_hints={
            "Tile.pixels": "Tile.pixels",
            "block": "block",
            "VImage.data": "vimage.floats",
        },
        make_workload=make_workload,
        manual_specs=manual_vmscope_specs,
        method_costs={
            # paste copies one subsampled block into the output image
            "VImage.paste": lambda p: OpCount(
                iops=3.0 * p.get("scale.block_floats", 1.0),
                branches=0.5 * p.get("scale.block_floats", 1.0),
            ),
            # merge touches the whole (subsampled) output image
            "VImage.merge": lambda p: OpCount(
                iops=2.0 * p.get("vimage.floats", 1.0),
                branches=1.0 * p.get("vimage.floats", 1.0),
            ),
        },
        notes="Virtual microscope (Figs 11-12); small and large queries.",
    )
