"""Recursive-descent parser for the pipeline dialect.

Grammar (EBNF, ``//`` comments and whitespace elided by the lexer)::

    program     := (class_decl | native_decl)*
    native_decl := 'native' type IDENT '(' params? ')' ';'
    class_decl  := 'class' IDENT ('implements' IDENT (',' IDENT)*)?
                   '{' (field_decl | method_decl)* '}'
    field_decl  := type IDENT (',' IDENT)* ';'
    method_decl := type IDENT '(' params? ')' block
    params      := type IDENT (',' type IDENT)*
    type        := (prim | IDENT) ('[' ']')*
                 | 'Rectdomain' '<' INT (',' IDENT)? '>' ('[' ']')*
    block       := '{' stmt* '}'
    stmt        := block | var_decl ';' | if | while | for | foreach
                 | pipelined | 'return' expr? ';' | 'break' ';'
                 | 'continue' ';' | assign_or_expr ';'
    var_decl    := 'runtime_define'? type IDENT ('=' expr)?
    if          := 'if' '(' expr ')' stmt ('else' stmt)?
    while       := 'while' '(' expr ')' stmt
    for         := 'for' '(' simple? ';' expr? ';' simple? ')' stmt
    foreach     := 'foreach' '(' IDENT 'in' expr ')' stmt
    pipelined   := 'PipelinedLoop' '(' IDENT 'in' expr ')' stmt
    simple      := var_decl | assign_or_expr
    assign_or_expr := expr (('='|'+='|'-='|'*='|'/=') expr)?

Expressions use conventional precedence: ``?:``, ``||``, ``&&``, equality,
relational, additive, multiplicative, unary, postfix
(call / field / index), primary.  ``new T(args)`` allocates an object;
``new T[len]`` an array.

The parser is deterministic with two-token lookahead (needed to tell a
declaration ``T x`` from an expression statement starting with an
identifier).
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .tokens import AUG_ASSIGN_OPS, PRIMITIVE_KINDS, Token, TokKind
from .lexer import tokenize


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.toks = tokens
        self.pos = 0

    # ------------------------------------------------------------------ api
    @staticmethod
    def parse_source(source: str) -> ast.Program:
        return Parser(tokenize(source)).parse_program()

    # -------------------------------------------------------------- helpers
    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[i]

    def _at(self, kind: TokKind, offset: int = 0) -> bool:
        return self._peek(offset).kind == kind

    def _advance(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokKind, context: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r} but found {tok.text or tok.kind.value!r}{where}",
                tok.span,
            )
        return self._advance()

    def _accept(self, kind: TokKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # ------------------------------------------------------------- program
    def parse_program(self) -> ast.Program:
        classes: list[ast.ClassDecl] = []
        natives: list[ast.NativeDecl] = []
        first = self._peek().span
        while not self._at(TokKind.EOF):
            if self._at(TokKind.KW_CLASS):
                classes.append(self._class_decl())
            elif self._at(TokKind.KW_NATIVE):
                natives.append(self._native_decl())
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'class' or 'native' at top level, found {tok.text!r}",
                    tok.span,
                )
        return ast.Program(classes=classes, natives=natives, span=first)

    def _native_decl(self) -> ast.NativeDecl:
        start = self._expect(TokKind.KW_NATIVE).span
        ret = self._type()
        name = self._expect(TokKind.IDENT, "native declaration").text
        params = self._param_list()
        self._expect(TokKind.SEMI, "native declaration")
        return ast.NativeDecl(ret_type=ret, name=name, params=params, span=start)

    def _class_decl(self) -> ast.ClassDecl:
        start = self._expect(TokKind.KW_CLASS).span
        name = self._expect(TokKind.IDENT, "class declaration").text
        implements: list[str] = []
        if self._accept(TokKind.KW_IMPLEMENTS):
            implements.append(self._expect(TokKind.IDENT).text)
            while self._accept(TokKind.COMMA):
                implements.append(self._expect(TokKind.IDENT).text)
        self._expect(TokKind.LBRACE, "class body")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._at(TokKind.RBRACE):
            member_type = self._type()
            member_name = self._expect(TokKind.IDENT, "class member").text
            if self._at(TokKind.LPAREN):
                params = self._param_list()
                body = self._block()
                methods.append(
                    ast.MethodDecl(
                        ret_type=member_type,
                        name=member_name,
                        params=params,
                        body=body,
                        span=member_type.span,
                        owner=name,
                    )
                )
            else:
                fields.append(
                    ast.FieldDecl(member_type, member_name, span=member_type.span)
                )
                while self._accept(TokKind.COMMA):
                    extra = self._expect(TokKind.IDENT, "field declaration").text
                    fields.append(
                        ast.FieldDecl(member_type, extra, span=member_type.span)
                    )
                self._expect(TokKind.SEMI, "field declaration")
        self._expect(TokKind.RBRACE, "class body")
        return ast.ClassDecl(
            name=name, implements=implements, fields=fields, methods=methods, span=start
        )

    def _param_list(self) -> list[ast.Param]:
        self._expect(TokKind.LPAREN, "parameter list")
        params: list[ast.Param] = []
        if not self._at(TokKind.RPAREN):
            while True:
                ptype = self._type()
                pname = self._expect(TokKind.IDENT, "parameter").text
                params.append(ast.Param(ptype, pname, span=ptype.span))
                if not self._accept(TokKind.COMMA):
                    break
        self._expect(TokKind.RPAREN, "parameter list")
        return params

    # ---------------------------------------------------------------- types
    def _starts_type(self, offset: int = 0) -> bool:
        kind = self._peek(offset).kind
        return kind in PRIMITIVE_KINDS or kind in (
            TokKind.KW_RECTDOMAIN,
            TokKind.IDENT,
        )

    def _type(self) -> ast.TypeNode:
        tok = self._peek()
        if tok.kind in PRIMITIVE_KINDS:
            self._advance()
            node = ast.TypeNode(name=tok.text, span=tok.span)
        elif tok.kind is TokKind.KW_RECTDOMAIN:
            self._advance()
            self._expect(TokKind.LT, "Rectdomain type")
            dim_tok = self._expect(TokKind.INT, "Rectdomain dimension")
            elem = None
            if self._accept(TokKind.COMMA):
                elem = self._expect(TokKind.IDENT, "Rectdomain element class").text
            self._expect(TokKind.GT, "Rectdomain type")
            node = ast.TypeNode(
                name="Rectdomain", dim=int(dim_tok.text), elem=elem, span=tok.span
            )
        elif tok.kind is TokKind.IDENT:
            self._advance()
            node = ast.TypeNode(name=tok.text, span=tok.span)
        else:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.span)
        while self._at(TokKind.LBRACKET) and self._at(TokKind.RBRACKET, 1):
            self._advance()
            self._advance()
            node.array_depth += 1
        return node

    # ----------------------------------------------------------- statements
    def _block(self) -> ast.Block:
        start = self._expect(TokKind.LBRACE, "block").span
        body: list[ast.Stmt] = []
        while not self._at(TokKind.RBRACE):
            body.append(self._statement())
        self._expect(TokKind.RBRACE, "block")
        return ast.Block(body=body, span=start)

    def _stmt_as_block(self) -> ast.Block:
        """Loop/conditional bodies are normalized to blocks."""
        if self._at(TokKind.LBRACE):
            return self._block()
        stmt = self._statement()
        return ast.Block(body=[stmt], span=stmt.span)

    def _looks_like_decl(self) -> bool:
        """Distinguish ``T x ...`` from an expression statement.  True for
        primitives, Rectdomain, ``runtime_define``, ``Ident Ident`` and
        ``Ident [ ] Ident`` shapes."""
        kind = self._peek().kind
        if kind is TokKind.KW_RUNTIME_DEFINE:
            return True
        if kind in PRIMITIVE_KINDS or kind is TokKind.KW_RECTDOMAIN:
            return True
        if kind is TokKind.IDENT:
            offset = 1
            while (
                self._at(TokKind.LBRACKET, offset)
                and self._at(TokKind.RBRACKET, offset + 1)
            ):
                offset += 2
            return self._at(TokKind.IDENT, offset)
        return False

    def _statement(self) -> ast.Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind is TokKind.LBRACE:
            return self._block()
        if kind is TokKind.KW_IF:
            return self._if_stmt()
        if kind is TokKind.KW_WHILE:
            return self._while_stmt()
        if kind is TokKind.KW_FOR:
            return self._for_stmt()
        if kind is TokKind.KW_FOREACH:
            return self._foreach_stmt()
        if kind is TokKind.KW_PIPELINED:
            return self._pipelined_stmt()
        if kind is TokKind.KW_RETURN:
            self._advance()
            value = None if self._at(TokKind.SEMI) else self._expression()
            self._expect(TokKind.SEMI, "return statement")
            return ast.Return(value=value, span=tok.span)
        if kind is TokKind.KW_BREAK:
            self._advance()
            self._expect(TokKind.SEMI, "break statement")
            return ast.Break(span=tok.span)
        if kind is TokKind.KW_CONTINUE:
            self._advance()
            self._expect(TokKind.SEMI, "continue statement")
            return ast.Continue(span=tok.span)
        stmt = self._simple_statement()
        self._expect(TokKind.SEMI, "statement")
        return stmt

    def _simple_statement(self) -> ast.Stmt:
        """A declaration, assignment, or expression — no trailing ';'."""
        if self._looks_like_decl():
            return self._var_decl()
        expr = self._expression()
        tok = self._peek()
        if tok.kind is TokKind.ASSIGN or tok.kind in AUG_ASSIGN_OPS:
            self._advance()
            op = "" if tok.kind is TokKind.ASSIGN else AUG_ASSIGN_OPS[tok.kind]
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError("invalid assignment target", expr.span)
            value = self._expression()
            return ast.Assign(target=expr, op=op, value=value, span=expr.span)
        return ast.ExprStmt(expr=expr, span=expr.span)

    def _var_decl(self) -> ast.VarDecl:
        runtime = self._accept(TokKind.KW_RUNTIME_DEFINE) is not None
        decl_type = self._type()
        name = self._expect(TokKind.IDENT, "variable declaration").text
        init = None
        if self._accept(TokKind.ASSIGN):
            init = self._expression()
        return ast.VarDecl(
            decl_type=decl_type,
            name=name,
            init=init,
            runtime_define=runtime,
            span=decl_type.span,
        )

    def _if_stmt(self) -> ast.If:
        start = self._expect(TokKind.KW_IF).span
        self._expect(TokKind.LPAREN, "if condition")
        cond = self._expression()
        self._expect(TokKind.RPAREN, "if condition")
        then = self._stmt_as_block()
        other = None
        if self._accept(TokKind.KW_ELSE):
            other = self._stmt_as_block()
        return ast.If(cond=cond, then=then, other=other, span=start)

    def _while_stmt(self) -> ast.While:
        start = self._expect(TokKind.KW_WHILE).span
        self._expect(TokKind.LPAREN, "while condition")
        cond = self._expression()
        self._expect(TokKind.RPAREN, "while condition")
        body = self._stmt_as_block()
        return ast.While(cond=cond, body=body, span=start)

    def _for_stmt(self) -> ast.For:
        start = self._expect(TokKind.KW_FOR).span
        self._expect(TokKind.LPAREN, "for header")
        init = None if self._at(TokKind.SEMI) else self._simple_statement()
        self._expect(TokKind.SEMI, "for header")
        cond = None if self._at(TokKind.SEMI) else self._expression()
        self._expect(TokKind.SEMI, "for header")
        update = None if self._at(TokKind.RPAREN) else self._simple_statement()
        self._expect(TokKind.RPAREN, "for header")
        body = self._stmt_as_block()
        return ast.For(init=init, cond=cond, update=update, body=body, span=start)

    def _foreach_stmt(self) -> ast.Foreach:
        start = self._expect(TokKind.KW_FOREACH).span
        self._expect(TokKind.LPAREN, "foreach header")
        var = self._expect(TokKind.IDENT, "foreach variable").text
        self._expect(TokKind.KW_IN, "foreach header")
        domain = self._expression()
        self._expect(TokKind.RPAREN, "foreach header")
        body = self._stmt_as_block()
        return ast.Foreach(var=var, domain=domain, body=body, span=start)

    def _pipelined_stmt(self) -> ast.PipelinedLoop:
        start = self._expect(TokKind.KW_PIPELINED).span
        self._expect(TokKind.LPAREN, "PipelinedLoop header")
        var = self._expect(TokKind.IDENT, "PipelinedLoop variable").text
        self._expect(TokKind.KW_IN, "PipelinedLoop header")
        domain = self._expression()
        self._expect(TokKind.RPAREN, "PipelinedLoop header")
        body = self._stmt_as_block()
        return ast.PipelinedLoop(var=var, domain=domain, body=body, span=start)

    # ---------------------------------------------------------- expressions
    def _expression(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._logical_or()
        if self._accept(TokKind.QUESTION):
            then = self._expression()
            self._expect(TokKind.COLON, "ternary expression")
            other = self._expression()
            return ast.Ternary(cond=cond, then=then, other=other, span=cond.span)
        return cond

    def _binary_level(self, sub, table: dict[TokKind, str]):
        left = sub()
        while self._peek().kind in table:
            op_tok = self._advance()
            right = sub()
            left = ast.Binary(
                op=table[op_tok.kind], left=left, right=right, span=left.span
            )
        return left

    def _logical_or(self) -> ast.Expr:
        return self._binary_level(self._logical_and, {TokKind.OR: "||"})

    def _logical_and(self) -> ast.Expr:
        return self._binary_level(self._equality, {TokKind.AND: "&&"})

    def _equality(self) -> ast.Expr:
        return self._binary_level(
            self._relational, {TokKind.EQ: "==", TokKind.NE: "!="}
        )

    def _relational(self) -> ast.Expr:
        return self._binary_level(
            self._additive,
            {TokKind.LT: "<", TokKind.LE: "<=", TokKind.GT: ">", TokKind.GE: ">="},
        )

    def _additive(self) -> ast.Expr:
        return self._binary_level(
            self._multiplicative, {TokKind.PLUS: "+", TokKind.MINUS: "-"}
        )

    def _multiplicative(self) -> ast.Expr:
        return self._binary_level(
            self._unary,
            {TokKind.STAR: "*", TokKind.SLASH: "/", TokKind.PERCENT: "%"},
        )

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (TokKind.MINUS, TokKind.NOT):
            self._advance()
            operand = self._unary()
            return ast.Unary(op=tok.text, operand=operand, span=tok.span)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self._accept(TokKind.DOT):
                name = self._expect(TokKind.IDENT, "member access").text
                if self._at(TokKind.LPAREN):
                    args = self._arg_list()
                    expr = ast.MethodCall(
                        obj=expr, method=name, args=args, span=expr.span
                    )
                else:
                    expr = ast.FieldAccess(obj=expr, field_name=name, span=expr.span)
            elif self._at(TokKind.LBRACKET):
                self._advance()
                index = self._expression()
                self._expect(TokKind.RBRACKET, "index expression")
                expr = ast.Index(obj=expr, index=index, span=expr.span)
            else:
                return expr

    def _arg_list(self) -> list[ast.Expr]:
        self._expect(TokKind.LPAREN, "argument list")
        args: list[ast.Expr] = []
        if not self._at(TokKind.RPAREN):
            while True:
                args.append(self._expression())
                if not self._accept(TokKind.COMMA):
                    break
        self._expect(TokKind.RPAREN, "argument list")
        return args

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        kind = tok.kind
        if kind is TokKind.INT:
            self._advance()
            return ast.IntLit(value=int(tok.text), span=tok.span)
        if kind is TokKind.FLOAT:
            self._advance()
            return ast.FloatLit(value=float(tok.text), span=tok.span)
        if kind is TokKind.STRING:
            self._advance()
            return ast.StringLit(value=tok.text, span=tok.span)
        if kind is TokKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(value=True, span=tok.span)
        if kind is TokKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(value=False, span=tok.span)
        if kind is TokKind.KW_NULL:
            self._advance()
            return ast.NullLit(span=tok.span)
        if kind is TokKind.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokKind.RPAREN, "parenthesized expression")
            return inner
        if kind is TokKind.KW_NEW:
            return self._new_expr()
        if kind is TokKind.IDENT:
            self._advance()
            if self._at(TokKind.LPAREN):
                args = self._arg_list()
                return ast.Call(func=tok.text, args=args, span=tok.span)
            return ast.Name(ident=tok.text, span=tok.span)
        raise ParseError(
            f"expected an expression, found {tok.text or tok.kind.value!r}", tok.span
        )

    def _new_expr(self) -> ast.Expr:
        start = self._expect(TokKind.KW_NEW).span
        base = self._type_base_for_new()
        if self._at(TokKind.LBRACKET):
            self._advance()
            length = self._expression()
            self._expect(TokKind.RBRACKET, "array allocation")
            return ast.NewArray(elem_type=base, length=length, span=start)
        args = self._arg_list() if self._at(TokKind.LPAREN) else []
        if base.array_depth or base.name == "Rectdomain":
            raise ParseError("cannot 'new' this type with constructor syntax", start)
        return ast.New(class_name=base.name, args=args, span=start)

    def _type_base_for_new(self) -> ast.TypeNode:
        tok = self._peek()
        if tok.kind in PRIMITIVE_KINDS or tok.kind is TokKind.IDENT:
            self._advance()
            return ast.TypeNode(name=tok.text, span=tok.span)
        raise ParseError(f"expected a type after 'new', found {tok.text!r}", tok.span)


def parse(source: str) -> ast.Program:
    """Parse dialect source text into a :class:`repro.lang.ast.Program`."""
    return Parser.parse_source(source)
