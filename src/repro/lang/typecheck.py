"""Semantic analysis for the pipeline dialect.

Responsibilities:

* build the class table and method/native signatures,
* resolve every name to a :class:`repro.lang.types.VarSymbol`,
* annotate every expression with its resolved :class:`Type`,
* enforce the dialect rules of Section 3:

  - ``foreach`` iterates a ``Rectdomain`` (or a packet bound by an enclosing
    ``PipelinedLoop``),
  - a reduction variable (object of a class implementing ``Reducinterface``)
    may be updated inside a ``foreach`` only through method calls on it, and
    its intermediate value may not otherwise be read inside the loop,
  - ``runtime_define`` variables are integral scalars bound at run time.

The result is a :class:`CheckedProgram`, the input to every later phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError, SourceSpan
from .intrinsics import Intrinsic, IntrinsicRegistry
from .types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    DOUBLE,
    INT,
    NULL,
    PrimType,
    PRIMITIVES,
    RectdomainType,
    Scope,
    Type,
    VarSymbol,
    VOID,
    assignable,
    promote,
)


@dataclass(slots=True)
class MethodSig:
    name: str
    owner: str
    param_types: list[Type]
    ret_type: Type
    decl: ast.MethodDecl


@dataclass(slots=True)
class NativeSig:
    name: str
    param_types: list[Type]
    ret_type: Type
    decl: ast.NativeDecl
    intrinsic: Intrinsic | None = None


@dataclass(slots=True)
class CheckedProgram:
    """A type-correct program plus its resolution tables."""

    program: ast.Program
    classes: dict[str, ClassType]
    class_decls: dict[str, ast.ClassDecl]
    methods: dict[str, MethodSig]  # keyed 'Class.method'
    natives: dict[str, NativeSig]
    registry: IntrinsicRegistry
    runtime_params: list[VarSymbol] = field(default_factory=list)

    def field_type(self, class_name: str, field_name: str) -> Type:
        decl = self.class_decls[class_name]
        for f in decl.fields:
            if f.name == field_name:
                return _TypeResolver(self).resolve(f.decl_type)
        raise KeyError(f"{class_name} has no field {field_name}")

    def method_sig(self, class_name: str, method: str) -> MethodSig | None:
        return self.methods.get(f"{class_name}.{method}")

    def pipelined_loops(self) -> list[tuple[ast.MethodDecl, ast.PipelinedLoop]]:
        return ast.find_pipelined_loops(self.program)


class _TypeResolver:
    """Turns source :class:`TypeNode` syntax into resolved :class:`Type`."""

    def __init__(self, ctx: "CheckedProgram | Checker") -> None:
        self.classes = ctx.classes

    def resolve(self, node: ast.TypeNode) -> Type:
        base: Type
        if node.name in PRIMITIVES:
            base = PRIMITIVES[node.name]
        elif node.name == "Rectdomain":
            if node.elem is None:
                raise SemanticError(
                    "Rectdomain type must name its element class: Rectdomain<k, Elem>",
                    node.span,
                )
            elem = self.classes.get(node.elem)
            if elem is None:
                raise SemanticError(f"unknown class '{node.elem}'", node.span)
            base = RectdomainType(dim=node.dim, elem=elem)
        else:
            cls = self.classes.get(node.name)
            if cls is None:
                raise SemanticError(f"unknown type '{node.name}'", node.span)
            base = cls
        for _ in range(node.array_depth):
            base = ArrayType(base)
        return base


class Checker:
    """Single-use semantic analyzer; call :meth:`check`."""

    def __init__(self, program: ast.Program, registry: IntrinsicRegistry) -> None:
        self.program = program
        self.registry = registry
        self.classes: dict[str, ClassType] = {}
        self.class_decls: dict[str, ast.ClassDecl] = {}
        self.methods: dict[str, MethodSig] = {}
        self.natives: dict[str, NativeSig] = {}
        self.runtime_params: list[VarSymbol] = []
        self._foreach_depth = 0
        self._current_ret: Type = VOID

    # ------------------------------------------------------------------ api
    def check(self) -> CheckedProgram:
        self._collect_classes()
        resolver = _TypeResolver(self)
        self._collect_signatures(resolver)
        for cls in self.program.classes:
            for meth in cls.methods:
                self._check_method(cls, meth, resolver)
        return CheckedProgram(
            program=self.program,
            classes=self.classes,
            class_decls=self.class_decls,
            methods=self.methods,
            natives=self.natives,
            registry=self.registry,
            runtime_params=self.runtime_params,
        )

    # ----------------------------------------------------------- table build
    def _collect_classes(self) -> None:
        for cls in self.program.classes:
            if cls.name in self.classes:
                raise SemanticError(f"duplicate class '{cls.name}'", cls.span)
            for iface in cls.implements:
                if iface != "Reducinterface":
                    raise SemanticError(
                        f"unknown interface '{iface}' (only Reducinterface is defined)",
                        cls.span,
                    )
            self.classes[cls.name] = ClassType(cls.name, cls.is_reduction)
            self.class_decls[cls.name] = cls
        # reject duplicate fields
        for cls in self.program.classes:
            seen: set[str] = set()
            for f in cls.fields:
                if f.name in seen:
                    raise SemanticError(
                        f"duplicate field '{f.name}' in class '{cls.name}'", f.span
                    )
                seen.add(f.name)

    def _collect_signatures(self, resolver: _TypeResolver) -> None:
        for cls in self.program.classes:
            for meth in cls.methods:
                key = f"{cls.name}.{meth.name}"
                if key in self.methods:
                    raise SemanticError(f"duplicate method '{key}'", meth.span)
                self.methods[key] = MethodSig(
                    name=meth.name,
                    owner=cls.name,
                    param_types=[resolver.resolve(p.decl_type) for p in meth.params],
                    ret_type=resolver.resolve(meth.ret_type),
                    decl=meth,
                )
        for nat in self.program.natives:
            if nat.name in self.natives:
                raise SemanticError(f"duplicate native '{nat.name}'", nat.span)
            self.natives[nat.name] = NativeSig(
                name=nat.name,
                param_types=[resolver.resolve(p.decl_type) for p in nat.params],
                ret_type=resolver.resolve(nat.ret_type),
                decl=nat,
                intrinsic=self.registry.lookup(nat.name),
            )

    # ------------------------------------------------------------- methods
    def _check_method(
        self, cls: ast.ClassDecl, meth: ast.MethodDecl, resolver: _TypeResolver
    ) -> None:
        scope = Scope()
        # 'this' fields are visible unqualified inside methods
        for f in cls.fields:
            scope.define(
                VarSymbol(
                    f.name, resolver.resolve(f.decl_type), kind="field", owner=cls.name
                )
            )
        scope = scope.child()
        for p in meth.params:
            sym = VarSymbol(p.name, resolver.resolve(p.decl_type), kind="param")
            p.symbol = sym
            scope.define(sym)
        self._current_ret = self.methods[f"{cls.name}.{meth.name}"].ret_type
        self._resolver = resolver
        self._check_block(meth.body, scope)

    # ------------------------------------------------------------ statements
    def _check_block(self, block: ast.Block, scope: Scope) -> None:
        inner = scope.child()
        for stmt in block.body:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            cond = self._expr(stmt.cond, scope)
            self._require(cond == BOOLEAN, "if condition must be boolean", stmt.span)
            self._check_block(stmt.then, scope)
            if stmt.other is not None:
                self._check_block(stmt.other, scope)
        elif isinstance(stmt, ast.While):
            cond = self._expr(stmt.cond, scope)
            self._require(cond == BOOLEAN, "while condition must be boolean", stmt.span)
            self._check_block(stmt.body, scope)
        elif isinstance(stmt, ast.For):
            inner = scope.child()
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                cond = self._expr(stmt.cond, inner)
                self._require(
                    cond == BOOLEAN, "for condition must be boolean", stmt.span
                )
            if stmt.update is not None:
                self._check_stmt(stmt.update, inner)
            self._check_block(stmt.body, inner)
        elif isinstance(stmt, ast.Foreach):
            self._check_foreach(stmt, scope)
        elif isinstance(stmt, ast.PipelinedLoop):
            self._check_pipelined(stmt, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._require(
                    self._current_ret == VOID,
                    "non-void method must return a value",
                    stmt.span,
                )
            else:
                val = self._expr(stmt.value, scope)
                self._require(
                    assignable(self._current_ret, val),
                    f"cannot return {val} from method returning {self._current_ret}",
                    stmt.span,
                )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - exhaustive over AST
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _check_var_decl(self, stmt: ast.VarDecl, scope: Scope) -> None:
        decl_type = self._resolver.resolve(stmt.decl_type)
        if stmt.runtime_define:
            self._require(
                isinstance(decl_type, PrimType) and decl_type.is_integral(),
                "runtime_define variables must be integral scalars",
                stmt.span,
            )
        if stmt.init is not None:
            val = self._expr(stmt.init, scope)
            self._require(
                assignable(decl_type, val),
                f"cannot initialize {decl_type} variable '{stmt.name}' with {val}",
                stmt.span,
            )
        sym = VarSymbol(
            stmt.name,
            decl_type,
            kind="runtime" if stmt.runtime_define else "local",
            runtime_define=stmt.runtime_define,
        )
        if stmt.runtime_define:
            self.runtime_params.append(sym)
        stmt.symbol = sym
        try:
            scope.define(sym)
        except KeyError:
            raise SemanticError(
                f"duplicate variable '{stmt.name}' in this scope", stmt.span
            ) from None

    def _check_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        target = self._expr(stmt.target, scope, lvalue=True)
        value = self._expr(stmt.value, scope)
        if stmt.op:
            merged = promote(target, value)
            self._require(
                merged is not None and assignable(target, merged),
                f"cannot apply '{stmt.op}=' between {target} and {value}",
                stmt.span,
            )
        else:
            self._require(
                assignable(target, value),
                f"cannot assign {value} to {target}",
                stmt.span,
            )
        # reduction discipline: no whole-object overwrite inside foreach
        if self._foreach_depth and isinstance(stmt.target, ast.Name):
            sym = stmt.target.symbol
            if isinstance(sym, VarSymbol) and sym.is_reduction:
                raise SemanticError(
                    f"reduction variable '{sym.name}' may only be updated through "
                    "its methods inside foreach",
                    stmt.span,
                )

    def _check_foreach(self, stmt: ast.Foreach, scope: Scope) -> None:
        domain = self._expr(stmt.domain, scope)
        self._require(
            isinstance(domain, RectdomainType),
            f"foreach must iterate a Rectdomain, got {domain}",
            stmt.span,
        )
        inner = scope.child()
        sym = VarSymbol(stmt.var, domain.elem, kind="loopvar")
        stmt.var_symbol = sym
        inner.define(sym)
        self._foreach_depth += 1
        try:
            self._check_block(stmt.body, inner)
        finally:
            self._foreach_depth -= 1
        self._check_reduction_discipline(stmt)

    def _check_pipelined(self, stmt: ast.PipelinedLoop, scope: Scope) -> None:
        self._require(
            self._foreach_depth == 0,
            "PipelinedLoop may not be nested inside foreach",
            stmt.span,
        )
        domain = self._expr(stmt.domain, scope)
        self._require(
            isinstance(domain, RectdomainType),
            f"PipelinedLoop must iterate packets of a Rectdomain, got {domain}",
            stmt.span,
        )
        inner = scope.child()
        # the loop variable is one packet: a sub-collection of the same domain
        sym = VarSymbol(stmt.var, domain, kind="packetvar")
        stmt.var_symbol = sym
        inner.define(sym)
        self._check_block(stmt.body, inner)

    def _check_reduction_discipline(self, loop: ast.Foreach) -> None:
        """Inside a foreach, a reduction object may appear only as the
        receiver of a method call (a self-update).  This is the §3 rule that
        lets later phases treat reduction updates as associative+commutative.
        """
        allowed_receivers: set[int] = set()
        for expr in ast.walk_exprs(loop.body):
            if isinstance(expr, ast.MethodCall) and isinstance(expr.obj, ast.Name):
                sym = expr.obj.symbol
                if isinstance(sym, VarSymbol) and sym.is_reduction:
                    allowed_receivers.add(id(expr.obj))
        for expr in ast.walk_exprs(loop.body):
            if isinstance(expr, ast.Name):
                sym = expr.symbol
                if (
                    isinstance(sym, VarSymbol)
                    and sym.is_reduction
                    and id(expr) not in allowed_receivers
                ):
                    raise SemanticError(
                        f"reduction variable '{sym.name}' may only be used as a "
                        "method-call receiver inside foreach",
                        expr.span,
                    )

    # ---------------------------------------------------------- expressions
    def _require(self, ok: bool, message: str, span: SourceSpan) -> None:
        if not ok:
            raise SemanticError(message, span)

    def _expr(self, expr: ast.Expr, scope: Scope, lvalue: bool = False) -> Type:
        t = self._expr_inner(expr, scope, lvalue)
        expr.type = t
        return t

    def _expr_inner(self, expr: ast.Expr, scope: Scope, lvalue: bool) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return DOUBLE
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.StringLit):
            return PrimType("String")
        if isinstance(expr, ast.Name):
            sym = scope.lookup(expr.ident)
            if sym is None:
                raise SemanticError(f"undefined name '{expr.ident}'", expr.span)
            expr.symbol = sym
            return sym.type
        if isinstance(expr, ast.FieldAccess):
            obj = self._expr(expr.obj, scope)
            if isinstance(obj, ArrayType) and expr.field_name == "length":
                self._require(not lvalue, "array length is read-only", expr.span)
                return INT
            if isinstance(obj, ClassType):
                decl = self.class_decls.get(obj.name)
                if decl is not None:
                    for f in decl.fields:
                        if f.name == expr.field_name:
                            return self._resolver.resolve(f.decl_type)
                raise SemanticError(
                    f"class '{obj.name}' has no field '{expr.field_name}'", expr.span
                )
            raise SemanticError(f"cannot access field of {obj}", expr.span)
        if isinstance(expr, ast.Index):
            obj = self._expr(expr.obj, scope)
            idx = self._expr(expr.index, scope)
            self._require(
                isinstance(idx, PrimType) and idx.is_integral(),
                f"index must be integral, got {idx}",
                expr.index.span,
            )
            if isinstance(obj, ArrayType):
                return obj.elem
            if isinstance(obj, RectdomainType):
                return obj.elem
            raise SemanticError(f"cannot index {obj}", expr.span)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.MethodCall):
            return self._check_method_call(expr, scope)
        if isinstance(expr, ast.New):
            cls = self.classes.get(expr.class_name)
            if cls is None:
                raise SemanticError(f"unknown class '{expr.class_name}'", expr.span)
            for arg in expr.args:
                self._expr(arg, scope)
            return cls
        if isinstance(expr, ast.NewArray):
            elem = self._resolver.resolve(expr.elem_type)
            length = self._expr(expr.length, scope)
            self._require(
                isinstance(length, PrimType) and length.is_integral(),
                "array length must be integral",
                expr.span,
            )
            return ArrayType(elem)
        if isinstance(expr, ast.Unary):
            operand = self._expr(expr.operand, scope)
            if expr.op == "!":
                self._require(operand == BOOLEAN, "'!' needs boolean", expr.span)
                return BOOLEAN
            self._require(
                isinstance(operand, PrimType) and operand.is_numeric(),
                f"unary '-' needs a numeric operand, got {operand}",
                expr.span,
            )
            return operand
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            cond = self._expr(expr.cond, scope)
            self._require(cond == BOOLEAN, "ternary condition must be boolean", expr.span)
            then = self._expr(expr.then, scope)
            other = self._expr(expr.other, scope)
            merged = promote(then, other)
            if then == other:
                return then
            self._require(
                merged is not None, f"ternary arms disagree: {then} vs {other}", expr.span
            )
            return merged  # type: ignore[return-value]
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _check_binary(self, expr: ast.Binary, scope: Scope) -> Type:
        left = self._expr(expr.left, scope)
        right = self._expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            self._require(
                left == BOOLEAN and right == BOOLEAN,
                f"'{op}' needs boolean operands",
                expr.span,
            )
            return BOOLEAN
        if op in ("==", "!="):
            ok = (
                promote(left, right) is not None
                or left == right
                or NULL in (left, right)
            )
            self._require(ok, f"cannot compare {left} with {right}", expr.span)
            return BOOLEAN
        if op in ("<", "<=", ">", ">="):
            self._require(
                promote(left, right) is not None,
                f"cannot order {left} and {right}",
                expr.span,
            )
            return BOOLEAN
        if op == "%":
            self._require(
                isinstance(left, PrimType)
                and left.is_integral()
                and isinstance(right, PrimType)
                and right.is_integral(),
                "'%' needs integral operands",
                expr.span,
            )
            return promote(left, right)  # type: ignore[return-value]
        merged = promote(left, right)
        self._require(
            merged is not None and merged.is_numeric(),
            f"cannot apply '{op}' to {left} and {right}",
            expr.span,
        )
        return merged  # type: ignore[return-value]

    def _check_call(self, expr: ast.Call, scope: Scope) -> Type:
        arg_types = [self._expr(a, scope) for a in expr.args]
        nat = self.natives.get(expr.func)
        if nat is not None:
            self._check_args(expr.func, nat.param_types, arg_types, expr.span)
            expr.target_kind = "intrinsic"
            expr.target = nat
            return nat.ret_type
        # unqualified dialect method (any class; names are globally unique
        # per _collect_signatures when called unqualified)
        matches = [sig for sig in self.methods.values() if sig.name == expr.func]
        if len(matches) == 1:
            sig = matches[0]
            self._check_args(expr.func, sig.param_types, arg_types, expr.span)
            expr.target_kind = "method"
            expr.target = sig
            return sig.ret_type
        if len(matches) > 1:
            raise SemanticError(
                f"ambiguous unqualified call '{expr.func}' — defined in classes "
                + ", ".join(sorted(sig.owner for sig in matches)),
                expr.span,
            )
        raise SemanticError(f"unknown function '{expr.func}'", expr.span)

    def _check_method_call(self, expr: ast.MethodCall, scope: Scope) -> Type:
        obj = self._expr(expr.obj, scope)
        arg_types = [self._expr(a, scope) for a in expr.args]
        if isinstance(obj, RectdomainType):
            if expr.method == "size" and not arg_types:
                expr.target_kind = "domain_size"
                return INT
            raise SemanticError(
                f"Rectdomain has no method '{expr.method}'", expr.span
            )
        if isinstance(obj, ClassType):
            sig = self.methods.get(f"{obj.name}.{expr.method}")
            if sig is None:
                raise SemanticError(
                    f"class '{obj.name}' has no method '{expr.method}'", expr.span
                )
            self._check_args(expr.method, sig.param_types, arg_types, expr.span)
            expr.target_kind = "method"
            expr.target = sig
            return sig.ret_type
        raise SemanticError(f"cannot call a method on {obj}", expr.span)

    def _check_args(
        self,
        name: str,
        params: list[Type],
        args: list[Type],
        span: SourceSpan,
    ) -> None:
        if len(params) != len(args):
            raise SemanticError(
                f"'{name}' expects {len(params)} argument(s), got {len(args)}", span
            )
        for i, (p, a) in enumerate(zip(params, args)):
            if not assignable(p, a):
                raise SemanticError(
                    f"argument {i + 1} of '{name}': expected {p}, got {a}", span
                )


def check(program: ast.Program, registry: IntrinsicRegistry | None = None) -> CheckedProgram:
    """Type-check ``program`` against ``registry`` (may be empty)."""
    return Checker(program, registry or IntrinsicRegistry()).check()
