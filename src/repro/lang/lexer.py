"""Hand-written lexer for the pipeline dialect.

A single forward scan over the source string producing :class:`Token`
objects.  Comments (``//`` line and ``/* */`` block) and whitespace are
skipped; every token carries a precise :class:`SourceSpan` for diagnostics.
"""

from __future__ import annotations

from .errors import LexError, SourceSpan
from .tokens import KEYWORDS, Token, TokKind

_TWO_CHAR = {
    "==": TokKind.EQ,
    "!=": TokKind.NE,
    "<=": TokKind.LE,
    ">=": TokKind.GE,
    "&&": TokKind.AND,
    "||": TokKind.OR,
    "+=": TokKind.PLUS_ASSIGN,
    "-=": TokKind.MINUS_ASSIGN,
    "*=": TokKind.STAR_ASSIGN,
    "/=": TokKind.SLASH_ASSIGN,
}

_ONE_CHAR = {
    "{": TokKind.LBRACE,
    "}": TokKind.RBRACE,
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "[": TokKind.LBRACKET,
    "]": TokKind.RBRACKET,
    ";": TokKind.SEMI,
    ",": TokKind.COMMA,
    ".": TokKind.DOT,
    "=": TokKind.ASSIGN,
    "+": TokKind.PLUS,
    "-": TokKind.MINUS,
    "*": TokKind.STAR,
    "/": TokKind.SLASH,
    "%": TokKind.PERCENT,
    "<": TokKind.LT,
    ">": TokKind.GT,
    "!": TokKind.NOT,
    "?": TokKind.QUESTION,
    ":": TokKind.COLON,
}


class Lexer:
    """Tokenizes one source string.  Use :func:`tokenize` for convenience."""

    def __init__(self, source: str) -> None:
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- character helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.src):
                return
            if self.src[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _span_from(self, line: int, col: int) -> SourceSpan:
        return SourceSpan(line, col, self.line, self.col)

    # -- skipping ----------------------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = SourceSpan.point(self.line, self.col)
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.src):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- token scanners ----------------------------------------------------
    def _number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        saw_dot = saw_exp = False
        while True:
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                saw_exp = True
                self._advance(2 if self._peek(1) in "+-" else 1)
            else:
                break
        text = self.src[start : self.pos]
        kind = TokKind.FLOAT if (saw_dot or saw_exp) else TokKind.INT
        return Token(kind, text, self._span_from(line, col))

    def _ident_or_keyword(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start : self.pos]
        kind = KEYWORDS.get(text, TokKind.IDENT)
        return Token(kind, text, self._span_from(line, col))

    def _string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", SourceSpan.point(line, col))
            if ch == "\n":
                raise LexError("newline in string literal", SourceSpan.point(line, col))
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                table = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if esc not in table:
                    raise LexError(
                        f"unknown escape sequence '\\{esc}'",
                        SourceSpan.point(self.line, self.col),
                    )
                chars.append(table[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token(TokKind.STRING, "".join(chars), self._span_from(line, col))

    # -- main loop ----------------------------------------------------------
    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.src):
                out.append(
                    Token(TokKind.EOF, "", SourceSpan.point(self.line, self.col))
                )
                return out
            ch = self._peek()
            if ch.isdigit():
                out.append(self._number())
            elif ch.isalpha() or ch == "_":
                out.append(self._ident_or_keyword())
            elif ch == '"':
                out.append(self._string())
            else:
                two = ch + self._peek(1)
                if two in _TWO_CHAR:
                    line, col = self.line, self.col
                    self._advance(2)
                    out.append(Token(_TWO_CHAR[two], two, self._span_from(line, col)))
                elif ch in _ONE_CHAR:
                    line, col = self.line, self.col
                    self._advance()
                    out.append(Token(_ONE_CHAR[ch], ch, self._span_from(line, col)))
                else:
                    raise LexError(
                        f"unexpected character {ch!r}",
                        SourceSpan.point(self.line, self.col),
                    )


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, returning a list ending with an EOF token."""
    return Lexer(source).tokens()
