"""Resolved types for the pipeline dialect.

The type lattice is deliberately small: primitives with the usual numeric
widening, arrays, user classes, and ``Rectdomain<k>`` collections of class
elements.  Reduction-ness is a property of the *class* (it implements
``Reducinterface``), mirroring Section 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# ---------------------------------------------------------------------------
# Type objects
# ---------------------------------------------------------------------------


class Type:
    """Base class; concrete types are singletons or interned dataclasses."""

    def is_numeric(self) -> bool:
        return False

    def is_integral(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class PrimType(Type):
    name: str  # void | boolean | byte | int | long | float | double

    _NUMERIC_RANK = {"byte": 0, "int": 1, "long": 2, "float": 3, "double": 4}

    def is_numeric(self) -> bool:
        return self.name in self._NUMERIC_RANK

    def is_integral(self) -> bool:
        return self.name in ("byte", "int", "long")

    @property
    def rank(self) -> int:
        return self._NUMERIC_RANK[self.name]

    #: bytes occupied by one value when packed into a stream buffer
    @property
    def byte_size(self) -> int:
        return {"boolean": 1, "byte": 1, "int": 4, "long": 8, "float": 4, "double": 8}[
            self.name
        ]

    def __str__(self) -> str:
        return self.name


VOID = PrimType("void")
BOOLEAN = PrimType("boolean")
BYTE = PrimType("byte")
INT = PrimType("int")
LONG = PrimType("long")
FLOAT = PrimType("float")
DOUBLE = PrimType("double")
STRING = PrimType("String")  # only used for diagnostics / log intrinsics

PRIMITIVES: dict[str, PrimType] = {
    t.name: t for t in (VOID, BOOLEAN, BYTE, INT, LONG, FLOAT, DOUBLE)
}


@dataclass(frozen=True, slots=True)
class ArrayType(Type):
    elem: Type

    def __str__(self) -> str:
        return f"{self.elem}[]"


@dataclass(frozen=True, slots=True)
class ClassType(Type):
    name: str
    is_reduction: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class RectdomainType(Type):
    """Collection of ``elem`` objects indexed by a ``dim``-dimensional
    rectilinear coordinate.  The language guarantees no aliasing between
    elements, which the alias oracle exploits."""

    dim: int
    elem: ClassType

    def __str__(self) -> str:
        return f"Rectdomain<{self.dim}><{self.elem.name}>"


@dataclass(frozen=True, slots=True)
class NullType(Type):
    def __str__(self) -> str:
        return "null"


NULL = NullType()


# ---------------------------------------------------------------------------
# Numeric promotion / assignability
# ---------------------------------------------------------------------------


def promote(a: Type, b: Type) -> Optional[Type]:
    """Binary numeric promotion; ``None`` when the operands don't combine."""
    if isinstance(a, PrimType) and isinstance(b, PrimType):
        if a.is_numeric() and b.is_numeric():
            return a if a.rank >= b.rank else b
        if a == BOOLEAN and b == BOOLEAN:
            return BOOLEAN
    return None


def assignable(target: Type, value: Type) -> bool:
    """May ``value`` be stored into a slot of type ``target``?"""
    if target == value:
        return True
    if isinstance(target, PrimType) and isinstance(value, PrimType):
        return target.is_numeric() and value.is_numeric() and target.rank >= value.rank
    if isinstance(value, NullType):
        return isinstance(target, (ClassType, ArrayType, RectdomainType))
    return False


def byte_size(t: Type) -> int:
    """Packed size of one scalar value of type ``t``; arrays and objects are
    sized by their flattened scalar fields at packing time (codegen)."""
    if isinstance(t, PrimType):
        return t.byte_size
    raise ValueError(f"type {t} has no fixed scalar byte size")


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


@dataclass(slots=True, eq=False)
class VarSymbol:
    """A named storage location: local, parameter, field, or loop variable.

    ``kind`` is one of ``local | param | field | loopvar | packetvar |
    runtime``.  Identity (``eq=False``) matters: the analyses key sets by
    symbol object so that shadowing never conflates distinct variables.
    """

    name: str
    type: Type
    kind: str = "local"
    owner: Optional[str] = None  # class name for fields
    runtime_define: bool = False

    @property
    def is_reduction(self) -> bool:
        return isinstance(self.type, ClassType) and self.type.is_reduction

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name}: {self.type}>"


class Scope:
    """Lexically nested symbol table."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self._table: dict[str, VarSymbol] = {}

    def define(self, sym: VarSymbol) -> VarSymbol:
        if sym.name in self._table:
            raise KeyError(f"duplicate definition of '{sym.name}' in scope")
        self._table[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope._table.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(self)
