"""Intrinsic (native) function registry.

The paper's prototype compiles applications whose numeric kernels (triangle
extraction, coordinate transforms, rasterization, ...) are ordinary Java
methods analyzed interprocedurally.  In this reproduction the pipeline
*structure* is written in the dialect while heavy kernels may be registered
as intrinsics: Python/NumPy callables carrying a declared analysis summary —

* which parameter access paths they **read** (may-use: joins ``Cons``),
* which they **write** (must-def: joins ``Gen``),
* an operation-count model for the cost analysis (Section 4.3), and
* an output-volume model for the communication analysis (Section 4.2).

This mirrors how a production compiler summarizes library calls; dialect
methods are still analyzed context-sensitively (``repro.analysis.interproc``),
so both the interprocedural path and the summary path are exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from .types import Type


@dataclass(frozen=True, slots=True)
class OpCount:
    """Operation counts for one call, in the units of the cost model:
    floating-point ops, integer ops, and branch/compare ops."""

    flops: float = 0.0
    iops: float = 0.0
    branches: float = 0.0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.flops + other.flops,
            self.iops + other.iops,
            self.branches + other.branches,
        )

    def scaled(self, factor: float) -> "OpCount":
        return OpCount(self.flops * factor, self.iops * factor, self.branches * factor)

    def total(self, flop_weight: float = 1.0, iop_weight: float = 0.5,
              branch_weight: float = 0.25) -> float:
        """Weighted scalar op count used by CostComp."""
        return (
            self.flops * flop_weight
            + self.iops * iop_weight
            + self.branches * branch_weight
        )


@dataclass(frozen=True, slots=True)
class Intrinsic:
    """Declaration + summary + implementation of one native function.

    ``reads``/``writes`` name access paths rooted at parameter names, e.g.
    ``("cube.corners", "cube.values")`` — the analysis renames them to the
    actual-argument paths at each call site.  ``"return"`` in ``writes``
    marks the returned value as freshly generated.

    ``cost`` maps a workload profile (a ``Mapping[str, float]`` of symbolic
    parameters such as selectivities) to an :class:`OpCount` per call.
    ``out_scale`` estimates the number of *result elements* produced per
    call (e.g. triangles per accepted cube) for volume estimation.
    """

    name: str
    param_types: tuple[Type, ...]
    ret_type: Type
    fn: Callable
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ("return",)
    cost: Callable[[Mapping[str, float]], OpCount] = field(
        default=lambda profile: OpCount()
    )
    out_scale: Callable[[Mapping[str, float]], float] = field(
        default=lambda profile: 1.0
    )
    #: True when the call only filters/inspects (no observable writes other
    #: than its return value); such calls may sit inside a foreach safely.
    pure: bool = True
    #: Optional columnar (batch) form consumed by the ``vector`` codegen
    #: backend: called once per packet with whole columns (1-D arrays for
    #: scalar parameters, ``(n, L)`` arrays or ``(values, offsets)`` ragged
    #: pairs for array parameters; packet scalars broadcast) and returning a
    #: column of results.  A loop calling an intrinsic without a batch form
    #: is not vectorizable and falls back to the scalar backend.
    batch_fn: Optional[Callable] = None


class IntrinsicRegistry:
    """Name -> :class:`Intrinsic` mapping used by the typechecker, the
    analyses, and generated code (which dispatches through the registry)."""

    def __init__(self, intrinsics: Sequence[Intrinsic] = ()) -> None:
        self._table: dict[str, Intrinsic] = {}
        for intr in intrinsics:
            self.register(intr)

    def register(self, intr: Intrinsic) -> Intrinsic:
        if intr.name in self._table:
            raise ValueError(f"intrinsic '{intr.name}' already registered")
        self._table[intr.name] = intr
        return intr

    def lookup(self, name: str) -> Optional[Intrinsic]:
        return self._table.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __iter__(self):
        return iter(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def merged_with(self, other: "IntrinsicRegistry") -> "IntrinsicRegistry":
        merged = IntrinsicRegistry(list(self._table.values()))
        for intr in other:
            merged.register(intr)
        return merged


#: Registry shared by all compilations unless the driver supplies its own.
GLOBAL_REGISTRY = IntrinsicRegistry()
