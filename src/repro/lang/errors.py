"""Diagnostics for the pipeline dialect frontend.

All frontend failures raise :class:`DialectError` subclasses carrying a
:class:`SourceSpan` so that callers (tests, the driver, examples) can point
at the offending source text.  The compiler never raises bare ``ValueError``
for user-program problems; those are reserved for API misuse.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """Half-open region of source text: line/col are 1-based, end exclusive."""

    line: int
    col: int
    end_line: int
    end_col: int

    @staticmethod
    def point(line: int, col: int) -> "SourceSpan":
        return SourceSpan(line, col, line, col + 1)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = min((self.line, self.col), (other.line, other.col))
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return SourceSpan(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.col}"


#: Span used for synthesized nodes (loop fission, codegen temporaries).
SYNTHETIC = SourceSpan(0, 0, 0, 0)


class DialectError(Exception):
    """Base class for all user-visible frontend errors."""

    def __init__(self, message: str, span: SourceSpan | None = None) -> None:
        self.span = span
        if span is not None and span is not SYNTHETIC:
            message = f"{span}: {message}"
        super().__init__(message)


class LexError(DialectError):
    """Unrecognized character or malformed literal."""


class ParseError(DialectError):
    """Token stream does not match the dialect grammar."""


class TypeError_(DialectError):
    """Semantic analysis failure (name resolution, typing, reduction rules).

    Named with a trailing underscore to avoid shadowing the builtin; exported
    as ``SemanticError`` from the package for readability.
    """


SemanticError = TypeError_


class AnalysisError(DialectError):
    """A compiler analysis phase rejected an otherwise well-typed program
    (e.g. a non-foreach loop spanning a candidate filter boundary)."""
