"""Frontend for the pipeline dialect (paper Section 3).

The dialect is a small Java-like language extended with:

* ``Rectdomain<k, Elem>`` — indexed collections with no inter-element
  aliasing,
* ``foreach`` — order-independent loops (reduction updates allowed),
* ``Reducinterface`` — marker interface for classes whose updates are
  associative and commutative,
* ``PipelinedLoop`` — the packet loop that the compiler decomposes into a
  pipeline of filters, and
* ``runtime_define`` — scalars (such as the packet count) bound at run time.

Typical use::

    from repro.lang import parse, check
    program = parse(source_text)
    checked = check(program, registry)
"""

from .errors import (
    AnalysisError,
    DialectError,
    LexError,
    ParseError,
    SemanticError,
    SourceSpan,
)
from .intrinsics import GLOBAL_REGISTRY, Intrinsic, IntrinsicRegistry, OpCount
from .lexer import tokenize
from .parser import parse
from .typecheck import CheckedProgram, MethodSig, NativeSig, check
from .unparse import unparse, unparse_expr, unparse_stmt

__all__ = [
    "AnalysisError",
    "CheckedProgram",
    "DialectError",
    "GLOBAL_REGISTRY",
    "Intrinsic",
    "IntrinsicRegistry",
    "LexError",
    "MethodSig",
    "NativeSig",
    "OpCount",
    "ParseError",
    "SemanticError",
    "SourceSpan",
    "check",
    "parse",
    "tokenize",
    "unparse",
    "unparse_expr",
    "unparse_stmt",
]
