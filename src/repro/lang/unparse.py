"""Pretty-printer turning a dialect AST back into source text.

Used by tests (parse → unparse → parse round-trips to an equal tree), by
diagnostics, and by the loop-fission pass when reporting the transformed
program.  Output is canonical: one statement per line, four-space indent,
fully parenthesized only where precedence requires it.
"""

from __future__ import annotations

from . import ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_UNARY_PREC = 7
_POSTFIX_PREC = 8


def unparse_type(node: ast.TypeNode) -> str:
    if node.name == "Rectdomain":
        base = f"Rectdomain<{node.dim}, {node.elem}>" if node.elem else f"Rectdomain<{node.dim}>"
    else:
        base = node.name
    return base + "[]" * node.array_depth


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: ast.Expr) -> tuple[str, int]:
    if isinstance(expr, ast.IntLit):
        return str(expr.value), _POSTFIX_PREC
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        if "e" not in text and "." not in text and "inf" not in text:
            text += ".0"
        return text, _POSTFIX_PREC
    if isinstance(expr, ast.BoolLit):
        return ("true" if expr.value else "false"), _POSTFIX_PREC
    if isinstance(expr, ast.NullLit):
        return "null", _POSTFIX_PREC
    if isinstance(expr, ast.StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace(
            "\n", "\\n"
        ).replace("\t", "\\t")
        return f'"{escaped}"', _POSTFIX_PREC
    if isinstance(expr, ast.Name):
        return expr.ident, _POSTFIX_PREC
    if isinstance(expr, ast.FieldAccess):
        return f"{unparse_expr(expr.obj, _POSTFIX_PREC)}.{expr.field_name}", _POSTFIX_PREC
    if isinstance(expr, ast.Index):
        return (
            f"{unparse_expr(expr.obj, _POSTFIX_PREC)}[{unparse_expr(expr.index)}]",
            _POSTFIX_PREC,
        )
    if isinstance(expr, ast.Call):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.func}({args})", _POSTFIX_PREC
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return (
            f"{unparse_expr(expr.obj, _POSTFIX_PREC)}.{expr.method}({args})",
            _POSTFIX_PREC,
        )
    if isinstance(expr, ast.New):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})", _POSTFIX_PREC
    if isinstance(expr, ast.NewArray):
        return (
            f"new {unparse_type(expr.elem_type)}[{unparse_expr(expr.length)}]",
            _POSTFIX_PREC,
        )
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{unparse_expr(expr.operand, _UNARY_PREC)}", _UNARY_PREC
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)  # left-associative
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.Ternary):
        return (
            f"{unparse_expr(expr.cond, 1)} ? {unparse_expr(expr.then)} : "
            f"{unparse_expr(expr.other)}",
            0,
        )
    raise AssertionError(f"unhandled expression {type(expr).__name__}")


class _Printer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in stmt.body:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            prefix = "runtime_define " if stmt.runtime_define else ""
            text = f"{prefix}{unparse_type(stmt.decl_type)} {stmt.name}"
            if stmt.init is not None:
                text += f" = {unparse_expr(stmt.init)}"
            self.emit(text + ";")
        elif isinstance(stmt, ast.Assign):
            self.emit(
                f"{unparse_expr(stmt.target)} {stmt.op}= {unparse_expr(stmt.value)};"
            )
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{unparse_expr(stmt.expr)};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({unparse_expr(stmt.cond)})")
            self.stmt(stmt.then)
            if stmt.other is not None:
                self.emit("else")
                self.stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({unparse_expr(stmt.cond)})")
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            init = self._inline(stmt.init) if stmt.init else ""
            cond = unparse_expr(stmt.cond) if stmt.cond else ""
            update = self._inline(stmt.update) if stmt.update else ""
            self.emit(f"for ({init}; {cond}; {update})")
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.Foreach):
            self.emit(f"foreach ({stmt.var} in {unparse_expr(stmt.domain)})")
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.PipelinedLoop):
            self.emit(f"PipelinedLoop ({stmt.var} in {unparse_expr(stmt.domain)})")
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {unparse_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _inline(self, stmt: ast.Stmt) -> str:
        """Render a for-header clause without indentation or ';'."""
        sub = _Printer()
        sub.stmt(stmt)
        text = " ".join(line.strip() for line in sub.lines)
        return text.rstrip(";")


def unparse(program: ast.Program) -> str:
    """Render a whole program as canonical dialect source."""
    printer = _Printer()
    for nat in program.natives:
        params = ", ".join(
            f"{unparse_type(p.decl_type)} {p.name}" for p in nat.params
        )
        printer.emit(f"native {unparse_type(nat.ret_type)} {nat.name}({params});")
    for cls in program.classes:
        heading = f"class {cls.name}"
        if cls.implements:
            heading += " implements " + ", ".join(cls.implements)
        printer.emit(heading + " {")
        printer.depth += 1
        for fld in cls.fields:
            printer.emit(f"{unparse_type(fld.decl_type)} {fld.name};")
        for meth in cls.methods:
            params = ", ".join(
                f"{unparse_type(p.decl_type)} {p.name}" for p in meth.params
            )
            printer.emit(f"{unparse_type(meth.ret_type)} {meth.name}({params})")
            printer.stmt(meth.body)
        printer.depth -= 1
        printer.emit("}")
    return "\n".join(printer.lines) + "\n"


def unparse_stmt(stmt: ast.Stmt) -> str:
    """Render a single statement (used by fission diagnostics and tests)."""
    printer = _Printer()
    printer.stmt(stmt)
    return "\n".join(printer.lines)
